"""Dijkstra workload: single-source shortest paths (MiBench-style).

Beyond the paper's MediaBench set, the suite carries this MiBench
network kernel because it exercises the access pattern the codecs don't:
*data-dependent* row jumps over an adjacency matrix bigger than L2.  The
next row scanned depends on the argmin of the distance array, so the
hardware prefetch-friendly streaming of the media kernels disappears —
the workload regime where the asynchronous-memory slack (and thus DVS
headroom) is most irregular.

Classic O(V²) Dijkstra: argmin scan over unvisited nodes, then a
relaxation sweep over the chosen node's adjacency row.
"""

from __future__ import annotations

from repro.workloads import inputs as gen

N_VERTICES = 96
INFINITY = 1 << 28

SOURCE = """
# O(V^2) Dijkstra over a dense adjacency matrix (0 = no edge).

func main(nv: int) -> int {
    extern adj: int[9216];       # nv x nv edge weights
    array dist: int[96];
    array visited: int[96];

    var inf: int = 268435456;
    for (var i: int = 0; i < nv; i = i + 1) {
        dist[i] = inf;
        visited[i] = 0;
    }
    dist[0] = 0;

    var reached: int = 0;
    for (var round: int = 0; round < nv; round = round + 1) {
        # ---- argmin over unvisited vertices
        var u: int = -1;
        var best: int = inf;
        for (var i: int = 0; i < nv; i = i + 1) {
            if (visited[i] == 0 && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u < 0) { break; }
        visited[u] = 1;
        reached = reached + 1;

        # ---- relax u's adjacency row (data-dependent row address)
        var rowbase: int = u * nv;
        for (var v: int = 0; v < nv; v = v + 1) {
            var w: int = adj[rowbase + v];
            if (w > 0 && visited[v] == 0) {
                var cand: int = dist[u] + w;
                if (cand < dist[v]) {
                    dist[v] = cand;
                }
            }
        }
    }

    # checksum: reachable count and distance fingerprint
    var sig: int = 0;
    for (var i: int = 0; i < nv; i = i + 1) {
        if (dist[i] < inf) {
            sig = (sig + dist[i] * (i + 1)) % 999983;
        }
    }
    return reached * 1000000 + sig % 1000000;
}
"""


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    """Random sparse-ish weighted digraph with a connected backbone."""
    generator = gen.rng(500 + seed)
    n = N_VERTICES
    adj = [0] * (n * n)
    # Backbone ring keeps everything reachable.
    for i in range(n):
        adj[i * n + (i + 1) % n] = int(generator.integers(1, 50))
    # Random extra edges (~12% density).
    extra = int(0.12 * n * n)
    sources = generator.integers(0, n, size=extra)
    targets = generator.integers(0, n, size=extra)
    weights = generator.integers(1, 100, size=extra)
    for s, t, w in zip(sources, targets, weights):
        if s != t:
            adj[int(s) * n + int(t)] = int(w)
    return {"adj": adj}


def make_registers() -> dict[str, float]:
    return {"main.nv": N_VERTICES}
