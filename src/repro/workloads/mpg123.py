"""mpg123 workload: MPEG-audio polyphase subband synthesis.

mpg123's decode time is dominated by the synthesis filterbank: per
granule, a 32-subband matrixing (a DCT-like dense matrix-vector product)
followed by windowed accumulation through a sliding FIFO of past
matrixing outputs.  This kernel reproduces both stages in floating point:

* matrixing: ``v[i] = sum_j cosmat[i][j] * samples[g][j]`` (32x32);
* windowing: each output sample accumulates 8 window taps applied to
  stride-32 slots of the 512-entry FIFO (the classic mpg123 access
  pattern).

The cosine matrix and the synthesis window are supplied as extern inputs
(computed host-side; the kernel language has no trig intrinsics).
Character: floating-point multiply bound, medium working set.
"""

from __future__ import annotations

import math

from repro.workloads import inputs as gen

N_GRANULES = 24
N_BANDS = 32
FIFO = 512

SOURCE = """
# Polyphase synthesis: matrixing + windowed FIFO accumulation.

func main(ngran: int) -> int {
    extern samples: float[768];     # ngran * 32 subband samples
    extern cosmat: float[1024];     # 32x32 matrixing coefficients
    extern window: float[256];      # 32 outputs x 8 taps
    array v: float[512];            # sliding FIFO of matrixing outputs
    array pcm: float[768];         # synthesized output

    var vpos: int = 0;
    for (var g: int = 0; g < ngran; g = g + 1) {
        var sbase: int = g * 32;

        # ---- matrixing: 32 dot products of length 32
        for (var i: int = 0; i < 32; i = i + 1) {
            var acc: float = 0.0;
            var mbase: int = i * 32;
            for (var j: int = 0; j < 32; j = j + 1) {
                acc = acc + cosmat[mbase + j] * samples[sbase + j];
            }
            v[(vpos + i) % 512] = acc;
        }

        # ---- windowing: 32 outputs, 8 taps each at stride 64
        for (var i: int = 0; i < 32; i = i + 1) {
            var acc: float = 0.0;
            var wbase: int = i * 8;
            for (var t: int = 0; t < 8; t = t + 1) {
                var slot: int = (vpos + i + t * 64) % 512;
                acc = acc + window[wbase + t] * v[slot];
            }
            pcm[sbase + i] = acc;
        }

        vpos = (vpos + 32) % 512;
    }

    # checksum over clipped 16-bit output
    var checksum: int = 0;
    for (var i: int = 0; i < ngran * 32; i = i + 1) {
        var s: int = int(pcm[i]);
        if (s > 32767) { s = 32767; }
        if (s < -32768) { s = -32768; }
        checksum = (checksum + abs(s)) % 999983;
    }
    return checksum;
}
"""


def _cosmat() -> list[float]:
    return [
        math.cos((2 * j + 1) * (i % 16) * math.pi / 32.0) / (1.0 + 0.02 * i)
        for i in range(N_BANDS)
        for j in range(N_BANDS)
    ]


def _window() -> list[float]:
    # A raised-cosine synthesis window shaped like mpg123's dewindowing table.
    out = []
    for i in range(N_BANDS):
        for t in range(8):
            phase = (t * N_BANDS + i) / (8.0 * N_BANDS)
            out.append(math.cos(math.pi * (phase - 0.5)) * (0.9**t))
    return out


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    return {
        "samples": gen.subband_samples(N_GRANULES, N_BANDS, seed=seed),
        "cosmat": _cosmat(),
        "window": _window(),
    }


def make_registers() -> dict[str, float]:
    return {"main.ngran": N_GRANULES}
