"""Workload registry and Table 4-style deadline derivation."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.ir.cfg import CFG
from repro.lang import compile_program
from repro.workloads import adpcm, dijkstra, epic, ghostscript_wl, gsm, jpeg, mpeg, mpg123


@dataclass(frozen=True)
class WorkloadSpec:
    """One suite member: source, inputs and run parameters."""

    name: str
    source: str
    make_inputs: Callable[..., dict[str, list]]
    make_registers: Callable[[], dict[str, float]]
    categories: tuple[str, ...] = ("default",)
    description: str = ""

    def inputs(self, category: str | None = None, seed: int = 0) -> dict[str, list]:
        category = category or self.categories[0]
        if category not in self.categories:
            raise ReproError(
                f"workload {self.name!r} has no category {category!r} "
                f"(available: {self.categories})"
            )
        return self.make_inputs(category=category, seed=seed)

    def registers(self) -> dict[str, float]:
        return self.make_registers()


_REGISTRY: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> WorkloadSpec:
    _REGISTRY[spec.name] = spec
    return spec


_register(
    WorkloadSpec(
        name="adpcm",
        source=adpcm.SOURCE,
        make_inputs=adpcm.make_inputs,
        make_registers=adpcm.make_registers,
        description="IMA ADPCM encode+decode (int, branchy, compute-bound)",
    )
)
_register(
    WorkloadSpec(
        name="epic",
        source=epic.SOURCE,
        make_inputs=epic.make_inputs,
        make_registers=epic.make_registers,
        description="wavelet pyramid + quantization (float, strided, memory-bound)",
    )
)
_register(
    WorkloadSpec(
        name="gsm",
        source=gsm.SOURCE,
        make_inputs=gsm.make_inputs,
        make_registers=gsm.make_registers,
        description="LPC analysis + long-term predictor search (int MAC-bound)",
    )
)
_register(
    WorkloadSpec(
        name="mpeg",
        source=mpeg.SOURCE,
        make_inputs=mpeg.make_inputs,
        make_registers=mpeg.make_registers,
        categories=mpeg.CATEGORIES,
        description="dequant + 2-D transform + motion compensation (memory-heavy)",
    )
)
_register(
    WorkloadSpec(
        name="mpg123",
        source=mpg123.SOURCE,
        make_inputs=mpg123.make_inputs,
        make_registers=mpg123.make_registers,
        description="polyphase subband synthesis (float multiply bound)",
    )
)
_register(
    WorkloadSpec(
        name="ghostscript",
        source=ghostscript_wl.SOURCE,
        make_inputs=ghostscript_wl.make_inputs,
        make_registers=ghostscript_wl.make_registers,
        description="edge-function triangle rasterizer (branchy, store-heavy)",
    )
)


_register(
    WorkloadSpec(
        name="dijkstra",
        source=dijkstra.SOURCE,
        make_inputs=dijkstra.make_inputs,
        make_registers=dijkstra.make_registers,
        description="O(V^2) shortest paths (irregular data-dependent memory; "
        "extension beyond the paper's set)",
    )
)
_register(
    WorkloadSpec(
        name="jpeg",
        source=jpeg.SOURCE,
        make_inputs=jpeg.make_inputs,
        make_registers=jpeg.make_registers,
        description="baseline JPEG encoder core: transform+quant+zigzag+RLE "
        "(extension beyond the paper's set)",
    )
)


#: The six benchmarks the paper's evaluation uses (Tables 3-5, Figures
#: 14/15/17/18); `dijkstra` and `jpeg` extend the suite beyond the paper.
PAPER_SUITE = ("adpcm", "epic", "gsm", "mpeg", "mpg123", "ghostscript")


def get_workload(name: str) -> WorkloadSpec:
    """Look up a suite member by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[WorkloadSpec]:
    """Every registered workload, in registration order."""
    return list(_REGISTRY.values())


@functools.lru_cache(maxsize=None)
def compile_workload(name: str) -> CFG:
    """Compile a workload's source to IR (cached per process)."""
    spec = get_workload(name)
    return compile_program(spec.source, name=spec.name)


def derive_deadlines(
    t_slowest_s: float, t_middle_s: float, t_fastest_s: float
) -> list[float]:
    """Five deadlines spanning the feasible range, as the paper's Table 4.

    The paper picks application-specific deadlines at characteristic
    positions between the all-fast and all-slow runtimes (its Figure 16);
    the factors below reproduce the relative positions of its Table 4:

    * D1 (stringent): just above the all-800MHz runtime;
    * D2: a third of the way from all-fast to all-middle;
    * D3: just above the all-middle runtime;
    * D4: halfway between all-middle and all-slow;
    * D5 (lax): just *below* the all-slow runtime (so the slowest mode
      alone cannot meet it, as in the paper where Deadline 5 sits at or
      under the 200 MHz runtime).

    Returned stringent-first: [D1, D2, D3, D4, D5].
    """
    if not t_fastest_s < t_middle_s < t_slowest_s:
        raise ReproError(
            "expected t_fastest < t_middle < t_slowest, got "
            f"{t_fastest_s}, {t_middle_s}, {t_slowest_s}"
        )
    d1 = 1.03 * t_fastest_s
    d2 = t_fastest_s + 0.30 * (t_middle_s - t_fastest_s)
    d3 = 1.02 * t_middle_s
    d4 = t_middle_s + 0.52 * (t_slowest_s - t_middle_s)
    d5 = 0.985 * t_slowest_s
    return [d1, d2, d3, d4, d5]
