"""Deterministic synthetic input generators for the workload suite.

The paper uses MediaBench's bundled inputs (and mpeg test bitstreams from
mpeg.org).  Those assets are not redistributable here, so every workload
gets a seeded synthetic generator producing inputs with the same
*structural* character: band-limited waveforms for the audio codecs,
smooth-plus-texture images for epic/mpeg, and mixed-size geometry for the
rasterizer.  Generators are pure functions of their seed.
"""

from __future__ import annotations

import math

import numpy as np


def rng(seed: int) -> np.random.Generator:
    """The suite's deterministic generator factory."""
    return np.random.default_rng(seed)


def speech_like(length: int, seed: int = 0, amplitude: int = 6000) -> list[int]:
    """Band-limited waveform with pitch pulses: ADPCM/GSM input."""
    gen = rng(seed)
    t = np.arange(length)
    pitch = 80 + (seed % 40)
    wave = (
        0.7 * np.sin(2 * math.pi * t / pitch)
        + 0.2 * np.sin(2 * math.pi * t / (pitch / 3.1))
        + 0.1 * gen.standard_normal(length)
    )
    envelope = 0.5 + 0.5 * np.sin(2 * math.pi * t / (length / 4.0)) ** 2
    samples = np.clip(wave * envelope * amplitude, -32768, 32767)
    return [int(s) for s in samples]


def image_like(width: int, height: int, seed: int = 0, scale: float = 100.0) -> list[float]:
    """Smooth gradients + texture: epic's input image (row-major)."""
    gen = rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    smooth = (
        np.sin(2 * math.pi * x / width * (1 + seed % 3))
        * np.cos(2 * math.pi * y / height * (2 + seed % 2))
    )
    texture = gen.standard_normal((height, width)) * 0.15
    image = (smooth + texture) * scale
    return [float(v) for v in image.ravel()]


def dct_blocks(num_blocks: int, seed: int = 0, sparsity: float = 0.8) -> list[int]:
    """Quantized 8x8 DCT coefficient blocks (mostly-zero, low-freq heavy)."""
    gen = rng(seed)
    out: list[int] = []
    for _ in range(num_blocks):
        block = np.zeros(64)
        block[0] = gen.integers(-400, 400)
        num_ac = gen.integers(2, int(64 * (1 - sparsity)) + 3)
        positions = gen.choice(np.arange(1, 64), size=num_ac, replace=False)
        block[positions] = gen.integers(-60, 60, size=num_ac)
        out.extend(int(v) for v in block)
    return out


def motion_vectors(num_blocks: int, seed: int = 0, magnitude: int = 6) -> list[int]:
    """(dx, dy) per block, bounded so references stay in frame."""
    gen = rng(seed)
    out: list[int] = []
    for _ in range(num_blocks):
        out.append(int(gen.integers(-magnitude, magnitude + 1)))
        out.append(int(gen.integers(-magnitude, magnitude + 1)))
    return out


def b_frame_flags(num_blocks: int, category: str) -> list[int]:
    """Block coding types for the mpeg categories.

    ``no_b``: every block predicted from one reference (like the paper's
    100b/bbc inputs).  ``with_b``: every third block is bidirectional
    (like flwr/cact, encoded with 2 B-frames between I and P).
    """
    if category == "no_b":
        return [0] * num_blocks
    if category == "with_b":
        return [1 if i % 3 == 2 else 0 for i in range(num_blocks)]
    raise ValueError(f"unknown mpeg category {category!r}")


def subband_samples(granules: int, bands: int, seed: int = 0) -> list[float]:
    """Per-granule subband samples with 1/f-ish spectral rolloff."""
    gen = rng(seed)
    out: list[float] = []
    for g in range(granules):
        for band in range(bands):
            rolloff = 1.0 / (1.0 + band * 0.35)
            out.append(float(gen.standard_normal() * rolloff * 8000.0))
    return out


def triangles(count: int, extent: int, seed: int = 0) -> list[int]:
    """Triangle vertex lists (x0,y0,x1,y1,x2,y2) with mixed sizes."""
    gen = rng(seed)
    out: list[int] = []
    for i in range(count):
        size = 5 + int(gen.integers(0, extent // 6)) if i % 6 else extent // 2
        cx = int(gen.integers(0, extent))
        cy = int(gen.integers(0, extent))
        for _ in range(3):
            out.append(max(0, min(extent - 1, cx + int(gen.integers(-size, size + 1)))))
            out.append(max(0, min(extent - 1, cy + int(gen.integers(-size, size + 1)))))
    return out
