"""JPEG workload: baseline-encoder block pipeline.

A second extension beyond the paper's set (cjpeg is the other half of
MediaBench's image pair).  Per 8x8 block of a 64x64 grayscale image:

* level shift and a separable butterfly transform (the fast-DCT dataflow,
  as in the mpeg workload);
* quantization with the luminance-style quality-scaled matrix;
* zigzag reordering (host-computed order table, as a real encoder's
  constant table);
* run-length coding of AC coefficients with a magnitude-category bit
  estimate — the entropy-coding stand-in producing a realistic
  data-dependent inner loop.

Character: int transform compute plus table-driven irregular reads;
midway between adpcm (pure compute) and epic (strided memory).
"""

from __future__ import annotations

from repro.workloads import inputs as gen

IMAGE_DIM = 64
N_BLOCKS = 40  # top 5 block-rows of the 8x8 grid (keeps runs fast)

SOURCE = """
# Baseline JPEG-style encoder core: transform + quantize + zigzag + RLE.

func butterfly8w(base: int) {
    var s: int = 1;
    while (s < 8) {
        var g: int = 0;
        while (g < 8) {
            for (var i: int = g; i < g + s; i = i + 1) {
                var a: int = blk[base + i];
                var b: int = blk[base + i + s];
                blk[base + i] = a + b;
                blk[base + i + s] = a - b;
            }
            g = g + 2 * s;
        }
        s = s * 2;
    }
}

func bit_category(v: int) -> int {
    var mag: int = abs(v);
    var bits: int = 0;
    while (mag > 0) {
        bits = bits + 1;
        mag = mag / 2;
    }
    return bits;
}

func main(nblk: int) -> int {
    extern img: int[4096];       # 64x64 grayscale, 0..255
    extern zigzag: int[64];      # standard zigzag order
    extern qmat: int[64];        # quality-scaled luminance matrix
    array blk: int[64];
    array coeffs: int[64];
    array qcoef: int[4096];      # all blocks' quantized output

    var blocks_per_row: int = 8;
    var total_bits: int = 0;
    var prev_dc: int = 0;

    for (var b: int = 0; b < nblk; b = b + 1) {
        var bx: int = (b % blocks_per_row) * 8;
        var by: int = (b / blocks_per_row) * 8;

        # ---- load block with level shift (-128)
        for (var r: int = 0; r < 8; r = r + 1) {
            var src: int = (by + r) * 64 + bx;
            for (var c: int = 0; c < 8; c = c + 1) {
                blk[r * 8 + c] = img[src + c] - 128;
            }
        }

        # ---- 2-D transform: rows, transpose, rows
        for (var r: int = 0; r < 8; r = r + 1) { butterfly8w(r * 8); }
        for (var r: int = 0; r < 8; r = r + 1) {
            for (var c: int = r + 1; c < 8; c = c + 1) {
                var t: int = blk[r * 8 + c];
                blk[r * 8 + c] = blk[c * 8 + r];
                blk[c * 8 + r] = t;
            }
        }
        for (var r: int = 0; r < 8; r = r + 1) { butterfly8w(r * 8); }

        # ---- quantize + zigzag
        for (var i: int = 0; i < 64; i = i + 1) {
            var zz: int = zigzag[i];
            coeffs[i] = blk[zz] / qmat[zz];
            qcoef[b * 64 + i] = coeffs[i];
        }

        # ---- DC differential + AC run-length bit estimate
        var dc_diff: int = coeffs[0] - prev_dc;
        prev_dc = coeffs[0];
        total_bits = total_bits + 3 + bit_category(dc_diff) + abs(dc_diff) % 8;
        var run: int = 0;
        for (var i: int = 1; i < 64; i = i + 1) {
            if (coeffs[i] == 0) {
                run = run + 1;
                if (run == 16) { total_bits = total_bits + 11; run = 0; }
            } else {
                var cat: int = bit_category(coeffs[i]);
                total_bits = total_bits + 4 + cat + cat;
                run = 0;
            }
        }
        total_bits = total_bits + 4;     # EOB
    }

    # fingerprint of the coefficient stream
    var sig: int = 0;
    for (var i: int = 0; i < nblk * 64; i = i + 8) {
        sig = (sig + abs(qcoef[i]) * 13 + i % 7) % 65521;
    }
    return total_bits % 1000000 * 7 + sig % 7;
}
"""

_ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]

_LUMINANCE_Q = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
]


def make_inputs(category: str = "default", seed: int = 0, quality: int = 50) -> dict[str, list]:
    """Image plus the constant tables a real encoder carries.

    ``quality`` scales the quantization matrix the standard way
    (50 = the reference luminance matrix).
    """
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    qmat = [max(1, min(255, (q * scale + 50) // 100)) for q in _LUMINANCE_Q]
    image = [
        max(0, min(255, int(v / 1.0 + 128)))
        for v in gen.image_like(IMAGE_DIM, IMAGE_DIM, seed=seed, scale=90.0)
    ]
    return {"img": image, "zigzag": list(_ZIGZAG), "qmat": qmat}


def make_registers() -> dict[str, float]:
    return {"main.nblk": N_BLOCKS}
