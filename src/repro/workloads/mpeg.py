"""MPEG workload: video decode inner loops (dequant + IDCT + motion comp).

MediaBench's mpeg2/decode spends its time in three kernels per 8x8 block:
coefficient dequantization, the 2-D inverse transform, and motion
compensation against reference frames.  This kernel reproduces that
pipeline over 54 blocks of a 128x128 frame:

* dequantization with an intra-style quantizer matrix built in-program;
* a separable 2-D butterfly transform (Walsh-Hadamard structure — the
  same add/sub dataflow as the fast IDCT, without cosine tables);
* motion compensation: each block fetches a motion-shifted 8x8 region
  from a 64 KB reference frame (main-memory traffic on the scale
  machine), adds the residual, clamps, and stores to the current frame.

**Input categories** (the paper's Section 4.3 study): ``no_b`` streams
predict every block from one reference, ``with_b`` streams make every
third block bidirectional — it reads a *second* reference frame and
averages, exercising extra code paths and memory traffic, exactly the
structural difference between the paper's 100b/bbc and flwr/cact inputs.
"""

from __future__ import annotations

from repro.workloads import inputs as gen

N_BLOCKS = 54
FRAME_DIM = 128

SOURCE = """
# MPEG-style block decode: dequant + butterfly transform + motion comp.

func butterfly8(base: int) {
    # In-place 3-stage butterfly over work[base .. base+7] (stride 1).
    var s: int = 1;
    while (s < 8) {
        var g: int = 0;
        while (g < 8) {
            for (var i: int = g; i < g + s; i = i + 1) {
                var a: int = work[base + i];
                var b: int = work[base + i + s];
                work[base + i] = a + b;
                work[base + i + s] = a - b;
            }
            g = g + 2 * s;
        }
        s = s * 2;
    }
}

func clamppix(v: int) -> int {
    if (v < 0) { return 0; }
    if (v > 255) { return 255; }
    return v;
}

func main(nblocks: int) -> int {
    extern coeffs: int[3456];     # 54 blocks x 64 quantized coefficients
    extern mvs: int[108];         # (dx, dy) per block
    extern btype: int[54];        # 1 = bidirectional block
    extern ref0: int[16384];      # 128x128 forward reference
    extern ref1: int[16384];      # 128x128 backward reference
    array cur: int[16384];        # decoded frame
    array work: int[64];
    array qmat: int[64];

    # Intra-style quantizer matrix: 8 + distance from DC.
    for (var r: int = 0; r < 8; r = r + 1) {
        for (var c: int = 0; c < 8; c = c + 1) {
            qmat[r * 8 + c] = 8 + r + c;
        }
    }

    var checksum: int = 0;
    var blocks_per_row: int = 16;          # 128 / 8

    for (var b: int = 0; b < nblocks; b = b + 1) {
        var cbase: int = b * 64;

        # ---- dequantize into the work block
        for (var i: int = 0; i < 64; i = i + 1) {
            work[i] = coeffs[cbase + i] * qmat[i] >> 3;
        }

        # ---- 2-D transform: rows then columns (via transpose trick)
        for (var r: int = 0; r < 8; r = r + 1) {
            butterfly8(r * 8);
        }
        # transpose
        for (var r: int = 0; r < 8; r = r + 1) {
            for (var c: int = r + 1; c < 8; c = c + 1) {
                var t: int = work[r * 8 + c];
                work[r * 8 + c] = work[c * 8 + r];
                work[c * 8 + r] = t;
            }
        }
        for (var r: int = 0; r < 8; r = r + 1) {
            butterfly8(r * 8);
        }

        # ---- motion compensation
        var bx: int = (b % blocks_per_row) * 8;
        var by: int = (b / blocks_per_row) * 8;
        var dx: int = mvs[b * 2];
        var dy: int = mvs[b * 2 + 1];
        var sx: int = clampmv(bx + dx);
        var sy: int = clampmv(by + dy);
        var bidir: int = btype[b];

        for (var r: int = 0; r < 8; r = r + 1) {
            var dst: int = (by + r) * 128 + bx;
            var src: int = (sy + r) * 128 + sx;
            for (var c: int = 0; c < 8; c = c + 1) {
                var pred: int = ref0[src + c];
                if (bidir == 1) {
                    # average forward and (mirrored-motion) backward refs
                    pred = (pred + ref1[src + c] + 1) / 2;
                }
                var pix: int = clamppix(pred + (work[r * 8 + c] >> 6));
                cur[dst + c] = pix;
            }
        }
        checksum = (checksum + cur[by * 128 + bx] * 31 + cur[(by + 7) * 128 + bx + 7]) % 999983;
    }

    # fold a frame signature
    var sig: int = 0;
    for (var i: int = 0; i < 16384; i = i + 128) {
        sig = (sig + cur[i]) % 65521;
    }
    return checksum + sig;
}

func clampmv(v: int) -> int {
    if (v < 0) { return 0; }
    if (v > 120) { return 120; }
    return v;
}
"""


CATEGORIES = ("no_b", "with_b")


def make_inputs(category: str = "no_b", seed: int = 0) -> dict[str, list]:
    """Inputs for one stream category.

    The paper's four streams map to (category, seed) pairs:
    100b -> ("no_b", 0), bbc -> ("no_b", 1), flwr -> ("with_b", 0),
    cact -> ("with_b", 1).
    """
    generator = gen.rng(1000 + seed)
    ref0 = [int(v) for v in generator.integers(0, 256, size=FRAME_DIM * FRAME_DIM)]
    ref1 = [int(v) for v in generator.integers(0, 256, size=FRAME_DIM * FRAME_DIM)]
    magnitude = 4 if category == "no_b" else 10
    return {
        "coeffs": gen.dct_blocks(N_BLOCKS, seed=seed, sparsity=0.8),
        "mvs": gen.motion_vectors(N_BLOCKS, seed=seed, magnitude=magnitude),
        "btype": gen.b_frame_flags(N_BLOCKS, category),
        "ref0": ref0,
        "ref1": ref1,
    }


def make_registers() -> dict[str, float]:
    return {"main.nblocks": N_BLOCKS}
