"""GSM workload: full-rate speech encoder core.

MediaBench's gsm implements GSM 06.10 RPE-LTP full-rate coding.  This
kernel keeps its two dominant stages per 160-sample frame:

* **short-term analysis** — autocorrelation (lags 0..8), reflection
  coefficients via a Levinson/Schur-style recursion, and the short-term
  residual filter;
* **long-term prediction** — cross-correlation lag search over each
  40-sample subframe (the MAC-heavy inner loop that dominates gsm's
  runtime).

Fixed-point integer arithmetic with shifts, as in the reference coder.
Character: integer-multiply bound with streaming reads of the speech
buffer.
"""

from __future__ import annotations

from repro.workloads import inputs as gen

N_FRAMES = 5
FRAME = 160
N_SAMPLES = N_FRAMES * FRAME

SOURCE = """
# GSM-like short-term analysis + long-term predictor search.

func main(nframes: int) -> int {
    extern speech: int[800];      # nframes * 160 samples
    array autoc: int[9];
    array refl: int[8];
    array residual: int[800];
    array lags: int[32];          # best lag per subframe (4 per frame)
    array gains: int[32];

    var checksum: int = 0;

    for (var f: int = 0; f < nframes; f = f + 1) {
        var base: int = f * 160;

        # ---- autocorrelation, lags 0..8 (scaled >> 10)
        for (var k: int = 0; k <= 8; k = k + 1) {
            var sum: int = 0;
            for (var i: int = k; i < 160; i = i + 1) {
                sum = sum + (speech[base + i] * speech[base + i - k] >> 10);
            }
            autoc[k] = sum;
        }

        # ---- reflection coefficients (simplified Schur recursion)
        var err: int = autoc[0];
        if (err < 1) { err = 1; }
        for (var k: int = 0; k < 8; k = k + 1) {
            var r: int = (autoc[k + 1] << 8) / err;
            if (r > 255) { r = 255; }
            if (r < -255) { r = -255; }
            refl[k] = r;
            err = err - (r * r * err >> 16);
            if (err < 1) { err = 1; }
        }

        # ---- short-term residual filter (8-tap lattice approximation)
        for (var i: int = 0; i < 160; i = i + 1) {
            var pred: int = 0;
            var taps: int = 8;
            if (i < 8) { taps = i; }
            for (var k: int = 0; k < taps; k = k + 1) {
                pred = pred + (refl[k] * speech[base + i - 1 - k] >> 8);
            }
            residual[base + i] = speech[base + i] - pred;
        }

        # ---- long-term prediction: per 40-sample subframe, search the lag
        #      (40..120, step 3) maximizing cross-correlation.
        for (var sub: int = 0; sub < 4; sub = sub + 1) {
            var sbase: int = base + sub * 40;
            var best_lag: int = 40;
            var best_score: int = -2147483647;
            var lag: int = 40;
            while (lag <= 120) {
                if (sbase - lag >= 0) {
                    var score: int = 0;
                    for (var i: int = 0; i < 40; i = i + 1) {
                        score = score + (residual[sbase + i] * residual[sbase + i - lag] >> 6);
                    }
                    if (score > best_score) {
                        best_score = score;
                        best_lag = lag;
                    }
                }
                lag = lag + 3;
            }
            lags[f * 4 + sub] = best_lag;
            gains[f * 4 + sub] = best_score;
            checksum = (checksum + best_lag * 7 + (abs(best_score) % 9973)) % 999983;
        }
    }

    # fold residual energy into the checksum
    var energy: int = 0;
    for (var i: int = 0; i < nframes * 160; i = i + 1) {
        energy = (energy + abs(residual[i])) % 1000003;
    }
    return checksum * 3 + energy;
}
"""


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    return {"speech": gen.speech_like(N_SAMPLES, seed=seed)}


def make_registers() -> dict[str, float]:
    return {"main.nframes": N_FRAMES}
