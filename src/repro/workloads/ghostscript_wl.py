"""Ghostscript workload: scanline triangle rasterizer.

Ghostscript's core job is rasterizing page descriptions into a large
framebuffer.  This kernel reproduces the inner loop that dominates that
work: for each input triangle, scan its bounding box and test every pixel
against the three signed edge functions, writing covered pixels (flat
shading with a per-triangle colour) into a 128x128 framebuffer.

Character: integer multiply + branch heavy per pixel, with streaming
*store* traffic over a 64 KB framebuffer (bigger than the scale-model L2),
and highly variable per-triangle trip counts — the control-flow-diverse
profile of the suite.
"""

from __future__ import annotations

from repro.workloads import inputs as gen

N_TRIANGLES = 18
DIM = 128


SOURCE = """
# Edge-function triangle rasterization into a 128x128 framebuffer.

func edge(ax: int, ay: int, bx: int, by: int, px: int, py: int) -> int {
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

func main(ntri: int) -> int {
    extern tri: int[108];        # ntri * 6 vertex coordinates
    array fb: int[16384];        # 128x128 framebuffer

    var covered: int = 0;
    for (var t: int = 0; t < ntri; t = t + 1) {
        var tb: int = t * 6;
        var x0: int = tri[tb];     var y0: int = tri[tb + 1];
        var x1: int = tri[tb + 2]; var y1: int = tri[tb + 3];
        var x2: int = tri[tb + 4]; var y2: int = tri[tb + 5];

        # winding: flip to counter-clockwise if needed
        var area: int = edge(x0, y0, x1, y1, x2, y2);
        if (area < 0) {
            var tx: int = x1; x1 = x2; x2 = tx;
            var ty: int = y1; y1 = y2; y2 = ty;
            area = -area;
        }
        if (area == 0) { continue; }

        # bounding box
        var xmin: int = min(x0, min(x1, x2));
        var xmax: int = max(x0, max(x1, x2));
        var ymin: int = min(y0, min(y1, y2));
        var ymax: int = max(y0, max(y1, y2));
        var colour: int = (t * 37 + 11) % 255 + 1;

        for (var y: int = ymin; y <= ymax; y = y + 1) {
            var rowbase: int = y * 128;
            for (var x: int = xmin; x <= xmax; x = x + 1) {
                var w0: int = edge(x1, y1, x2, y2, x, y);
                var w1: int = edge(x2, y2, x0, y0, x, y);
                var w2: int = edge(x0, y0, x1, y1, x, y);
                if (w0 >= 0 && w1 >= 0 && w2 >= 0) {
                    fb[rowbase + x] = colour;
                    covered = covered + 1;
                }
            }
        }
    }

    # signature over the framebuffer
    var sig: int = 0;
    for (var i: int = 0; i < 16384; i = i + 64) {
        sig = (sig + fb[i] * (i % 251 + 1)) % 999983;
    }
    return covered + sig;
}
"""


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    return {"tri": gen.triangles(N_TRIANGLES, DIM, seed=seed)}


def make_registers() -> dict[str, float]:
    return {"main.ntri": N_TRIANGLES}
