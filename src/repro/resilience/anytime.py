"""Anytime optimization: a budgeted solve that always returns a schedule.

:func:`optimize_anytime` runs the Section 4.2 MILP under a wall-clock
budget and degrades through a fallback chain instead of raising:

1. **HiGHS** (``scipy``) with the remaining budget as its time limit —
   the normal fast path; a proven optimum when it finishes, a checked
   incumbent when it doesn't.
2. **Native simplex + branch-and-bound** with the remaining budget — the
   dependency-free backend; its ``LIMIT`` machinery already keeps the
   best incumbent and the tightest open bound.
3. **Continuous round-up** (:mod:`repro.core.continuous`) — the exact
   Li–Yao–Yuan continuous-voltage optimum rounded up to discrete modes.
   Deterministic polynomial time, so it *cannot* time out, and it prices
   its own gap against the continuous lower bound; feasible whenever the
   all-fastest schedule meets the deadline.
4. **Greedy heuristic** (:func:`repro.core.baselines.greedy.greedy_schedule`)
   — O(blocks × modes) construction from the profiled Table-7 style
   parameters; feasible by construction whenever any single mode meets
   the deadline, i.e. whenever the problem is feasible at all.

Every tier's output passes through the *same* two independent gates
before it is accepted:

* :func:`repro.verify.certificate.verify_certificate` (MILP tiers) —
  constraint residuals, bounds, integrality, objective recomputation;
* :func:`repro.verify.schedule_check.check_schedule` (all tiers) — a
  first-principles replay of the schedule against the profile with
  physically derived transition costs, including the deadline.

A tier whose output fails a gate is treated exactly like a tier that
crashed: the chain moves on.  The returned outcome names the accepted
tier, reports the optimality gap against the best proven lower bound
(the MILP dual bound, or the LP relaxation for the greedy tier) and
records every attempt so manifests can explain *why* a run degraded.

The only exception that escapes is genuine infeasibility: a deadline
below the all-fastest runtime has no schedule in any tier, and
pretending otherwise would emit an infeasible result — the one thing
this module exists to prevent.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.core.baselines.greedy import greedy_schedule
from repro.errors import ScheduleError
from repro.solver.solution import Solution, SolveStatus
from repro.verify.certificate import verify_certificate
from repro.verify.schedule_check import check_schedule

#: Smallest wall-clock slice worth handing to a MILP backend; with less
#: remaining the chain skips straight to cheaper tiers.
MIN_TIER_BUDGET_S = 0.01

#: Budget slice allowed for the LP-relaxation bound that prices the
#: greedy tier's optimality gap (skipped silently on failure).
RELAX_BOUND_BUDGET_S = 0.25

TIER_SCIPY = "milp-scipy"
TIER_NATIVE = "milp-native"
TIER_CONTINUOUS = "continuous"
TIER_GREEDY = "greedy"

logger = logging.getLogger("repro.anytime")


@dataclass(frozen=True)
class TierAttempt:
    """One rung of the fallback chain, for the manifest."""

    tier: str
    accepted: bool
    detail: str
    wall_time_s: float = 0.0

    def __str__(self) -> str:
        verdict = "accepted" if self.accepted else "rejected"
        return f"{self.tier}: {verdict} ({self.detail})"


def _lp_relaxation_bound(formulation, backend: str, time_limit: float) -> float | None:
    """Lower bound from the LP relaxation, or None when unavailable."""
    try:
        relaxed = formulation.model.solve(
            backend=backend, relax=True, time_limit=time_limit
        )
    except Exception:  # noqa: BLE001 — a bound is optional, a crash is not
        return None
    if relaxed.status is SolveStatus.OPTIMAL:
        return relaxed.objective
    return None


def optimize_anytime(
    optimizer,
    cfg,
    deadline_s: float,
    profile,
    budget_s: float,
    use_filtering: bool | None = None,
    hoist: bool = True,
):
    """Budgeted optimize that never raises except for true infeasibility.

    Args:
        optimizer: the :class:`~repro.core.scheduler.DVSOptimizer`.
        cfg: the program.
        deadline_s: execution-time budget for the profiled input.
        profile: the program's per-mode profile (must be pre-computed —
            profiling is not charged against the solver budget).
        budget_s: wall-clock budget for the solve chain, in seconds.
        use_filtering, hoist: as in
            :meth:`~repro.core.scheduler.DVSOptimizer.optimize`.

    Returns:
        an :class:`~repro.core.scheduler.OptimizationOutcome` whose
        ``fallback_tier``/``optimality_gap``/``tier_attempts`` fields
        describe how the schedule was obtained.

    Raises:
        ScheduleError: only when the deadline is genuinely infeasible
            (below the all-fastest-mode runtime).
    """
    from repro.core.scheduler import OptimizationOutcome

    if budget_s <= 0:
        raise ScheduleError(f"anytime budget must be positive, got {budget_s:g}")

    formulation, filter_result = optimizer.build(profile, deadline_s, use_filtering)
    machine = optimizer.machine
    start = observe.clock()
    attempts: list[TierAttempt] = []

    def remaining() -> float:
        return budget_s - (observe.clock() - start)

    def reject(attempt: TierAttempt) -> None:
        attempts.append(attempt)
        observe.add("anytime.tier_rejections")
        logger.info("anytime tier %s rejected: %s", attempt.tier, attempt.detail)

    def gate_schedule(schedule):
        """Independent replay check; returns (report, hoisted schedule)."""
        final = schedule.hoist_silent(profile) if hoist else schedule
        report = check_schedule(
            final, cfg, profile, machine.mode_table,
            machine.transition_model, deadline_s,
        )
        return report, final

    # -- MILP tiers -------------------------------------------------------------
    tiers = []
    if optimizer.backend != "continuous":
        if optimizer.backend in ("auto", "scipy"):
            tiers.append((TIER_SCIPY, "scipy"))
        tiers.append((TIER_NATIVE, "native"))

    for tier, backend in tiers:
        left = remaining()
        if left < MIN_TIER_BUDGET_S:
            reject(TierAttempt(tier, False, "budget exhausted"))
            continue
        with observe.span("anytime.tier", tier=tier, budget_s=left) as tsp:
            try:
                solution = formulation.solve(backend=backend, time_limit=left)
            except Exception as error:  # noqa: BLE001 — a dead backend is a tier miss
                reject(TierAttempt(
                    tier, False, f"{type(error).__name__}: {error}",
                    tsp.elapsed_s,
                ))
                continue
            tier_time = tsp.elapsed_s
            if not solution.has_incumbent:
                reject(TierAttempt(
                    tier, False, f"status {solution.status.value}, no incumbent",
                    tier_time,
                ))
                continue
            certificate = verify_certificate(formulation, solution, allow_incumbent=True)
            if not certificate.ok:
                reject(TierAttempt(tier, False, certificate.summary, tier_time))
                continue
            try:
                schedule = formulation.extract_schedule(solution, allow_incumbent=True)
                schedule.validate_against(cfg)
            except ScheduleError as error:
                reject(TierAttempt(tier, False, str(error), tier_time))
                continue
            feasibility, final = gate_schedule(schedule)
            if not feasibility.ok:
                reject(TierAttempt(tier, False, feasibility.summary, tier_time))
                continue

            gap = solution.optimality_gap()
            if gap is None:
                bound = _lp_relaxation_bound(
                    formulation, backend, max(remaining(), RELAX_BOUND_BUDGET_S)
                )
                if bound is not None:
                    gap = max(0.0, (solution.objective - bound)
                              / max(1.0, abs(solution.objective)))
            proven = solution.ok
            attempts.append(TierAttempt(
                tier, True,
                "proven optimal" if proven else
                f"incumbent, gap {gap:.3%}" if gap is not None else
                "incumbent, gap unknown",
                tsp.elapsed_s,
            ))
            observe.add(f"anytime.tier.{tier}")
            tsp.set(accepted=True)
        return OptimizationOutcome(
            schedule=final,
            solution=solution,
            formulation=formulation,
            profile=profile,
            predicted_energy_nj=solution.objective,
            predicted_time_s=formulation.predicted_time(solution),
            solve_time_s=observe.clock() - start,
            filter_result=filter_result,
            certificate=certificate,
            fallback_tier=tier,
            optimality_gap=gap,
            tier_attempts=tuple(attempts),
            schedule_check=feasibility,
        )

    # -- continuous round-up tier -----------------------------------------------
    # Deterministic polynomial time: this tier is exempt from the budget
    # check — it cannot time out, which is exactly why it sits between
    # the budgeted MILP tiers and the last-resort greedy.
    from repro.core.continuous import continuous_bound, round_up_schedule

    with observe.span("anytime.tier", tier=TIER_CONTINUOUS) as tsp:
        cont_outcome = None
        try:
            cont_bound = continuous_bound(
                profile, machine.mode_table, deadline_s
            )
            rounded = round_up_schedule(
                profile, machine.mode_table, deadline_s, cont_bound.speeds,
                machine.transition_model, filter_result,
            )
        except ScheduleError as error:
            reject(TierAttempt(TIER_CONTINUOUS, False, str(error), tsp.elapsed_s))
            rounded = None
        else:
            if rounded is None:
                reject(TierAttempt(
                    TIER_CONTINUOUS, False,
                    "all-fastest schedule misses the deadline", tsp.elapsed_s,
                ))
        if rounded is not None:
            x, objective, time_s = formulation.incumbent_vector(rounded.rep_modes)
            try:
                rounded.schedule.validate_against(cfg)
            except ScheduleError as error:
                reject(TierAttempt(TIER_CONTINUOUS, False, str(error), tsp.elapsed_s))
            else:
                feasibility, final = gate_schedule(rounded.schedule)
                if not feasibility.ok:
                    reject(TierAttempt(
                        TIER_CONTINUOUS, False, feasibility.summary, tsp.elapsed_s
                    ))
                else:
                    gap = max(0.0, (objective - cont_bound.energy_nj)
                              / max(1.0, abs(objective)))
                    attempts.append(TierAttempt(
                        TIER_CONTINUOUS, True,
                        f"round-up from continuous optimum, gap {gap:.3%}",
                        tsp.elapsed_s,
                    ))
                    observe.add(f"anytime.tier.{TIER_CONTINUOUS}")
                    tsp.set(accepted=True)
                    solution = Solution(
                        status=SolveStatus.FEASIBLE,
                        objective=objective,
                        x=x,
                        backend="continuous",
                        best_bound=cont_bound.energy_nj,
                    )
                    cont_outcome = OptimizationOutcome(
                        schedule=final,
                        solution=solution,
                        formulation=formulation,
                        profile=profile,
                        predicted_energy_nj=objective,
                        predicted_time_s=time_s,
                        solve_time_s=observe.clock() - start,
                        filter_result=filter_result,
                        certificate=None,
                        fallback_tier=TIER_CONTINUOUS,
                        optimality_gap=gap,
                        tier_attempts=tuple(attempts),
                        schedule_check=feasibility,
                    )
    if cont_outcome is not None:
        return cont_outcome

    # -- greedy tier ------------------------------------------------------------
    with observe.span("anytime.tier", tier=TIER_GREEDY) as tsp:
        # Raises ScheduleError when no single mode meets the deadline; such a
        # deadline is below the all-fastest runtime, so the MILP is infeasible
        # too and there is nothing feasible to return.
        greedy = greedy_schedule(
            profile, machine.mode_table, deadline_s,
            transition_model=machine.transition_model,
        )
        feasibility, final = gate_schedule(greedy.schedule)
        if not feasibility.ok:
            # By construction this cannot happen (the greedy acceptance check
            # prices exactly what the replay recomputes); treat it as the
            # infeasibility it would be rather than emit an unchecked result.
            raise ScheduleError(
                f"greedy fallback failed its feasibility replay: {feasibility.summary}"
            )
        bound = _lp_relaxation_bound(formulation, optimizer.backend
                                     if optimizer.backend != "auto" else "auto",
                                     RELAX_BOUND_BUDGET_S)
        gap = None
        if bound is not None:
            gap = max(0.0, (greedy.predicted_energy_nj - bound)
                      / max(1.0, abs(greedy.predicted_energy_nj)))
        attempts.append(TierAttempt(
            TIER_GREEDY, True,
            f"{greedy.moves_taken}/{greedy.moves_considered} moves"
            + (f", gap {gap:.3%}" if gap is not None else ", gap unknown"),
            tsp.elapsed_s,
        ))
        observe.add(f"anytime.tier.{TIER_GREEDY}")
        tsp.set(accepted=True)
    solution = Solution(
        status=SolveStatus.FEASIBLE,
        objective=greedy.predicted_energy_nj,
        x=np.empty(0),
        backend="greedy",
        best_bound=bound,
    )
    return OptimizationOutcome(
        schedule=final,
        solution=solution,
        formulation=formulation,
        profile=profile,
        predicted_energy_nj=greedy.predicted_energy_nj,
        predicted_time_s=greedy.predicted_time_s,
        solve_time_s=observe.clock() - start,
        filter_result=filter_result,
        certificate=None,
        fallback_tier=TIER_GREEDY,
        optimality_gap=gap,
        tier_attempts=tuple(attempts),
        schedule_check=feasibility,
    )
