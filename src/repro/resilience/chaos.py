"""Chaos harness: inject faults, then assert the resilience invariants.

``repro chaos`` runs the same experiment pipeline twice over a shared
artifact store:

1. a **baseline** sweep on a clean cache (also the reference output);
2. a **chaos** sweep after deliberately corrupting cache entries
   (seeded byte flips and truncations), with worker-kill fault
   injection and a starvation-level solver budget.

It then checks the contract the rest of :mod:`repro.resilience` claims
to provide:

* the chaos sweep *completes* — faults degrade it, never crash it;
* no emitted experiment fails verification (a fallback schedule is
  acceptable; an unverified one is not);
* every corrupted cache entry was detected and quarantined, and the
  store audits clean afterwards;
* experiments untouched by faults (no degraded solver tier, no
  unrecovered failure) produce records byte-identical to the baseline;
* the run reports the documented degraded exit code.

Any violated invariant is a *harness failure* (exit 1); a run that
merely absorbed its faults exits with :data:`~repro.resilience.EXIT_DEGRADED`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.resilience import EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK
from repro.runtime.cache import ArtifactStore, verify_store
from repro.runtime.executor import FaultSpec, TaskResult
from repro.runtime.sweep import SweepConfig, run_sweep


def _canon(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass
class ChaosReport:
    """What the harness injected, what survived, what broke."""

    baseline_dir: Path
    chaos_dir: Path
    experiments: int = 0
    corrupted_keys: list[str] = field(default_factory=list)
    quarantined: int = 0
    degraded_tasks: list[str] = field(default_factory=list)
    recovered_tasks: list[str] = field(default_factory=list)  # retried past a fault
    identical_rows: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held (faults absorbed, not leaked)."""
        return not self.violations

    @property
    def exit_code(self) -> int:
        if self.violations:
            return EXIT_FAILURE
        if self.quarantined or self.degraded_tasks or self.recovered_tasks:
            return EXIT_DEGRADED
        return EXIT_OK

    @property
    def summary(self) -> str:
        head = "chaos: invariants held" if self.ok else (
            f"chaos: {len(self.violations)} INVARIANT VIOLATION(S)")
        return (f"{head} — {self.experiments} experiments, "
                f"{len(self.corrupted_keys)} entries corrupted / "
                f"{self.quarantined} quarantined, "
                f"{len(self.recovered_tasks)} tasks recovered by retry, "
                f"{len(self.degraded_tasks)} solves degraded to a fallback "
                f"tier, {self.identical_rows} unaffected rows byte-identical "
                f"(exit {self.exit_code})")


def corrupt_entries(store: ArtifactStore, count: int,
                    rng: random.Random) -> list[str]:
    """Corrupt up to ``count`` stored documents in place; returns keys.

    Faults mimic real disk/interrupted-write damage: a truncation (torn
    write) or a single flipped byte (bit rot).  Either breaks the JSON
    parse, the envelope, or the embedded payload digest — the store must
    catch all three.
    """
    entries = list(store.iter_entries())
    chosen = rng.sample(entries, min(count, len(entries)))
    for key, path in chosen:
        data = bytearray(path.read_bytes())
        if len(data) < 2 or rng.random() < 0.5:
            path.write_bytes(bytes(data[: len(data) // 2]))  # torn write
        else:
            position = rng.randrange(len(data))
            data[position] ^= 0xFF  # bit rot; XOR never maps a byte to itself
            path.write_bytes(bytes(data))
    return sorted(key for key, _ in chosen)


def run_chaos(
    workloads: tuple[str, ...] = ("adpcm",),
    deadline_fracs: tuple[float, ...] = (0.5,),
    seed: int = 0,
    output_dir: str | Path = "chaos-results",
    jobs: int = 2,
    solver_budget_s: float = 0.05,
    corrupt: int = 2,
    fault_pattern: str | None = "simulate:*@1",
    chaos_seed: int = 0,
    on_task: Callable[[TaskResult], None] | None = None,
) -> ChaosReport:
    """Run the baseline + chaos sweeps and audit every invariant.

    Args:
        workloads / deadline_fracs / seed: the grid under test.
        output_dir: holds ``baseline/``, ``chaos/`` and the shared
            ``cache/`` store.
        jobs: worker processes for both sweeps.
        solver_budget_s: starvation-level anytime budget for the chaos
            sweep's ``optimize`` tasks (the baseline runs unbudgeted).
        corrupt: how many cache entries to damage between the runs.
        fault_pattern: executor fault spec (``PATTERN[@N]``) for the
            chaos sweep; ``@N`` faults are expected to be out-retried.
        chaos_seed: seeds the corruption RNG — same seed, same damage.
    """
    output_dir = Path(output_dir)
    cache_dir = output_dir / "cache"
    fault = FaultSpec.parse(fault_pattern) if fault_pattern else None
    # Retries must out-last bounded fault specs, or injected faults turn
    # into expected hard failures instead of recoveries.
    retries = (fault.fail_attempts + 1) if fault and fault.fail_attempts else 1

    baseline = run_sweep(SweepConfig(
        workloads=tuple(workloads), deadline_fracs=tuple(deadline_fracs),
        seed=seed, jobs=jobs, cache_dir=str(cache_dir),
        output_dir=str(output_dir / "baseline"),
    ), on_task=on_task)

    report = ChaosReport(
        baseline_dir=output_dir / "baseline",
        chaos_dir=output_dir / "chaos",
        experiments=len(baseline.graph.experiments),
    )
    if not baseline.ok:
        report.violations.append(
            f"baseline sweep failed before any fault was injected: "
            f"{[r['experiment'] for r in baseline.failures]}"
        )
        return report
    baseline_rows = {r["experiment"]: _canon(r)
                     for r in baseline.experiment_records}

    store = ArtifactStore(cache_dir)
    rng = random.Random(chaos_seed)
    report.corrupted_keys = corrupt_entries(store, corrupt, rng)

    chaos = run_sweep(SweepConfig(
        workloads=tuple(workloads), deadline_fracs=tuple(deadline_fracs),
        seed=seed, jobs=jobs, cache_dir=str(cache_dir),
        output_dir=str(output_dir / "chaos"),
        solver_budget_s=solver_budget_s, fault=fault, retries=retries,
    ), on_task=on_task)

    # Invariant: the chaos run completes (faults degrade, never abort).
    if chaos.interrupted or len(chaos.results) < len(chaos.graph.tasks):
        report.violations.append(
            f"chaos sweep did not complete: {len(chaos.results)}/"
            f"{len(chaos.graph.tasks)} tasks resolved"
        )
    report.degraded_tasks = chaos.degraded_tasks
    report.recovered_tasks = sorted(
        r.task_id for r in chaos.results.values()
        if r.ok and r.attempts > 1
    )
    report.quarantined = chaos.cache_stats.get("quarantined", 0)

    # Invariant: nothing unverified escapes.  A fallback schedule that
    # fails its own verification battery is the one unforgivable output.
    degraded_experiments = {
        eid for tid in report.degraded_tasks
        for eid in chaos.graph.tasks[tid].experiments
    }
    for record in chaos.experiment_records:
        eid = record["experiment"]
        if record["status"] == "verify_failed":
            report.violations.append(
                f"{eid}: emitted schedule failed verification under chaos"
            )
        elif record["status"] == "failed":
            report.violations.append(
                f"{eid}: hard failure leaked through retries: "
                f"{sorted(record.get('failures', {}))}"
            )
        elif record["status"] == "ok" and eid not in degraded_experiments:
            # Invariant: rows the faults never touched are byte-identical.
            if _canon(record) == baseline_rows.get(eid):
                report.identical_rows += 1
            else:
                report.violations.append(
                    f"{eid}: unaffected row drifted from the baseline"
                )

    # Invariant: every corrupted entry was caught, and the store is
    # clean again afterwards (quarantined and/or rewritten intact).
    if report.quarantined < len(report.corrupted_keys):
        report.violations.append(
            f"only {report.quarantined} of {len(report.corrupted_keys)} "
            f"corrupted cache entries were quarantined"
        )
    audit = verify_store(store, quarantine=False)
    if not audit.ok:
        report.violations.append(
            f"store still corrupt after the chaos run: {audit.summary}"
        )
    return report
