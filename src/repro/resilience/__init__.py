"""Fault tolerance across the optimization pipeline.

The MILP of Sections 4–5 is only usable inside a compiler if it always
yields *some* feasible mode schedule within a compile-time budget, and a
long experiment sweep is only usable on real infrastructure if a crash,
a corrupted artifact or a hung solver degrades the run instead of
destroying it.  This package supplies those guarantees:

* :mod:`repro.resilience.anytime` — budgeted solving with a fallback
  chain (HiGHS → native simplex+B&B incumbent → greedy heuristic); every
  call returns a feasible, independently checked schedule annotated with
  the tier that produced it and its optimality gap;
* :mod:`repro.resilience.journal` — the crash-safe sweep journal behind
  ``repro sweep --resume``: completed tasks are recorded with an atomic,
  fsynced append, so a SIGKILL'd sweep resumes without repeating work
  and reproduces byte-identical results;
* :mod:`repro.resilience.faultplane` — the unified fault-injection
  plane: one deterministic seeded :class:`~repro.resilience.faultplane.FaultPlan`
  schedules every injectable fault point (cache corruption, torn
  journal writes, worker crashes/hangs, solver limits, dropped serve
  connections) and propagates to child processes via
  ``REPRO_FAULTPLAN``;
* :mod:`repro.resilience.chaos` — the fault-injection harness behind
  ``repro chaos``: corrupts cache entries, kills workers and starves the
  solver, then asserts the invariants (no unverified schedule escapes,
  degraded runs exit with the documented code, untouched rows stay
  deterministic);
* :mod:`repro.resilience.campaign` — the seeded chaos campaign behind
  ``repro chaos --campaign``: a fault matrix over the whole catalog
  against a real spawned server, with SIGKILL → ``serve --resume``
  cycles, byte-identity checks against fault-free references, and a
  machine-readable ``campaign.json`` report.

Exit codes (shared with the CLI) live in :data:`EXIT_OK` … so tests,
docs and scripts agree on what "degraded" means.
"""

#: Run finished, nothing failed, no fallbacks engaged.
EXIT_OK = 0
#: Hard failure: an emitted result failed verification, or the command
#: itself could not run.
EXIT_FAILURE = 1
#: Unusable input (missing/unreadable file, malformed flags) — also what
#: argparse uses for usage errors.
EXIT_USAGE = 2
#: The run *completed* but absorbed faults: tasks failed or were
#: skipped, a fallback solver tier produced a schedule, or corrupt cache
#: entries were quarantined.  Every emitted result is still verified.
EXIT_DEGRADED = 3
#: The run was interrupted (SIGINT) after draining in-flight tasks and
#: writing a valid partial journal; resume with ``--resume``.
EXIT_INTERRUPTED = 130

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_DEGRADED",
    "EXIT_INTERRUPTED",
]
