"""Unified deterministic fault-injection plane.

Earlier PRs grew three ad-hoc chaos mechanisms: cache corruption in
:mod:`repro.resilience.chaos`, per-task ``inject_fault`` payload flags in
the executor, and worker SIGKILLs in :mod:`repro.serve.chaos`.  This
module replaces the scattered *injection hooks* with one registry of
named fault points and one seeded :class:`FaultPlan` that decides, per
point, on exactly which hit counts the fault fires.

Design:

* every injectable site in the codebase calls :func:`fire` (or a helper
  built on it) with its catalog name; with no plan installed this is a
  dictionary miss and an early return — production cost is negligible;
* a plan is a pure-data schedule ``{point: (hit numbers, ...)}`` built
  either explicitly or via :meth:`FaultPlan.from_seed`, so a chaos
  campaign can sweep seeds and still replay any failure exactly;
* plans propagate to forked pool workers through the ``REPRO_FAULTPLAN``
  environment variable (the same pattern ``$REPRO_SOLVER_ENGINE`` uses):
  :func:`install` with ``env=True`` exports the plan, and each process
  lazily loads it on the first :func:`fire` call.  Hit counters are
  per-process; a worker forked after the parent counted hits inherits
  the parent's counts, and a respawned worker restarts from the fork
  snapshot — so a scheduled hit may fire once more after a pool respawn.
  Retries absorb that; determinism of *results* is unaffected.

Every injection increments the ``faultplane.injected.<point>`` counter,
which worker transports ship back to the parent like every other observe
counter, so ``/v1/metrics`` and the campaign report can prove which
points were actually exercised.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import observe
from repro.errors import OrchestrationError

logger = logging.getLogger(__name__)

#: Environment variable carrying a JSON-encoded plan to child processes.
PLAN_ENV = "REPRO_FAULTPLAN"

#: Registry of injectable fault points: name -> what firing does.
CATALOG: dict[str, str] = {
    "cache.read.corrupt": "damage the artifact file before the store reads it",
    "cache.write.torn": "truncate an artifact file right after its atomic write",
    "io.slow": "sleep plan.slow_s inside artifact store get/put",
    "worker.crash": "raise InjectedFault from a pool task entry",
    "worker.hang": "sleep plan.hang_s inside the task timeout window",
    "solver.limit": "raise SolverLimitError before backend dispatch",
    "serve.accept.drop": "close an accepted HTTP connection before reading",
    "serve.read.drop": "drop a parsed HTTP request without answering",
    "serve.write.drop": "abort the connection instead of sending the response",
    "journal.torn": "write only a prefix of a journal append (simulated power loss)",
}


def _canonical_schedule(
    schedule: Mapping[str, Sequence[int]],
) -> dict[str, tuple[int, ...]]:
    out: dict[str, tuple[int, ...]] = {}
    for point, hits in schedule.items():
        if point not in CATALOG:
            raise OrchestrationError(
                f"unknown fault point {point!r}; catalog: {sorted(CATALOG)}"
            )
        cleaned = tuple(sorted({int(h) for h in hits}))
        if any(h < 1 for h in cleaned):
            raise OrchestrationError(
                f"fault point {point!r}: hit numbers are 1-based, got {hits!r}"
            )
        if cleaned:
            out[point] = cleaned
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable schedule of fault injections.

    Args:
        seed: identity of the plan (recorded in reports; also the RNG
            seed when built via :meth:`from_seed`).
        schedule: mapping of catalog point -> 1-based hit numbers on
            which that point fires.  Hits are counted per process.
        hang_s: sleep injected by ``worker.hang``.
        slow_s: sleep injected by ``io.slow``.
    """

    seed: int
    schedule: dict[str, tuple[int, ...]] = field(default_factory=dict)
    hang_s: float = 0.5
    slow_s: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", _canonical_schedule(self.schedule))

    @classmethod
    def from_seed(
        cls,
        seed: int,
        points: Sequence[str] | None = None,
        max_fires: int = 2,
        horizon: int = 6,
        hang_s: float = 0.5,
        slow_s: float = 0.05,
    ) -> "FaultPlan":
        """Build a plan where every requested point fires 1..max_fires
        times somewhere in its first ``horizon`` hits."""
        rng = random.Random(seed)
        schedule: dict[str, tuple[int, ...]] = {}
        for point in sorted(points if points is not None else CATALOG):
            fires = rng.randint(1, max(1, max_fires))
            fires = min(fires, horizon)
            schedule[point] = tuple(sorted(rng.sample(range(1, horizon + 1), fires)))
        return cls(seed=seed, schedule=schedule, hang_s=hang_s, slow_s=slow_s)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "schedule": {p: list(h) for p, h in self.schedule.items()},
                "hang_s": self.hang_s,
                "slow_s": self.slow_s,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as error:
            raise OrchestrationError(f"unparsable fault plan: {error}") from error
        if not isinstance(doc, dict) or not isinstance(doc.get("schedule"), dict):
            raise OrchestrationError("fault plan must be an object with a schedule")
        return cls(
            seed=int(doc.get("seed", 0)),
            schedule={str(p): tuple(h) for p, h in doc["schedule"].items()},
            hang_s=float(doc.get("hang_s", 0.5)),
            slow_s=float(doc.get("slow_s", 0.05)),
        )


class _Runtime:
    """Per-process plan state: the installed plan plus hit counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.hits: dict[str, int] = {}
        self.lock = threading.Lock()

    def fire(self, point: str) -> bool:
        scheduled = self.plan.schedule.get(point)
        with self.lock:
            count = self.hits.get(point, 0) + 1
            self.hits[point] = count
        return scheduled is not None and count in scheduled


_runtime: _Runtime | None = None
_env_loaded = False
_state_lock = threading.Lock()


def _current() -> _Runtime | None:
    global _runtime, _env_loaded
    if _runtime is None and not _env_loaded:
        with _state_lock:
            if _runtime is None and not _env_loaded:
                _env_loaded = True
                text = os.environ.get(PLAN_ENV)
                if text:
                    try:
                        _runtime = _Runtime(FaultPlan.from_json(text))
                    except OrchestrationError as error:
                        logger.warning("ignoring %s: %s", PLAN_ENV, error)
    return _runtime


def install(plan: FaultPlan, env: bool = False) -> None:
    """Activate ``plan`` in this process (and, with ``env=True``, export
    it so forked/spawned children pick it up too)."""
    global _runtime, _env_loaded
    with _state_lock:
        _runtime = _Runtime(plan)
        _env_loaded = True
    if env:
        os.environ[PLAN_ENV] = plan.to_json()


def uninstall() -> None:
    """Deactivate fault injection and drop the environment export."""
    global _runtime, _env_loaded
    with _state_lock:
        _runtime = None
        _env_loaded = False
    os.environ.pop(PLAN_ENV, None)


def active_plan() -> FaultPlan | None:
    """The plan currently governing this process, if any."""
    runtime = _current()
    return None if runtime is None else runtime.plan


def fire(point: str) -> bool:
    """Count one hit of ``point``; True when the plan says it fires now.

    Unknown points raise :class:`OrchestrationError` even with no plan
    installed, so a typo at an injection site cannot silently disable a
    fault forever.
    """
    if point not in CATALOG:
        raise OrchestrationError(
            f"unknown fault point {point!r}; catalog: {sorted(CATALOG)}"
        )
    runtime = _current()
    if runtime is None:
        return False
    if not runtime.fire(point):
        return False
    observe.add(f"faultplane.injected.{point}")
    logger.warning("faultplane: injected %s (hit %d)",
                   point, runtime.hits.get(point, 0))
    return True


def stall(point: str) -> bool:
    """Latency fault: sleep the plan's duration for ``point`` if it fires."""
    runtime = _current()
    if runtime is None:
        # Still validate the point name on the cheap path.
        if point not in CATALOG:
            raise OrchestrationError(f"unknown fault point {point!r}")
        return False
    if not fire(point):
        return False
    time.sleep(runtime.plan.slow_s if point == "io.slow" else runtime.plan.hang_s)
    return True


def torn_text(text: str, point: str = "journal.torn") -> str | None:
    """Torn-write fault for journal appends.

    Returns the prefix that "made it to disk" when ``point`` fires for
    this append, else None (the append proceeds normally).
    """
    if not fire(point):
        return None
    return text[: max(1, len(text) // 2)]


def damage_file(path: os.PathLike | str) -> bool:
    """Shared corruption primitive: truncate a file to half its bytes.

    Used by the cache fault points and by the chaos harness, so "disk
    damage" means the same thing everywhere.  Returns False when the
    file is missing or empty.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size == 0:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(max(1, size // 2))
    return True


__all__ = [
    "CATALOG",
    "PLAN_ENV",
    "FaultPlan",
    "active_plan",
    "damage_file",
    "fire",
    "install",
    "stall",
    "torn_text",
    "uninstall",
]
