"""Crash-safe sweep journal: resumable progress on append-only JSONL.

A sweep writes one journal line per *completed* task — the task id plus
its full output payload and a digest of that payload — so that a run
killed at any instant (SIGINT, SIGKILL, power loss) can be restarted
with ``repro sweep --resume`` and skip everything that already finished.

Durability contract:

* the file starts with a **header** carrying a fingerprint of the sweep
  grid; resuming against a journal written for a different grid is an
  error, not a silent mix of incompatible results;
* every append is flushed and ``fsync``\\ ed before the executor moves
  on, so a journal line either exists completely or not at all — except
  for the final line of a crashed run, which may be **torn**;
* :meth:`SweepJournal.load_completed` therefore stops at the first
  unparsable line (appends are ordered, so everything before it is
  intact) and drops any entry whose payload digest does not verify;
* entries record the *output* of the task, so a resumed sweep replays
  them without recomputation and produces a byte-identical
  ``results.jsonl`` — the determinism contract survives the crash.

Degraded outputs (``_cacheable: false``, e.g. a fallback schedule from a
budget-starved solver) are deliberately **not** journaled by the sweep:
a resumed run gets a fresh chance at the exact answer.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, TextIO

from repro.errors import JournalError
from repro.resilience import faultplane

logger = logging.getLogger(__name__)


def payload_digest(payload: dict[str, Any]) -> str:
    """Canonical payload digest (lazy import: ``repro.runtime.sweep``
    imports this module, so a top-level import of ``repro.runtime.cache``
    would be circular whenever the journal is imported first)."""
    from repro.runtime.cache import payload_digest as digest

    return digest(payload)

#: On-disk journal format version.
JOURNAL_FORMAT = 1


def run_fingerprint(grid: dict[str, Any]) -> str:
    """Stable identity of a sweep grid (what a journal may resume)."""
    text = json.dumps(grid, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


class SweepJournal:
    """Append-only completion log for one sweep output directory.

    Args:
        path: journal file location (conventionally
            ``<output-dir>/journal.jsonl``).
        fingerprint: grid identity from :func:`run_fingerprint`; guards
            against resuming an unrelated sweep's journal.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._handle: TextIO | None = None
        self._broken = False

    # -- reading ---------------------------------------------------------------

    def _header(self) -> dict[str, Any] | None:
        """Parsed header line of an existing journal, else None."""
        try:
            with open(self.path) as handle:
                first = handle.readline()
        except OSError:
            return None
        try:
            record = json.loads(first)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or record.get("type") != "header":
            return None
        return record

    def load_completed(self) -> dict[str, dict[str, Any]]:
        """Outputs of every task the previous run durably finished.

        Raises:
            JournalError: the journal belongs to a different grid or a
                different journal format — resuming would silently mix
                incompatible results.
        """
        if not self.path.is_file():
            return {}
        header = self._header()
        if header is None:
            # Torn before the header ever landed: nothing to resume.
            return {}
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"journal {self.path} has format {header.get('format')!r}, "
                f"this build writes {JOURNAL_FORMAT}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise JournalError(
                f"journal {self.path} was written for a different sweep grid "
                f"(fingerprint {str(header.get('fingerprint'))[:12]}… != "
                f"{self.fingerprint[:12]}…); use a fresh --output-dir or drop "
                f"--resume"
            )
        completed: dict[str, dict[str, Any]] = {}
        with open(self.path) as handle:
            handle.readline()  # header, validated above
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail of a crashed append; later bytes untrusted
                if not isinstance(record, dict) or record.get("type") != "task":
                    continue
                task_id = record.get("task")
                output = record.get("output")
                if not isinstance(task_id, str) or not isinstance(output, dict):
                    continue
                if record.get("digest") != payload_digest(output):
                    continue  # bit rot: cheaper to recompute than to trust
                completed[task_id] = output
        return completed

    # -- writing ---------------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Open the journal for appending.

        A fresh run (or a resume against a missing/header-less file)
        truncates and writes a new header; a resume against a validated
        journal appends after the existing entries.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append = resume and self._header() is not None
        self._handle = open(self.path, "a" if append else "w")
        if not append:
            self._append({
                "type": "header",
                "format": JOURNAL_FORMAT,
                "fingerprint": self.fingerprint,
            })

    def record(self, task_id: str, output: dict[str, Any]) -> None:
        """Durably note one finished task (flush + fsync before return)."""
        if self._handle is None:
            raise JournalError("journal not started")
        self._append({
            "type": "task",
            "task": task_id,
            "digest": payload_digest(output),
            "output": output,
        })

    def _append(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        if self._broken:
            return
        text = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        torn = faultplane.torn_text(text)
        if torn is not None:
            # Simulated power loss mid-append: appending after the torn
            # line would glue valid JSON onto it and make load_completed
            # drop everything that follows, so the journal fails safe —
            # it stops recording (a resume recomputes the lost tail).
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._broken = True
            logger.warning(
                "sweep journal %s: torn write injected; journaling disabled "
                "for this process (resume will recompute the lost tail)",
                self.path)
            return
        self._handle.write(text)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @property
    def broken(self) -> bool:
        """True once an (injected) torn write disabled further appends."""
        return self._broken

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
