"""``repro chaos --campaign`` — a seeded fault-matrix sweep.

For each seed the campaign builds a :class:`~repro.resilience.faultplane.
FaultPlan` over (almost) the whole fault-point catalog, exports it to a
real ``repro serve`` subprocess, and drives traffic through the
resilient client while the plan drops connections, crashes workers,
corrupts cache entries and starves the solver.  Then it SIGKILLs the
server with finished + running + queued jobs on the books and restarts
it with ``--resume``.  The invariants checked per seed:

* every request eventually succeeds (the client's backoff absorbs the
  injected drops and rejections);
* **no unverified schedule escapes**: every served row has status
  ``ok``, and non-degraded rows are byte-identical to a fault-free
  reference computed in-process;
* **no job is lost across kill→resume**: every job admitted before the
  SIGKILL reaches a terminal state after ``--resume``, finished jobs
  are *replayed* byte-identically (not recomputed), and the resumed
  server drains cleanly;
* **torn journal writes never corrupt recovery**: a dedicated in-process
  check fires ``journal.torn`` against a scratch job store and asserts
  that every record before the tear survives loading.

``journal.torn`` is deliberately excluded from the *server* plans: an
injected torn admit record simulates a disk that lost the fsync'd write,
and a job whose admission never became durable is outside the recovery
contract.  The dedicated check covers the point instead.

The report (``campaign.json``) is machine-readable; CI asserts zero
violations and a minimum number of distinct fault points exercised.
Exit codes follow the chaos ladder: 0 nothing fired (suspicious for a
campaign), 3 faults injected and absorbed, 1 violations found.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServeError
from repro.resilience import EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK, faultplane
from repro.resilience.faultplane import CATALOG, FaultPlan
from repro.runtime import manifest as manifest_mod
from repro.runtime.dag import build_task_graph
from repro.runtime.executor import ExecutorConfig, run_graph
from repro.serve import protocol
from repro.serve.client import ReproClient, RetryPolicy
from repro.serve.jobstore import JobStore

#: Schema tag for campaign.json consumers.
CAMPAIGN_FORMAT = 1

#: The listening line ``repro serve`` prints.
_LISTEN_PREFIX = "repro serve listening on http://"


@dataclass(frozen=True)
class CampaignConfig:
    """One chaos campaign."""

    seeds: int = 3
    workload: str = "adpcm"
    traffic_fracs: tuple[float, ...] = (0.35, 0.5)
    kill_fracs: tuple[float, ...] = (0.62, 0.81)  # fresh points for the kill
    duplicates: int = 2  # extra submissions per traffic point
    output_dir: str | Path = "chaos-campaign"
    horizon: int = 6  # fault hits land within the first N per point
    poll_timeout_s: float = 240.0
    spawn_timeout_s: float = 90.0


@dataclass
class SeedResult:
    """What one seed's plan did to one server pair."""

    seed: int
    plan: dict[str, Any] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    requests: int = 0
    retries: int = 0
    rejected: int = 0
    recovered: int = 0
    replayed: int = 0
    resume_drain_exit: int | None = None


@dataclass
class CampaignReport:
    """Aggregated campaign outcome (serialized to campaign.json)."""

    config: CampaignConfig
    seeds: list[SeedResult] = field(default_factory=list)

    @property
    def points_exercised(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for seed in self.seeds:
            for point, count in seed.fired.items():
                merged[point] = merged.get(point, 0) + count
        return dict(sorted(merged.items()))

    @property
    def violations(self) -> list[str]:
        return [f"seed {seed.seed}: {violation}"
                for seed in self.seeds for violation in seed.violations]

    @property
    def total_fires(self) -> int:
        return sum(self.points_exercised.values())

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        if self.violations:
            return EXIT_FAILURE
        return EXIT_DEGRADED if self.total_fires else EXIT_OK

    @property
    def summary(self) -> str:
        points = self.points_exercised
        status = ("FAILED" if self.violations
                  else "ok (faults absorbed)" if self.total_fires else "ok")
        return (f"chaos campaign {status}: {len(self.seeds)} seed(s), "
                f"{self.total_fires} faults injected across "
                f"{len(points)}/{len(CATALOG)} points, "
                f"{len(self.violations)} violation(s)")

    def to_document(self) -> dict[str, Any]:
        return {
            "format": CAMPAIGN_FORMAT,
            "workload": self.config.workload,
            "traffic_fracs": list(self.config.traffic_fracs),
            "kill_fracs": list(self.config.kill_fracs),
            "seeds": [
                {
                    "seed": seed.seed,
                    "plan": seed.plan,
                    "fired": dict(sorted(seed.fired.items())),
                    "violations": list(seed.violations),
                    "requests": seed.requests,
                    "retries": seed.retries,
                    "rejected": seed.rejected,
                    "recovered": seed.recovered,
                    "replayed": seed.replayed,
                    "resume_drain_exit": seed.resume_drain_exit,
                }
                for seed in self.seeds
            ],
            "points_exercised": self.points_exercised,
            "points_total": len(CATALOG),
            "total_fires": self.total_fires,
            "violations": self.violations,
            "exit_code": self.exit_code,
            "summary": self.summary,
        }


def write_report(report: CampaignReport, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_document(), indent=2) + "\n")
    return path


# -- fault-free reference --------------------------------------------------------


def _canon(row: dict[str, Any]) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def reference_rows(workload: str, fracs: tuple[float, ...],
                   ) -> dict[float, list[str]]:
    """Fault-free rows per deadline fraction, as canonical JSON strings.

    Built exactly the way the server builds a response: the canonical
    request expands to its experiment grid, the DAG runs (here: inline,
    no cache, no faults), and the deterministic ``results.jsonl``
    records are the rows.  This is the byte-identity baseline every
    served and replayed response is compared against.
    """
    reference: dict[float, list[str]] = {}
    for frac in fracs:
        parsed = protocol.parse_request(
            {"workload": workload, "deadline_frac": frac})
        graph = build_task_graph(list(parsed.experiments),
                                 solver_budget_s=None, solver_backend="auto")
        results = run_graph(graph, store=None, config=ExecutorConfig(jobs=1))
        rows = [manifest_mod.experiment_record(spec, graph, results)
                for spec in sorted(graph.experiments,
                                   key=lambda s: s.experiment_id)]
        reference[frac] = [_canon(row) for row in rows]
    return reference


# -- server harness --------------------------------------------------------------


class _ServerProc:
    """One spawned ``repro serve`` subprocess."""

    def __init__(self, proc: subprocess.Popen, host: str, port: int) -> None:
        self.proc = proc
        self.host = host
        self.port = port

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def drain(self, timeout_s: float = 120.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)
            return -9

    def ensure_dead(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                pass


def _spawn_server(cache_dir: Path, store_dir: Path, env: dict[str, str],
                  resume: bool, timeout_s: float) -> _ServerProc:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--jobs", "1", "--runs", "1", "--retries", "3",
        "--cache-dir", str(cache_dir), "--store-dir", str(store_dir),
    ]
    if resume:
        command.append("--resume")
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise ServeError(f"campaign server exited early "
                             f"(code {proc.poll()}) before listening")
        if _LISTEN_PREFIX in line:
            address = line.split(_LISTEN_PREFIX, 1)[1].split()[0]
            host, _, port = address.partition(":")
            return _ServerProc(proc, host, int(port))
    proc.kill()
    raise ServeError("campaign server never printed its listening line")


def _fault_counters(metrics: dict[str, Any] | None) -> dict[str, int]:
    if not metrics:
        return {}
    counters = metrics.get("counters", {})
    prefix = "faultplane.injected."
    return {name[len(prefix):]: int(count)
            for name, count in counters.items() if name.startswith(prefix)}


def _merge_fired(into: dict[str, int], fired: dict[str, int]) -> None:
    for point, count in fired.items():
        into[point] = into.get(point, 0) + count


def _job_id_for(workload: str, frac: float) -> str:
    return protocol.parse_request(
        {"workload": workload, "deadline_frac": frac}).job_id


def _check_rows(document: dict[str, Any], reference: list[str],
                label: str, violations: list[str]) -> None:
    rows = document.get("results")
    if not isinstance(rows, list) or not rows:
        violations.append(f"{label}: response carries no result rows")
        return
    bad = [row for row in rows
           if not isinstance(row, dict) or row.get("status") != "ok"]
    if bad:
        violations.append(
            f"{label}: {len(bad)} unverified row(s) escaped")
        return
    if document.get("degraded"):
        return  # degraded answers are honest, but not byte-comparable
    got = [_canon(row) for row in rows]
    if got != reference:
        violations.append(
            f"{label}: rows drifted from the fault-free reference")


# -- per-seed drive --------------------------------------------------------------


def _poll_job(client: ReproClient, job_id: str, states: tuple[str, ...],
              timeout_s: float) -> dict[str, Any] | None:
    """Poll ``/v1/jobs/<id>`` until its state lands in ``states``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        outcome = client.get_json(f"/v1/jobs/{job_id}")
        if outcome.ok and outcome.document is not None:
            state = outcome.document.get("job", {}).get("state")
            if state in states:
                return outcome.document
        time.sleep(0.2)
    return None


def _torn_journal_check(seed: int, scratch: Path,
                        result: SeedResult) -> None:
    """The journal.torn leg: tear an append, prove recovery stays clean."""
    before = dict(result.fired)
    # Hit 4 is the admit of the second job: header(1), admit A(2),
    # finish A(3), admit B(4) — so everything recorded before the tear
    # must survive and nothing after it may turn to garbage.
    faultplane.install(FaultPlan(seed=seed,
                                 schedule={"journal.torn": (4,)}))
    try:
        store = JobStore(scratch)
        store.start()
        parsed_a = protocol.parse_request({"workload": "adpcm",
                                           "deadline_frac": 0.5})
        parsed_b = protocol.parse_request({"workload": "adpcm",
                                           "deadline_frac": 0.7})
        store.admit(parsed_a.request_key, parsed_a.job_id, "anon",
                    parsed_a.canonical)
        store.finished(parsed_a.request_key, "done",
                       result={"request": parsed_a.canonical, "results": []})
        store.admit(parsed_b.request_key, parsed_b.job_id, "anon",
                    parsed_b.canonical)  # torn mid-record
        store.finished(parsed_b.request_key, "done", result={})  # no-op: broken
        store.close()
        if not store.broken:
            result.violations.append(
                "torn-journal check: the scheduled tear never fired")
            return
        recovered = JobStore(scratch).load()
        job_a = recovered.get(parsed_a.request_key)
        if job_a is None or job_a.state != "done" or job_a.result is None:
            result.violations.append(
                "torn-journal check: a completed entry recorded before "
                "the tear was lost")
        job_b = recovered.get(parsed_b.request_key)
        if job_b is not None and job_b.state != "queued":
            result.violations.append(
                "torn-journal check: the torn record resurfaced with state "
                f"{job_b.state!r}")
    finally:
        faultplane.uninstall()
        result.fired = dict(result.fired)
        _merge_fired(result.fired, {"journal.torn": 1})
        del before  # merged explicitly above; local fire count is known


def _run_seed(seed: int, config: CampaignConfig, out_dir: Path,
              reference: dict[float, list[str]],
              log: Callable[[str], None]) -> SeedResult:
    result = SeedResult(seed=seed)
    plan = FaultPlan.from_seed(
        seed, points=[p for p in CATALOG if p != "journal.torn"],
        horizon=config.horizon)
    result.plan = json.loads(plan.to_json())
    seed_dir = out_dir / f"seed-{seed}"
    cache_dir, store_dir = seed_dir / "cache", seed_dir / "jobs"
    env = dict(os.environ)
    env[faultplane.PLAN_ENV] = plan.to_json()
    policy = RetryPolicy(max_attempts=8, timeout_s=config.poll_timeout_s)

    def record(outcome) -> None:
        result.requests += 1
        result.retries += outcome.retries
        result.rejected += outcome.rejected

    server = _spawn_server(cache_dir, store_dir, env, resume=False,
                           timeout_s=config.spawn_timeout_s)
    metrics_a: dict[str, Any] | None = None
    try:
        client = ReproClient(server.host, server.port, policy=policy,
                             seed=seed)
        # Phase 1: wait-mode traffic (with duplicates) under faults.
        for frac in config.traffic_fracs:
            for repeat in range(1 + config.duplicates):
                outcome = client.submit({"workload": config.workload,
                                         "deadline_frac": frac,
                                         "wait": True})
                record(outcome)
                label = f"traffic frac={frac} repeat={repeat}"
                if not outcome.ok or outcome.document is None:
                    result.violations.append(
                        f"{label}: final status {outcome.status} "
                        f"({outcome.error or 'no body'})")
                    continue
                _check_rows(outcome.document, reference[frac], label,
                            result.violations)
        log(f"seed {seed}: traffic done "
            f"({result.requests} requests, {result.retries} retries)")

        # Phase 2: put fresh jobs on the books, then SIGKILL.
        kill_running, kill_queued = config.kill_fracs[0], config.kill_fracs[1]
        for frac in (kill_running, kill_queued):
            outcome = client.submit({"workload": config.workload,
                                     "deadline_frac": frac})
            record(outcome)
            if outcome.status not in (200, 202):
                result.violations.append(
                    f"kill-phase submit frac={frac}: status {outcome.status}")
        running_id = _job_id_for(config.workload, kill_running)
        if _poll_job(client, running_id, ("running", "done"),
                     config.poll_timeout_s) is None:
            result.violations.append(
                "kill-phase job never reached running before the SIGKILL")
        metrics_a = (client.get_json("/v1/metrics").document or None)
        server.sigkill()
        log(f"seed {seed}: server SIGKILLed with jobs in flight")
    finally:
        server.ensure_dead()
    _merge_fired(result.fired, _fault_counters(metrics_a))

    # Phase 3: resume and hold the durability contract to account.
    resumed = _spawn_server(cache_dir, store_dir, env, resume=True,
                            timeout_s=config.spawn_timeout_s)
    metrics_b: dict[str, Any] | None = None
    try:
        client = ReproClient(resumed.host, resumed.port, policy=policy,
                             seed=seed + 1)
        # Finished jobs must replay byte-identically, without a re-run.
        for frac in config.traffic_fracs:
            job_id = _job_id_for(config.workload, frac)
            document = _poll_job(client, job_id, ("done",), 10.0)
            if document is None:
                result.violations.append(
                    f"replayed job for frac={frac} not terminal after resume")
                continue
            _check_rows(document, reference[frac], f"replay frac={frac}",
                        result.violations)
        # Interrupted and queued jobs must re-run to a terminal state.
        for frac in config.kill_fracs:
            job_id = _job_id_for(config.workload, frac)
            document = _poll_job(client, job_id, ("done", "failed"),
                                 config.poll_timeout_s)
            if document is None:
                result.violations.append(
                    f"admitted job frac={frac} lost across kill->resume")
                continue
            if document.get("job", {}).get("state") != "done":
                result.violations.append(
                    f"recovered job frac={frac} finished as "
                    f"{document.get('job', {}).get('state')!r}")
                continue
            if frac in reference:
                _check_rows(document, reference[frac],
                            f"recovered frac={frac}", result.violations)
        metrics_b = (client.get_json("/v1/metrics").document or None)
        counters = (metrics_b or {}).get("counters", {})
        result.recovered = int(counters.get("serve.jobs.recovered", 0))
        result.replayed = int(counters.get("serve.jobs.replayed", 0))
        if result.replayed < 1:
            result.violations.append(
                "resume replayed no finished jobs (serve.jobs.replayed == 0)")
        if result.recovered < 1:
            result.violations.append(
                "resume recovered no pending jobs (serve.jobs.recovered == 0)")
        result.resume_drain_exit = resumed.drain()
        if result.resume_drain_exit != EXIT_OK:
            result.violations.append(
                f"resumed server drain exited "
                f"{result.resume_drain_exit}, want {EXIT_OK}")
        log(f"seed {seed}: resume verified (recovered {result.recovered}, "
            f"replayed {result.replayed})")
    finally:
        resumed.ensure_dead()
    _merge_fired(result.fired, _fault_counters(metrics_b))

    # Phase 4: the journal.torn leg, in-process on a scratch store.
    _torn_journal_check(seed, seed_dir / "torn-check", result)
    return result


def run_campaign(config: CampaignConfig | None = None,
                 on_progress: Callable[[str], None] | None = None,
                 ) -> CampaignReport:
    """Run the full campaign; returns the report (not yet written)."""
    config = config or CampaignConfig()
    if len(config.kill_fracs) < 2:
        raise ServeError("campaign needs two kill_fracs "
                         "(one running, one queued at SIGKILL time)")
    log = on_progress or (lambda message: None)
    out_dir = Path(config.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # The reference (and the torn-check) must run fault-free in-process.
    faultplane.uninstall()
    log(f"computing fault-free reference rows for {config.workload} "
        f"x {len(set(config.traffic_fracs + config.kill_fracs))} deadlines")
    reference = reference_rows(
        config.workload,
        tuple(dict.fromkeys(config.traffic_fracs + config.kill_fracs)))
    report = CampaignReport(config=config)
    for seed in range(config.seeds):
        log(f"seed {seed}: plan installed, spawning server")
        report.seeds.append(
            _run_seed(seed, config, out_dir, reference, log))
    return report


__all__ = [
    "CAMPAIGN_FORMAT",
    "CampaignConfig",
    "CampaignReport",
    "SeedResult",
    "reference_rows",
    "run_campaign",
    "write_report",
]
