"""Where does the energy go?  Per-structure breakdown of a profiled run.

Wattch's signature capability is attributing energy to structures.  Our
simulator keeps the hot loop lean, so the breakdown is reconstructed
*post hoc* — exactly, for everything except cache-level misses:

* per-op-class dynamic energy = (static per-block class histogram) ×
  (dynamic block counts) × (class energy at the mode's voltage);
* L1-D port energy = one access per executed load/store;
* L1-I fetch energy = the block's spanned instruction lines per entry
  (the same quantity the machine charges);
* the remainder against the profiled total is the L2/miss-path energy
  the reconstruction cannot split without per-block miss counts — it is
  reported as the ``l2+misses`` residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.ir.cfg import CFG
from repro.ir.instructions import Load, OpClass, Store
from repro.profiling.profile_data import ProfileData
from repro.simulator.config import MachineConfig
from repro.simulator.dvs import ModeTable
from repro.simulator.energy import EnergyModel


@dataclass
class EnergyBreakdown:
    """Energy attribution for one (profile, mode) pair, in nanojoules."""

    by_class: dict[str, float] = field(default_factory=dict)
    l1d_nj: float = 0.0
    l1i_nj: float = 0.0
    residual_nj: float = 0.0  # L2 accesses + anything not reconstructed
    total_nj: float = 0.0

    @property
    def explained_nj(self) -> float:
        return sum(self.by_class.values()) + self.l1d_nj + self.l1i_nj

    @property
    def residual_fraction(self) -> float:
        return self.residual_nj / self.total_nj if self.total_nj else 0.0

    def rows(self) -> list[tuple[str, float, float]]:
        """(category, nJ, fraction) rows sorted by energy, residual last."""
        entries = [(name, value) for name, value in self.by_class.items()]
        entries.append(("l1d-access", self.l1d_nj))
        entries.append(("l1i-fetch", self.l1i_nj))
        entries.sort(key=lambda item: -item[1])
        entries.append(("l2+misses", self.residual_nj))
        return [
            (name, value, value / self.total_nj if self.total_nj else 0.0)
            for name, value in entries
        ]


def block_class_histogram(cfg: CFG) -> dict[str, dict[OpClass, int]]:
    """Static instruction-class counts per block."""
    histogram: dict[str, dict[OpClass, int]] = {}
    for label, block in cfg.blocks.items():
        counts: dict[OpClass, int] = {}
        for instr in block.instructions:
            counts[instr.op_class] = counts.get(instr.op_class, 0) + 1
        histogram[label] = counts
    return histogram


def block_line_counts(cfg: CFG, config: MachineConfig) -> dict[str, int]:
    """Instruction lines each block spans (the machine's fetch accesses),
    reproduced with the machine's sequential address assignment."""
    line_bytes = config.l1i.line_bytes
    counts: dict[str, int] = {}
    address = 0
    for label, block in cfg.blocks.items():
        start = address
        address += 4 * len(block.instructions)
        first = start // line_bytes
        last = max(start, address - 4) // line_bytes
        counts[label] = last - first + 1
    return counts


def memory_op_counts(cfg: CFG) -> dict[str, int]:
    """Loads + stores per block (each accesses the L1-D port once)."""
    return {
        label: sum(1 for i in block.instructions if isinstance(i, (Load, Store)))
        for label, block in cfg.blocks.items()
    }


def energy_breakdown(
    cfg: CFG,
    profile: ProfileData,
    mode: int,
    mode_table: ModeTable,
    config: MachineConfig,
) -> EnergyBreakdown:
    """Reconstruct the per-structure energy of a fixed-mode profiled run."""
    if mode not in profile.per_mode:
        raise ProfileError(f"profile lacks mode {mode}")
    voltage = mode_table[mode].voltage
    model = EnergyModel(config)
    histogram = block_class_histogram(cfg)
    lines = block_line_counts(cfg, config)
    mem_ops = memory_op_counts(cfg)

    breakdown = EnergyBreakdown(total_nj=profile.cpu_energy_nj[mode])
    v_squared = voltage * voltage
    for label, count in profile.block_counts.items():
        if count == 0 or label not in histogram:
            continue
        for op_class, static_count in histogram[label].items():
            energy = count * static_count * model.op_energy_nj(op_class, voltage)
            key = op_class.name.lower()
            breakdown.by_class[key] = breakdown.by_class.get(key, 0.0) + energy
        breakdown.l1d_nj += count * mem_ops[label] * config.l1d.access_energy_nf * v_squared
        breakdown.l1i_nj += count * lines[label] * config.l1i.access_energy_nf * v_squared

    breakdown.residual_nj = max(0.0, breakdown.total_nj - breakdown.explained_nj)
    return breakdown
