"""How well does the analytical timing model track the simulator?

The Section 3 model predicts execution time as::

    T(f) = max(t_inv + N_cache/f, N_overlap/f) + N_dependent/f

Its fidelity against the simulator decides how much to trust the
analytical savings bounds (see the Table 1 deviation discussion in
EXPERIMENTS.md).  :func:`timing_model_fit` quantifies it: per mode, the
predicted-vs-measured wall time and the relative error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical.params import ProgramParams
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable


@dataclass(frozen=True)
class FitPoint:
    """Model-vs-simulator agreement at one mode."""

    mode: int
    frequency_hz: float
    predicted_s: float
    measured_s: float

    @property
    def relative_error(self) -> float:
        """(predicted − measured) / measured; positive = model pessimistic."""
        return (self.predicted_s - self.measured_s) / self.measured_s


@dataclass(frozen=True)
class TimingFit:
    """Full fit report for one (program, mode table) pair."""

    points: tuple[FitPoint, ...]

    @property
    def max_abs_error(self) -> float:
        return max(abs(p.relative_error) for p in self.points)

    @property
    def mean_abs_error(self) -> float:
        return sum(abs(p.relative_error) for p in self.points) / len(self.points)

    def render(self, name: str = "") -> str:
        lines = [f"timing-model fit {name}".rstrip()]
        for p in self.points:
            lines.append(
                f"  mode {p.mode} ({p.frequency_hz / 1e6:5.0f} MHz): "
                f"model {p.predicted_s * 1e3:8.3f} ms vs sim "
                f"{p.measured_s * 1e3:8.3f} ms ({p.relative_error:+.1%})"
            )
        lines.append(f"  mean |error| {self.mean_abs_error:.1%}, "
                     f"max |error| {self.max_abs_error:.1%}")
        return "\n".join(lines)


def timing_model_fit(
    params: ProgramParams,
    profile: ProfileData,
    mode_table: ModeTable,
) -> TimingFit:
    """Compare the analytical execution-time model against profiled wall
    times at every profiled mode."""
    points = []
    for mode in sorted(profile.wall_time_s):
        frequency = mode_table[mode].frequency_hz
        points.append(
            FitPoint(
                mode=mode,
                frequency_hz=frequency,
                predicted_s=params.execution_time_s(frequency),
                measured_s=profile.wall_time_s[mode],
            )
        )
    return TimingFit(points=tuple(points))
