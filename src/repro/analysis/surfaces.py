"""Savings-ratio surfaces over program-parameter grids (Figures 5–11).

Each figure in the paper's Section 3 fixes all but two of
``(N_overlap, N_dependent, N_cache, t_invariant, t_deadline)`` and plots
the energy-savings ratio over the other two.  :func:`sweep_continuous`
and :func:`sweep_discrete` generate exactly those grids.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError
from repro.core.analytical.alpha_power import DEFAULT_LAW, AlphaPowerLaw
from repro.core.analytical.params import ProgramParams
from repro.core.analytical.savings import (
    savings_ratio_continuous,
    savings_ratio_discrete,
)
from repro.simulator.dvs import ModeTable

#: Axis names accepted by the sweeps.  ``t_deadline`` is special-cased —
#: it is an argument of the savings functions, not a ProgramParams field.
AXES = ("n_overlap", "n_dependent", "n_cache", "t_invariant_s", "t_deadline")


@dataclass
class Surface:
    """A 2-D grid of savings ratios.

    Attributes:
        x_axis, y_axis: swept parameter names.
        x_values, y_values: grid coordinates.
        z: savings ratio, shape (len(y_values), len(x_values));
           ``nan`` marks infeasible points.
    """

    x_axis: str
    y_axis: str
    x_values: np.ndarray
    y_values: np.ndarray
    z: np.ndarray

    @property
    def max_savings(self) -> float:
        return float(np.nanmax(self.z)) if np.isfinite(self.z).any() else math.nan

    @property
    def feasible_fraction(self) -> float:
        return float(np.isfinite(self.z).mean())

    def argmax(self) -> tuple[float, float]:
        """(x, y) coordinates of the peak savings."""
        masked = np.where(np.isfinite(self.z), self.z, -np.inf)
        iy, ix = np.unravel_index(int(np.argmax(masked)), self.z.shape)
        return float(self.x_values[ix]), float(self.y_values[iy])

    def column(self, ix: int) -> np.ndarray:
        return self.z[:, ix]

    def row(self, iy: int) -> np.ndarray:
        return self.z[iy, :]


def _apply(base: ProgramParams, deadline_s: float, axis: str, value: float):
    """Return (params, deadline) with one axis overridden."""
    if axis == "t_deadline":
        return base, float(value)
    if axis not in AXES:
        raise AnalysisError(f"unknown sweep axis {axis!r}; use one of {AXES}")
    return dataclasses.replace(base, **{axis: float(value)}), deadline_s


def sweep_continuous(
    base: ProgramParams,
    deadline_s: float,
    x_axis: str,
    x_values,
    y_axis: str,
    y_values,
    law: AlphaPowerLaw = DEFAULT_LAW,
    v_low: float = 0.70,
    v_high: float = 1.65,
) -> Surface:
    """Continuous-model savings over a 2-D parameter grid (Figures 5–7)."""
    x_values = np.asarray(list(x_values), dtype=float)
    y_values = np.asarray(list(y_values), dtype=float)
    z = np.full((len(y_values), len(x_values)), math.nan)
    for iy, y in enumerate(y_values):
        for ix, x in enumerate(x_values):
            params, dl = _apply(base, deadline_s, x_axis, x)
            params, dl = _apply(params, dl, y_axis, y)
            z[iy, ix] = savings_ratio_continuous(params, dl, law, v_low, v_high)
    return Surface(x_axis, y_axis, x_values, y_values, z)


def sweep_discrete(
    base: ProgramParams,
    deadline_s: float,
    x_axis: str,
    x_values,
    y_axis: str,
    y_values,
    table: ModeTable,
    y_samples: int = 120,
) -> Surface:
    """Discrete-model savings over a 2-D parameter grid (Figures 9–11)."""
    x_values = np.asarray(list(x_values), dtype=float)
    y_values = np.asarray(list(y_values), dtype=float)
    z = np.full((len(y_values), len(x_values)), math.nan)
    for iy, y in enumerate(y_values):
        for ix, x in enumerate(x_values):
            params, dl = _apply(base, deadline_s, x_axis, x)
            params, dl = _apply(params, dl, y_axis, y)
            z[iy, ix] = savings_ratio_discrete(params, dl, table, y_samples=y_samples)
    return Surface(x_axis, y_axis, x_values, y_values, z)
