"""Plain-text tables and series for the benchmark harness.

The benchmarks regenerate the paper's tables/figures as text; these
helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A simple aligned-text table builder.

    Usage::

        t = Table("Table 4", ["Benchmark", "t200", "t600", "t800"])
        t.add_row(["adpcm", 29.5, 9.9, 7.4])
        print(t.render())
    """

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    float_format: str = "{:.3g}"

    def add_row(self, values: Sequence) -> None:
        self.rows.append([self._fmt(v) for v in values])

    def _fmt(self, value) -> str:
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(
    title: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 24,
) -> str:
    """One figure series as aligned (x, y) text, downsampled for display."""
    n = len(xs)
    step = max(1, n // max_points)
    table = Table(title, [x_label, y_label])
    for i in range(0, n, step):
        table.add_row([float(xs[i]), float(ys[i])])
    return table.render()
