"""Analysis helpers: parameter sweeps for figures, table formatting.

* :mod:`repro.analysis.surfaces` — 1-D/2-D sweeps of the analytical
  savings ratio (the data behind Figures 5–11);
* :mod:`repro.analysis.report` — aligned-text tables and series used by
  the benchmark harness to print the paper's tables and figure series.
"""

from repro.analysis.energy_breakdown import EnergyBreakdown, energy_breakdown
from repro.analysis.model_fit import TimingFit, timing_model_fit
from repro.analysis.report import Table, format_series
from repro.analysis.surfaces import Surface, sweep_continuous, sweep_discrete

__all__ = [
    "EnergyBreakdown",
    "Surface",
    "Table",
    "TimingFit",
    "energy_breakdown",
    "format_series",
    "sweep_continuous",
    "sweep_discrete",
    "timing_model_fit",
]
