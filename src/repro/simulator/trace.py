"""Execution-timeline analysis over block-entry traces.

``Machine.run(..., trace=events)`` records a ``(wall_time_s, label,
mode)`` tuple at every block entry.  This module turns that stream into
the views a DVS engineer wants:

* :func:`mode_residency` — wall-clock time spent in each mode;
* :func:`phases` — maximal same-mode spans (where the schedule actually
  switched, and for how long each regime ran);
* :func:`render_timeline` — a textual mode-over-time strip for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

TraceEvent = tuple[float, str, int]


@dataclass(frozen=True)
class Phase:
    """One maximal constant-mode span of the execution."""

    mode: int
    start_s: float
    end_s: float
    blocks: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def phases(events: list[TraceEvent], end_time_s: float) -> list[Phase]:
    """Collapse a block-entry trace into constant-mode phases.

    Args:
        events: the trace list filled by ``Machine.run``.
        end_time_s: the run's final wall time (closes the last phase).
    """
    if not events:
        return []
    result: list[Phase] = []
    span_start, _, span_mode = events[0]
    count = 0
    for time_s, _label, mode in events:
        if mode != span_mode:
            result.append(Phase(span_mode, span_start, time_s, count))
            span_start, span_mode, count = time_s, mode, 0
        count += 1
    result.append(Phase(span_mode, span_start, end_time_s, count))
    return result


def mode_residency(events: list[TraceEvent], end_time_s: float) -> dict[int, float]:
    """Wall-clock seconds spent in each mode."""
    residency: dict[int, float] = {}
    for phase in phases(events, end_time_s):
        residency[phase.mode] = residency.get(phase.mode, 0.0) + phase.duration_s
    return residency


def hottest_blocks(events: list[TraceEvent], top: int = 5) -> list[tuple[str, int]]:
    """Most frequently entered blocks (entry counts, descending)."""
    counts: dict[str, int] = {}
    for _t, label, _m in events:
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.items(), key=lambda item: -item[1])[:top]


def render_timeline(
    events: list[TraceEvent],
    end_time_s: float,
    width: int = 60,
    mode_chars: str = "_-=#%@",
) -> str:
    """A fixed-width strip where each column shows the dominant mode.

    Modes render as characters from ``mode_chars`` (slowest first), e.g.
    ``___---===`` for a run that stepped 0 -> 1 -> 2.
    """
    if not events or end_time_s <= 0:
        return ""
    spans = phases(events, end_time_s)
    columns = []
    for i in range(width):
        t0 = end_time_s * i / width
        t1 = end_time_s * (i + 1) / width
        best_mode, best_overlap = spans[0].mode, 0.0
        for span in spans:
            overlap = min(span.end_s, t1) - max(span.start_s, t0)
            if overlap > best_overlap:
                best_overlap = overlap
                best_mode = span.mode
        columns.append(mode_chars[min(best_mode, len(mode_chars) - 1)])
    return "".join(columns)
