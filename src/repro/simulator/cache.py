"""Set-associative LRU caches and a two-level hierarchy.

The timing contract mirrors the paper's memory model: L1 and L2 hits cost
CPU *cycles* (they scale with frequency), while a miss to main memory costs
wall-clock *seconds* (asynchronous memory).  The hierarchy therefore
reports, per access, the synchronous cycle cost and whether main memory
must be touched; the machine turns the latter into an asynchronous miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.config import CacheConfig


class Cache:
    """One set-associative, write-allocate cache level with true-LRU sets.

    Sets are ordered dicts from tag to None; Python dicts preserve insertion
    order, so "move to end on hit, evict first on replace" implements LRU in
    O(1) amortized per access.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        if self.num_sets <= 0:
            raise ValueError(f"{name}: size/assoc/line give {self.num_sets} sets")
        self.sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        """Access one address; returns True on hit.  Allocates on miss."""
        line = address // self.config.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self.sets[index]
        if tag in cache_set:
            # refresh LRU position
            del cache_set[tag]
            cache_set[tag] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.config.assoc:
            cache_set.pop(next(iter(cache_set)))
        cache_set[tag] = None
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating presence check (testing aid)."""
        line = address // self.config.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        return tag in self.sets[index]

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        return f"Cache({self.name}, {self.hits} hits / {self.misses} misses)"


@dataclass
class AccessResult:
    """Outcome of one hierarchy access.

    Attributes:
        level: "l1", "l2" or "mem".
        sync_cycles: CPU cycles spent synchronously (hit latencies).
        memory_miss: True when main memory must service the access
            (asynchronous wall-clock latency, charged by the machine).
    """

    level: str
    sync_cycles: int
    memory_miss: bool


class CacheHierarchy:
    """L1 (data or instruction) backed by a unified L2.

    Timing:

    * L1 hit: ``l1.hit_latency`` cycles.
    * L2 hit: ``l1.hit_latency + l2.hit_latency`` cycles.
    * Miss:   same synchronous cycles as an L2 hit (the lookups still
      happen) plus an asynchronous main-memory access.
    """

    def __init__(self, l1_config: CacheConfig, l2: Cache, name: str = "hier") -> None:
        self.l1 = Cache(l1_config, name=f"{name}.l1")
        self.l2 = l2
        self.name = name

    def access(self, address: int) -> AccessResult:
        if self.l1.lookup(address):
            return AccessResult("l1", self.l1.config.hit_latency_cycles, False)
        sync = self.l1.config.hit_latency_cycles + self.l2.config.hit_latency_cycles
        if self.l2.lookup(address):
            return AccessResult("l2", sync, False)
        return AccessResult("mem", sync, True)

    def stats(self) -> dict[str, int]:
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
        }
