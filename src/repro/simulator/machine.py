"""Instruction-level timing and energy simulation of IR programs.

The :class:`Machine` executes a CFG under a DVS mode table, producing wall
time, CPU energy, per-block time/energy, edge counts and local-path counts
— everything the profiler and the analytical-parameter extraction need.

Timing model
============

* The CPU issues one instruction at a time, in order; each instruction
  occupies its :class:`~repro.ir.instructions.OpClass` latency in CPU
  cycles (cycles scale with the current frequency).
* Cache hits are synchronous: L1/L2 hit latencies are CPU cycles.
* Main-memory misses are asynchronous (the paper's assumption 2): the miss
  is serviced in wall-clock ``memory_latency_s`` regardless of CPU
  frequency.  The destination register becomes *pending* and execution
  continues — this is the overlap the paper's model exploits.  One miss may
  be outstanding at a time (single memory port); a second miss, or an
  instruction reading a pending register, stalls with the clock gated
  (assumption 3: gated stalls consume no energy).
* Executing a mode-set on an edge whose mode differs from the current one
  stalls for ``ST`` seconds and charges ``SE`` Joules (Section 4.2); a
  mode-set whose value equals the current mode is silent and free.

Statistics for the analytical model
===================================

The run classifies every cycle the way Section 3.2 does: compute cycles
issued while a miss is outstanding accumulate ``overlap_cycles``
(N_overlap); other compute cycles accumulate ``dependent_cycles``
(N_dependent); memory-operation cycles that hit in cache accumulate
``cache_cycles`` (N_cache); and ``t_invariant_s`` is the total wall-clock
main-memory service time (misses × latency, port-serialized).

Accounting structure (the fast-path contract)
=============================================

Wall time and energy are accumulated *per block execution* into local
deltas and committed once per block: ``now += Δt`` plus compensated
(Neumaier) additions of ``Δt``/``Δe`` into the per-block and run-level
accumulators.  Both the reference interpreter and the :mod:`repro.perf`
fast path therefore perform the *identical* sequence of run-level float
operations — which is what makes block-delta memoization bit-exact: a
memoized delta is the same float the interpreter would have produced, and
it is applied through the same commit.  The fast path engages only when
the pending set is empty, no miss is outstanding, and every I-line and
touched D-line of the block is L1-resident; anything else falls back to
the reference interpretation below (``fastpath=False`` or
``$REPRO_NO_FASTPATH=1`` disables the fast path entirely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe
from repro.errors import ScheduleError, SimulationError
from repro.ir.cfg import CFG, ENTRY_EDGE_SOURCE, Edge
from repro.ir.instructions import (
    BinOp,
    Branch,
    Const,
    Jump,
    Load,
    Move,
    OpClass,
    Ret,
    Store,
    UnOp,
)
from repro.ir.interp import DataMemory, _FP_BINOPS, _INT_BINOPS, _UNOPS
from repro.simulator.cache import Cache, CacheHierarchy
from repro.simulator.config import MachineConfig, SCALE_CONFIG
from repro.simulator.dvs import ModeTable, TransitionCostModel, XSCALE_3, ZERO_TRANSITION
from repro.simulator.energy import EnergyModel

# Decoded opcode kinds (tuple dispatch for speed).
_CONST, _MOVE, _BINOP, _UNOP, _LOAD, _STORE, _BRANCH, _JUMP, _RET = range(9)

_MEM_CLASS = OpClass.MEM
_COMPUTE_CLASSES = tuple(c for c in OpClass if c is not OpClass.MEM)


@dataclass
class BlockStats:
    """Per-basic-block accumulation over one run."""

    count: int = 0
    time_s: float = 0.0
    cpu_energy_nj: float = 0.0


@dataclass
class RunResult:
    """Everything observable from one simulated execution."""

    return_value: float | None
    wall_time_s: float
    cpu_energy_nj: float
    memory_energy_nj: float
    instructions: int
    block_stats: dict[str, BlockStats]
    edge_counts: dict[Edge, int]
    path_counts: dict[tuple[str, str, str], int]
    cache_stats: dict[str, int]
    # analytical-model parameter ingredients (Section 3.2)
    overlap_cycles: int
    dependent_cycles: int
    cache_cycles: int
    dmiss_sync_cycles: int
    ifetch_cycles: int
    mem_misses: int
    t_invariant_s: float
    gated_wait_s: float
    # DVS accounting
    mode_transitions: int = 0
    modeset_executions: int = 0
    transition_energy_nj: float = 0.0
    transition_time_s: float = 0.0
    final_mode: int = 0
    memory: DataMemory | None = None

    @property
    def total_energy_nj(self) -> float:
        return self.cpu_energy_nj + self.memory_energy_nj


class Machine:
    """A DVS-capable processor model executing IR programs.

    Args:
        config: machine description (caches, memory latency, energies).
        mode_table: the available (V, f) operating points.
        transition_model: regulator model for mode-switch costs.
        fastpath: enable the :mod:`repro.perf` hot-path acceleration
            (block-delta memoization and steady-state loop
            fast-forwarding).  The fast path is bit-exact — it produces
            the same :class:`RunResult` as the reference interpreter —
            so this switch exists only for differential testing and as
            an escape hatch (also ``$REPRO_NO_FASTPATH=1``).
    """

    def __init__(
        self,
        config: MachineConfig = SCALE_CONFIG,
        mode_table: ModeTable = XSCALE_3,
        transition_model: TransitionCostModel = ZERO_TRANSITION,
        fastpath: bool = True,
    ) -> None:
        self.config = config
        self.mode_table = mode_table
        self.transition_model = transition_model
        self.fastpath = fastpath
        #: Diagnostic snapshot of the last run's fast-path activity
        #: (block/loop hit counts).  Not part of any RunResult.
        self.last_fastpath_stats: dict[str, int] = {}

    # -- decoding ---------------------------------------------------------------

    def _decode(self, cfg: CFG):
        """Pre-decode blocks into dispatch tuples and I-fetch line lists."""
        decoded: dict[str, list] = {}
        block_lines: dict[str, list[int]] = {}
        line_bytes = self.config.l1i.line_bytes
        # Code lives in its own region far above any data address, so
        # instruction lines never alias data lines in the shared L2.
        next_addr = 1 << 30
        for label, block in cfg.blocks.items():
            instrs = []
            start_addr = next_addr
            for instr in block.instructions:
                cls = instr.op_class
                if isinstance(instr, Const):
                    instrs.append((_CONST, instr.dst, instr.value, cls))
                elif isinstance(instr, Move):
                    instrs.append((_MOVE, instr.dst, instr.src, cls))
                elif isinstance(instr, BinOp):
                    fn = _INT_BINOPS.get(instr.op) or _FP_BINOPS[instr.op]
                    instrs.append((_BINOP, fn, instr.dst, instr.lhs, instr.rhs, cls))
                elif isinstance(instr, UnOp):
                    instrs.append((_UNOP, _UNOPS[instr.op], instr.dst, instr.src, cls))
                elif isinstance(instr, Load):
                    instrs.append((_LOAD, instr.dst, instr.base, instr.offset, cls))
                elif isinstance(instr, Store):
                    instrs.append((_STORE, instr.src, instr.base, instr.offset, cls))
                elif isinstance(instr, Branch):
                    instrs.append((_BRANCH, instr.cond, instr.if_true, instr.if_false, cls))
                elif isinstance(instr, Jump):
                    instrs.append((_JUMP, instr.target, None, cls))
                elif isinstance(instr, Ret):
                    instrs.append((_RET, instr.value, None, cls))
                else:
                    raise SimulationError(f"cannot decode {instr!r}")
                next_addr += 4
            decoded[label] = instrs
            first_line = start_addr // line_bytes
            last_line = max(start_addr, next_addr - 4) // line_bytes
            block_lines[label] = [l * line_bytes for l in range(first_line, last_line + 1)]
        return decoded, block_lines

    # -- execution --------------------------------------------------------------

    def run(
        self,
        cfg: CFG,
        inputs: dict[str, list] | None = None,
        registers: dict[str, float] | None = None,
        mode: int | None = None,
        schedule: dict[Edge, int] | None = None,
        initial_mode: int | None = None,
        max_steps: int = 200_000_000,
        trace: list | None = None,
        fastpath: bool | None = None,
    ) -> RunResult:
        """Execute a program.

        Args:
            cfg: the program to run (validated IR).
            inputs: array name -> initial contents.
            registers: initial register values (program parameters).
            mode: run entirely at this mode index (profiling runs).
            schedule: edge -> mode index map (DVS-scheduled runs).  The
                synthetic entry edge may set the starting mode.
            initial_mode: starting mode when ``schedule`` is given (default:
                fastest).  Mutually exclusive with ``mode``.
            max_steps: safety cap on executed instructions.
            trace: optional list that receives a ``(wall_time_s, label,
                mode)`` tuple at every block entry — the timeline data
                :mod:`repro.simulator.trace` analyzes.  Tracing costs one
                append per block execution; leave None for full speed.
            fastpath: per-run override of the machine's ``fastpath``
                setting (None keeps it).  On or off, the RunResult is
                bit-identical.

        Returns:
            a :class:`RunResult`.
        """
        if not observe.enabled():
            return self._run(cfg, inputs, registers, mode, schedule,
                             initial_mode, max_steps, trace, fastpath)
        with observe.span("simulator.run", program=cfg.name,
                          scheduled=schedule is not None) as sp:
            result = self._run(cfg, inputs, registers, mode, schedule,
                               initial_mode, max_steps, trace, fastpath)
            total_cycles = (result.overlap_cycles + result.dependent_cycles
                            + result.cache_cycles + result.dmiss_sync_cycles
                            + result.ifetch_cycles)
            sp.set(instructions=result.instructions, cycles=total_cycles)
        observe.add("simulator.runs")
        observe.add("simulator.instructions", result.instructions)
        observe.add("simulator.cycles", total_cycles)
        observe.add("simulator.mem_misses", result.mem_misses)
        observe.add("simulator.mode_transitions", result.mode_transitions)
        for key, value in result.cache_stats.items():
            observe.add(f"simulator.cache.{key}", value)
        perf_stats = self.last_fastpath_stats
        if perf_stats.get("enabled"):
            observe.add("perf.blocks.fast", perf_stats["fast_blocks"])
            observe.add("perf.blocks.slow", perf_stats["slow_blocks"])
            observe.add("perf.blocks.bailed", perf_stats["bails"])
            observe.add("perf.loop.entries", perf_stats["loop_entries"])
            observe.add("perf.loop.fast_iterations", perf_stats["loop_iterations"])
        observe.record("simulator.run_wall_s", sp.elapsed_s)
        if sp.elapsed_s > 0:
            observe.gauge("simulator.cycles_per_sec", total_cycles / sp.elapsed_s)
        return result

    def _run(
        self,
        cfg: CFG,
        inputs: dict[str, list] | None,
        registers: dict[str, float] | None,
        mode: int | None,
        schedule: dict[Edge, int] | None,
        initial_mode: int | None,
        max_steps: int,
        trace: list | None,
        fastpath: bool | None = None,
    ) -> RunResult:
        # The uninstrumented interpreter loop; run() wraps it with the
        # span/counter layer so the hot loop itself stays untouched.
        if mode is not None and schedule is not None:
            raise ScheduleError("pass either a fixed mode or a schedule, not both")
        if schedule is not None:
            for edge, m in schedule.items():
                if not 0 <= m < len(self.mode_table):
                    raise ScheduleError(f"schedule maps {edge} to invalid mode {m}")
        current_mode = (
            mode
            if mode is not None
            else (initial_mode if initial_mode is not None else len(self.mode_table) - 1)
        )
        if not 0 <= current_mode < len(self.mode_table):
            raise ScheduleError(f"invalid mode index {current_mode}")
        schedule = schedule or {}
        # Apply the entry-edge mode before anything executes (no transition
        # cost: this is the a-priori setting, as in the paper).
        entry_edge = (ENTRY_EDGE_SOURCE, cfg.entry)
        if entry_edge in schedule:
            current_mode = schedule[entry_edge]

        decoded, block_lines = self._decode(cfg)
        memory = DataMemory(cfg.data_size() + cfg.element_size, cfg.element_size)
        for name, values in (inputs or {}).items():
            base, length = cfg.arrays[name]
            if len(values) > length:
                raise SimulationError(
                    f"input for {name!r} has {len(values)} elements, array holds {length}"
                )
            memory.write_array(base, values)

        l2 = Cache(self.config.l2, name="l2")
        dcache = CacheHierarchy(self.config.l1d, l2, name="d")
        icache = CacheHierarchy(self.config.l1i, l2, name="i")
        energy = EnergyModel(self.config)

        # Per-mode precomputed constants.
        mode_points = self.mode_table.points
        op_energy_tables = [
            {cls: energy.op_energy_nj(cls, p.voltage) for cls in OpClass} for p in mode_points
        ]
        cycle_times = [p.cycle_time_s for p in mode_points]
        voltages = [p.voltage for p in mode_points]

        regs: dict[str, float] = dict(registers or {})
        pending: dict[str, float] = {}  # register -> wall time when ready

        now = 0.0
        miss_done = 0.0
        mem_latency = self.config.memory_latency_s
        gated_wait = 0.0
        overlap_cycles = 0
        dependent_cycles = 0
        cache_cycles = 0
        dmiss_sync_cycles = 0
        ifetch_cycles = 0
        mem_misses = 0
        instructions = 0
        mode_transitions = 0
        modeset_executions = 0
        transition_energy_nj = 0.0
        transition_time_s = 0.0
        # Run-level DRAM energy: compensated (Neumaier) accumulator state.
        mem_s = 0.0
        mem_c = 0.0

        # Per-label accounting: [count, time_s, time_comp, e_nj, e_comp].
        # Time/energy use compensated summation (see module docstring);
        # BlockStats are materialized from these at the end of the run.
        acct: dict[str, list] = {label: [0, 0.0, 0.0, 0.0, 0.0] for label in cfg.blocks}
        edge_counts: dict[Edge, int] = {}
        path_counts: dict[tuple[str, str, str], int] = {}

        cycle_time = cycle_times[current_mode]
        voltage = voltages[current_mode]
        op_energy = op_energy_tables[current_mode]
        base_c = self.config.base_c_eff_nf
        l1d_c = self.config.l1d.access_energy_nf
        l1i_c = self.config.l1i.access_energy_nf
        l2_c = self.config.l2.access_energy_nf
        mem_energy_nj = self.config.memory_access_energy_nj

        label = cfg.entry
        prev_block = ENTRY_EDGE_SOURCE
        edge_counts[entry_edge] = 1
        return_value: float | None = None
        finished = False

        mem_read = memory.read
        mem_write = memory.write
        daccess = dcache.access
        iaccess = icache.access

        # ---- fast-path setup (repro.perf) -----------------------------------
        use_fast = self.fastpath if fastpath is None else bool(fastpath)
        pf = None
        fast_fns = None
        fast_consts = None
        loop_ok: frozenset = frozenset()
        fast_blocks = 0
        slow_blocks = 0
        bails = 0
        loop_entries = 0
        loop_iterations = 0
        if use_fast:
            from repro.perf.engine import fastpath_disabled_env, program_fast

            if fastpath_disabled_env():
                use_fast = False
            else:
                pf = program_fast(self, cfg)
                fast_fns = pf.block_fns
                fast_consts = pf.consts(current_mode)
                if trace is None:
                    loop_ok = pf.loop_headers_disjoint(schedule)
                _st = [0.0] * 10
        dl1 = dcache.l1
        il1 = icache.l1
        dsets = dl1.sets
        isets = il1.sets
        cells = memory.cells

        while not finished:
            if trace is not None:
                trace.append((now, label, current_mode))
            next_label: str | None = None
            fast_committed = False

            if fast_fns is not None and not pending and now >= miss_done:
                # -- steady-state loop fast-forward: stay in compiled code
                # across back-edges, committing identical per-block deltas.
                if label in loop_ok:
                    lf = pf.loop_fn(label, current_mode)
                    if lf is not None:
                        _st[0] = now
                        _st[1] = instructions
                        _st[2] = dependent_cycles
                        _st[3] = cache_cycles
                        _st[4] = ifetch_cycles
                        _st[5] = dl1.hits
                        _st[6] = il1.hits
                        _st[7] = max_steps
                        _st[8] = 0
                        _st[9] = 0
                        loop_entries += 1
                        try:
                            res = lf(regs, cells, dsets, isets, acct,
                                     edge_counts, path_counts, _st, prev_block)
                        except Exception:
                            res = None
                        if res is not None:
                            now = _st[0]
                            instructions = _st[1]
                            dependent_cycles = _st[2]
                            cache_cycles = _st[3]
                            ifetch_cycles = _st[4]
                            dl1.hits = _st[5]
                            il1.hits = _st[6]
                            loop_iterations += _st[8]
                            fast_blocks += _st[9]
                            if instructions > max_steps:
                                raise SimulationError(f"exceeded max_steps={max_steps}")
                            cur, prev2, nxt = res
                            if nxt is None:
                                # Bailed mid-loop after >= 1 committed block:
                                # resume the interpreter exactly there.
                                label = cur
                                prev_block = prev2
                                continue
                            # Clean exit: run the shared edge tail below for
                            # the (cur -> nxt) transition the loop left on.
                            label = cur
                            prev_block = prev2
                            next_label = nxt
                            fast_committed = True

                if not fast_committed:
                    # -- block-delta memoization: re-execute only the data
                    # arithmetic; replay timing/energy/stat deltas.
                    fn = fast_fns.get(label)
                    if fn is not None:
                        try:
                            nxt = fn(regs, cells, dsets, isets)
                        except Exception:
                            nxt = None
                        if nxt is None:
                            bails += 1
                        else:
                            dt, de, n_i, n_dep, n_cc, n_ic, n_d, n_l = fast_consts[label]
                            a = acct[label]
                            a[0] += 1
                            s = a[1]
                            t = s + dt
                            a[2] += (s - t) + dt if s >= dt else (dt - t) + s
                            a[1] = t
                            s = a[3]
                            t = s + de
                            a[4] += (s - t) + de if s >= de else (de - t) + s
                            a[3] = t
                            now = now + dt
                            instructions += n_i
                            if instructions > max_steps:
                                raise SimulationError(f"exceeded max_steps={max_steps}")
                            dependent_cycles += n_dep
                            cache_cycles += n_cc
                            ifetch_cycles += n_ic
                            dl1.hits += n_d
                            il1.hits += n_l
                            fast_blocks += 1
                            next_label = nxt
                            fast_committed = True

            if not fast_committed:
                # -- reference interpretation of one block execution -------
                slow_blocks += 1
                bt = 0.0       # block-local wall-time offset from `now`
                e_local = 0.0  # block-local CPU energy
                m_local = 0.0  # block-local DRAM energy
                rel_md = miss_done - now

                # Instruction fetch: one I-cache access per line the block
                # spans.
                for line_addr in block_lines[label]:
                    res = iaccess(line_addr)
                    sync = res.sync_cycles
                    ifetch_cycles += sync
                    bt += sync * cycle_time
                    e_local += (l1i_c + base_c * sync) * voltage * voltage
                    if res.level == "l2":
                        e_local += l2_c * voltage * voltage
                    if res.memory_miss:
                        # Instruction miss: synchronous wall-clock fill.
                        if bt < rel_md:
                            gated_wait += rel_md - bt
                            bt = rel_md
                        mem_misses += 1
                        m_local += mem_energy_nj
                        miss_done = (now + bt) + mem_latency
                        gated_wait += mem_latency
                        bt = miss_done - now
                        rel_md = bt

                for op in decoded[label]:
                    instructions += 1
                    kind = op[0]
                    cls = op[-1]

                    if kind == _BINOP:
                        _, fn, dst, lhs, rhs, _ = op
                        if pending:
                            ready = pending.pop(lhs, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                            ready = pending.pop(rhs, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        lat = cls.latency
                        if bt < rel_md:
                            overlap_cycles += lat
                        else:
                            dependent_cycles += lat
                        bt += lat * cycle_time
                        e_local += op_energy[cls]
                        regs[dst] = fn(regs[lhs], regs[rhs])
                        pending.pop(dst, None)
                    elif kind == _CONST:
                        _, dst, value, _ = op
                        if bt < rel_md:
                            overlap_cycles += 1
                        else:
                            dependent_cycles += 1
                        bt += cycle_time
                        e_local += op_energy[cls]
                        regs[dst] = value
                        if pending:
                            pending.pop(dst, None)
                    elif kind == _LOAD:
                        _, dst, basereg, offset, _ = op
                        if pending:
                            ready = pending.pop(basereg, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        bt += cycle_time  # address generation (MEM latency 1)
                        e_local += op_energy[cls]
                        address = int(regs[basereg]) + offset
                        res = daccess(address)
                        bt += res.sync_cycles * cycle_time
                        e_local += (l1d_c + base_c * res.sync_cycles) * voltage * voltage
                        if res.level != "l1":
                            e_local += l2_c * voltage * voltage
                        if res.memory_miss:
                            if bt < rel_md:  # single memory port
                                gated_wait += rel_md - bt
                                bt = rel_md
                            mem_misses += 1
                            m_local += mem_energy_nj
                            miss_done = (now + bt) + mem_latency
                            rel_md = miss_done - now
                            pending[dst] = miss_done
                            dmiss_sync_cycles += 1 + res.sync_cycles
                        else:
                            cache_cycles += 1 + res.sync_cycles
                            pending.pop(dst, None)
                        regs[dst] = mem_read(address)
                    elif kind == _STORE:
                        _, src, basereg, offset, _ = op
                        if pending:
                            ready = pending.pop(src, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                            ready = pending.pop(basereg, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        bt += cycle_time
                        e_local += op_energy[cls]
                        address = int(regs[basereg]) + offset
                        res = daccess(address)
                        bt += res.sync_cycles * cycle_time
                        e_local += (l1d_c + base_c * res.sync_cycles) * voltage * voltage
                        if res.level != "l1":
                            e_local += l2_c * voltage * voltage
                        if res.memory_miss:
                            if bt < rel_md:
                                gated_wait += rel_md - bt
                                bt = rel_md
                            mem_misses += 1
                            m_local += mem_energy_nj
                            miss_done = (now + bt) + mem_latency
                            rel_md = miss_done - now
                            # store completes via the store buffer: nothing pending
                            dmiss_sync_cycles += 1 + res.sync_cycles
                        else:
                            cache_cycles += 1 + res.sync_cycles
                        mem_write(address, regs[src])
                    elif kind == _MOVE:
                        _, dst, src, _ = op
                        if pending:
                            ready = pending.pop(src, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        if bt < rel_md:
                            overlap_cycles += 1
                        else:
                            dependent_cycles += 1
                        bt += cycle_time
                        e_local += op_energy[cls]
                        regs[dst] = regs[src]
                        if pending:
                            pending.pop(dst, None)
                    elif kind == _UNOP:
                        _, fn, dst, src, _ = op
                        if pending:
                            ready = pending.pop(src, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        lat = cls.latency
                        if bt < rel_md:
                            overlap_cycles += lat
                        else:
                            dependent_cycles += lat
                        bt += lat * cycle_time
                        e_local += op_energy[cls]
                        regs[dst] = fn(regs[src])
                        if pending:
                            pending.pop(dst, None)
                    elif kind == _BRANCH:
                        _, cond, if_true, if_false, _ = op
                        if pending:
                            ready = pending.pop(cond, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        if bt < rel_md:
                            overlap_cycles += 1
                        else:
                            dependent_cycles += 1
                        bt += cycle_time
                        e_local += op_energy[cls]
                        next_label = if_true if regs[cond] else if_false
                    elif kind == _JUMP:
                        if bt < rel_md:
                            overlap_cycles += 1
                        else:
                            dependent_cycles += 1
                        bt += cycle_time
                        e_local += op_energy[cls]
                        next_label = op[1]
                    else:  # _RET
                        _, value, _, _ = op
                        if value is not None and pending:
                            ready = pending.pop(value, None)
                            if ready is not None:
                                rr = ready - now
                                if rr > bt:
                                    gated_wait += rr - bt
                                    bt = rr
                        bt += cycle_time
                        e_local += op_energy[cls]
                        return_value = regs[value] if value is not None else None
                        finished = True

                    if instructions > max_steps:
                        raise SimulationError(f"exceeded max_steps={max_steps}")

                if finished and bt < rel_md:
                    # Drain the outstanding miss before the program "completes".
                    gated_wait += rel_md - bt
                    bt = rel_md

                # -- per-block commit: one wall-time addition plus
                # compensated time/energy additions (the same operations a
                # fast-path replay performs with its memoized deltas).
                now = now + bt
                a = acct[label]
                a[0] += 1
                s = a[1]
                t = s + bt
                a[2] += (s - t) + bt if s >= bt else (bt - t) + s
                a[1] = t
                s = a[3]
                t = s + e_local
                a[4] += (s - t) + e_local if s >= e_local else (e_local - t) + s
                a[3] = t
                if m_local:
                    s = mem_s
                    t = s + m_local
                    mem_c += (s - t) + m_local if s >= m_local else (m_local - t) + s
                    mem_s = t

                if finished:
                    break

                if next_label is None:
                    raise SimulationError(f"block {label!r} fell through")

            edge = (label, next_label)
            edge_counts[edge] = edge_counts.get(edge, 0) + 1
            triple = (prev_block, label, next_label)
            path_counts[triple] = path_counts.get(triple, 0) + 1

            if edge in schedule:
                modeset_executions += 1
                target_mode = schedule[edge]
                if target_mode != current_mode:
                    v_from = voltages[current_mode]
                    v_to = voltages[target_mode]
                    st = self.transition_model.time_s(v_from, v_to)
                    # Canonical nJ-space cost: the same method the MILP's
                    # linearized CE constant derives from, so the charged
                    # SE can never drift from the formulation's.
                    se_nj = self.transition_model.energy_nj(v_from, v_to)
                    now += st
                    transition_time_s += st
                    transition_energy_nj += se_nj
                    mode_transitions += 1
                    current_mode = target_mode
                    # Rebind every mode-derived hot-loop local; stale
                    # bindings here would silently misprice the new mode.
                    cycle_time = cycle_times[current_mode]
                    voltage = voltages[current_mode]
                    op_energy = op_energy_tables[current_mode]
                    if fast_fns is not None:
                        # Memoized block deltas are per-mode: swap the
                        # delta table with the mode (never reuse stale
                        # deltas priced at the previous operating point).
                        fast_consts = pf.consts(current_mode)

            prev_block = label
            label = next_label

        # -- run assembly: totals from per-block compensated accumulators ----
        from repro.perf.accum import NeumaierSum

        cpu_total = NeumaierSum()
        block_stats: dict[str, BlockStats] = {}
        for blabel, a in acct.items():
            e_nj = a[3] + a[4]
            block_stats[blabel] = BlockStats(count=a[0], time_s=a[1] + a[2],
                                             cpu_energy_nj=e_nj)
            cpu_total.add(e_nj)
        cpu_total.add(transition_energy_nj)
        cpu_energy = cpu_total.value
        memory_energy = mem_s + mem_c

        energy.cpu_energy_nj = cpu_energy
        energy.memory_energy_nj = memory_energy

        self.last_fastpath_stats = {
            "enabled": int(fast_fns is not None),
            "fast_blocks": fast_blocks,
            "slow_blocks": slow_blocks,
            "bails": bails,
            "loop_entries": loop_entries,
            "loop_iterations": loop_iterations,
        }

        cache_stats = dcache.stats()
        cache_stats.update({f"i_{k}": v for k, v in icache.stats().items()})

        return RunResult(
            return_value=return_value,
            wall_time_s=now,
            cpu_energy_nj=cpu_energy,
            memory_energy_nj=memory_energy,
            instructions=instructions,
            block_stats=block_stats,
            edge_counts=edge_counts,
            path_counts=path_counts,
            cache_stats=cache_stats,
            overlap_cycles=overlap_cycles,
            dependent_cycles=dependent_cycles,
            cache_cycles=cache_cycles,
            dmiss_sync_cycles=dmiss_sync_cycles,
            ifetch_cycles=ifetch_cycles,
            mem_misses=mem_misses,
            t_invariant_s=mem_misses * mem_latency,
            gated_wait_s=gated_wait,
            mode_transitions=mode_transitions,
            modeset_executions=modeset_executions,
            transition_energy_nj=transition_energy_nj,
            transition_time_s=transition_time_s,
            final_mode=current_mode,
            memory=memory,
        )
