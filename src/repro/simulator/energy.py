"""Wattch-style energy accounting.

Every activation of a structure charges ``c_eff * V²`` nanojoules, where
``c_eff`` is a per-class effective switched capacitance (nanofarads) and V
the current supply voltage.  This is the CV² dynamic-power model the paper
and Wattch both use; clock gating makes stall cycles free (assumption 3 in
Section 3.1).

Main-memory accesses are charged a *constant* energy, tracked separately —
the paper's optimization minimizes processor energy only ("the memory
energy is a constant independent of processor frequency").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import OpClass
from repro.simulator.config import MachineConfig


@dataclass
class EnergyModel:
    """Accumulates CPU and memory energy for one simulation run.

    Attributes:
        config: the machine description (base capacitance, cache energies).
        cpu_energy_nj: dynamic CPU energy so far (nJ).
        memory_energy_nj: DRAM energy so far (nJ), frequency-invariant.
    """

    config: MachineConfig
    cpu_energy_nj: float = 0.0
    memory_energy_nj: float = 0.0

    def op_energy_nj(self, op_class: OpClass, voltage: float) -> float:
        """Energy of one instruction: its unit activation plus base clock
        capacitance for each of its latency cycles."""
        c_total = op_class.c_eff + self.config.base_c_eff_nf * op_class.latency
        return c_total * voltage * voltage

    def charge_op(self, op_class: OpClass, voltage: float) -> float:
        energy = self.op_energy_nj(op_class, voltage)
        self.cpu_energy_nj += energy
        return energy

    def charge_cache(self, level: str, voltage: float) -> float:
        """Energy of one cache access at a given level ('l1d','l1i','l2')."""
        if level == "l1d":
            c_eff = self.config.l1d.access_energy_nf
        elif level == "l1i":
            c_eff = self.config.l1i.access_energy_nf
        elif level == "l2":
            c_eff = self.config.l2.access_energy_nf
        else:
            raise ValueError(f"unknown cache level {level!r}")
        energy = c_eff * voltage * voltage
        self.cpu_energy_nj += energy
        return energy

    def charge_sync_cycles(self, cycles: int, voltage: float) -> float:
        """Base clock energy for synchronous (non-gated) stall cycles, e.g.
        waiting on an L2 hit: the clock keeps running."""
        energy = self.config.base_c_eff_nf * cycles * voltage * voltage
        self.cpu_energy_nj += energy
        return energy

    def charge_memory_access(self) -> float:
        energy = self.config.memory_access_energy_nj
        self.memory_energy_nj += energy
        return energy

    def charge_transition_nj(self, energy_nj: float) -> float:
        """DVS mode-switch energy (regulator), counted as CPU energy as the
        paper's formulation does."""
        self.cpu_energy_nj += energy_nj
        return energy_nj

    @property
    def total_energy_nj(self) -> float:
        return self.cpu_energy_nj + self.memory_energy_nj
