"""Wattch/SimpleScalar-like execution substrate.

The paper profiles programs with the Wattch power/performance simulator on
SimpleScalar.  This subpackage is the reproduction's equivalent: an
instruction-level timing and energy simulator for the :mod:`repro.ir` ISA
with the same modelling assumptions the paper's analysis rests on:

1. program logical behaviour does not change with frequency;
2. main memory is asynchronous with the CPU (miss latency is wall-clock,
   not cycles);
3. the clock is gated while the processor waits (no energy during stalls);
4. frequency and voltage obey the alpha-power law ``f = k (V - Vt)^a / V``;
5. per-activation energy is ``c_eff * V²`` (Wattch-style class energies).

Key entry points:

* :class:`~repro.simulator.config.MachineConfig` — cache/memory/energy
  parameters (``PAPER_CONFIG`` mirrors the paper's Table 2; the default
  ``SCALE_CONFIG`` shrinks caches so laptop-scale workloads exhibit the
  same hit/miss regimes).
* :class:`~repro.simulator.dvs.ModeTable` — discrete (V, f) operating
  points, including the paper's XScale-like 3-level table and generated
  7/13-level tables on the alpha-power curve.
* :class:`~repro.simulator.machine.Machine` — executes a CFG under a DVS
  schedule, returning wall time, CPU energy, per-block/edge/path counts.
"""

from repro.simulator.config import MachineConfig, PAPER_CONFIG, SCALE_CONFIG
from repro.simulator.cache import Cache, CacheHierarchy
from repro.simulator.dvs import (
    OperatingPoint,
    ModeTable,
    TransitionCostModel,
    XSCALE_3,
    make_mode_table,
)
from repro.simulator.energy import EnergyModel
from repro.simulator.machine import Machine, RunResult
from repro.simulator.trace import (
    Phase,
    hottest_blocks,
    mode_residency,
    phases,
    render_timeline,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "EnergyModel",
    "Machine",
    "MachineConfig",
    "ModeTable",
    "OperatingPoint",
    "PAPER_CONFIG",
    "Phase",
    "RunResult",
    "SCALE_CONFIG",
    "TransitionCostModel",
    "XSCALE_3",
    "hottest_blocks",
    "make_mode_table",
    "mode_residency",
    "phases",
    "render_timeline",
]
