"""Machine configuration (the paper's Table 2, plus a scale model).

``PAPER_CONFIG`` reproduces the simulation parameters of Table 2 of the
paper (64 KB 4-way L1s, 512 KB 4-way unified L2 with 16-cycle latency,
32-byte lines).  Because our workloads are kernel-scale rather than full
MediaBench runs, the default ``SCALE_CONFIG`` shrinks the caches while
keeping latencies and associativities, so the scale-model programs exercise
the same hit/miss regimes (L1-resident, L2-resident, memory-streaming) that
full-size programs exercise on the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing for one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency_cycles: int
    access_energy_nf: float  # c_eff in nF: one access costs c_eff * V² nJ

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description consumed by the simulator.

    Attributes:
        l1d, l1i, l2: cache-level configurations.
        memory_latency_s: wall-clock DRAM service time per miss (the
            paper's asynchronous-memory assumption: this does not scale
            with CPU frequency).
        base_c_eff_nf: clock-tree/pipeline capacitance charged per *active*
            CPU cycle (zero during gated stalls).
        memory_access_energy_nj: DRAM energy per miss, counted separately
            from CPU energy (the paper's optimization covers CPU energy
            only; memory energy is frequency-invariant).
    """

    name: str
    l1d: CacheConfig
    l1i: CacheConfig
    l2: CacheConfig
    memory_latency_s: float = 150e-9
    base_c_eff_nf: float = 0.40
    memory_access_energy_nj: float = 8.0

    def with_memory_latency(self, latency_s: float) -> "MachineConfig":
        """Copy with a different DRAM latency (used in sweeps)."""
        return replace(self, memory_latency_s=latency_s)


PAPER_CONFIG = MachineConfig(
    name="paper-table2",
    l1d=CacheConfig(size_bytes=64 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=1, access_energy_nf=0.80),
    l1i=CacheConfig(size_bytes=64 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=1, access_energy_nf=0.60),
    l2=CacheConfig(size_bytes=512 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=16, access_energy_nf=3.00),
)

SCALE_CONFIG = MachineConfig(
    name="scale-model",
    l1d=CacheConfig(size_bytes=4 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=1, access_energy_nf=0.80),
    l1i=CacheConfig(size_bytes=8 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=1, access_energy_nf=0.60),
    l2=CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=32, hit_latency_cycles=16, access_energy_nf=3.00),
)
