"""DVS operating points, mode tables and transition costs.

The (V, f) relationship follows the alpha-power law the paper assumes
(Section 3.1, citing Sakurai-Newton)::

    f = k * (V - Vt)^a / V          with a = 1.5, Vt = 0.45 V

Three standard tables are provided:

* :data:`XSCALE_3` — the paper's XScale-like experimental table
  (200 MHz @ 0.7 V, 600 MHz @ 1.3 V, 800 MHz @ 1.65 V, Section 5.1);
* :func:`make_mode_table` — n-level tables with voltages evenly spaced on
  [0.7 V, 1.65 V] and frequencies on the alpha-power curve calibrated so
  the top level runs at 800 MHz (used for the 3/7/13-level studies).

Transition costs follow the paper's Section 4.2 (from Burd & Brodersen)::

    SE = (1 - u) * c * |V1² - V2²|        (energy, Joules)
    ST = 2 * c / Imax * |V1 - V2|          (time, seconds)

The paper's "typical" point — c = 10 µF giving a 12 µs / 1.2 µJ transition
between 600 MHz/1.3 V and 200 MHz/0.7 V — pins the defaults u = 0.9 and
Imax = 1 A used here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import AnalysisError

ALPHA = 1.5
V_THRESHOLD = 0.45
V_LOW_DEFAULT = 0.70
V_HIGH_DEFAULT = 1.65
F_HIGH_DEFAULT = 800e6


def alpha_power_frequency(voltage: float, k: float, alpha: float = ALPHA, vt: float = V_THRESHOLD) -> float:
    """Clock frequency at a supply voltage under the alpha-power law."""
    if voltage <= vt:
        raise AnalysisError(f"supply voltage {voltage} V must exceed Vt={vt} V")
    return k * (voltage - vt) ** alpha / voltage


def calibrate_k(f_at_vhigh: float = F_HIGH_DEFAULT, v_high: float = V_HIGH_DEFAULT,
                alpha: float = ALPHA, vt: float = V_THRESHOLD) -> float:
    """Technology constant k such that f(v_high) = f_at_vhigh."""
    return f_at_vhigh * v_high / (v_high - vt) ** alpha


@dataclass(frozen=True)
class OperatingPoint:
    """One DVS mode: a (frequency, supply voltage) pair."""

    frequency_hz: float
    voltage: float

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    def __repr__(self) -> str:
        return f"({self.frequency_hz / 1e6:.0f} MHz, {self.voltage:.3g} V)"


class ModeTable:
    """An ordered set of DVS operating points (slowest first)."""

    def __init__(self, points: Sequence[OperatingPoint], name: str = "modes") -> None:
        if not points:
            raise AnalysisError("mode table needs at least one operating point")
        self.points = tuple(sorted(points, key=lambda p: p.frequency_hz))
        self.name = name
        voltages = [p.voltage for p in self.points]
        if voltages != sorted(voltages):
            raise AnalysisError("voltages must increase with frequency")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self.points[index]

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self.points)

    @property
    def fastest(self) -> OperatingPoint:
        return self.points[-1]

    @property
    def slowest(self) -> OperatingPoint:
        return self.points[0]

    def index_of(self, point: OperatingPoint) -> int:
        return self.points.index(point)

    def voltages(self) -> list[float]:
        return [p.voltage for p in self.points]

    def frequencies(self) -> list[float]:
        return [p.frequency_hz for p in self.points]

    def __repr__(self) -> str:
        return f"ModeTable({self.name!r}, {list(self.points)})"


XSCALE_3 = ModeTable(
    [
        OperatingPoint(200e6, 0.70),
        OperatingPoint(600e6, 1.30),
        OperatingPoint(800e6, 1.65),
    ],
    name="xscale-3",
)


def make_mode_table(
    levels: int,
    v_low: float = V_LOW_DEFAULT,
    v_high: float = V_HIGH_DEFAULT,
    f_high: float = F_HIGH_DEFAULT,
    alpha: float = ALPHA,
    vt: float = V_THRESHOLD,
) -> ModeTable:
    """Build an n-level table on the alpha-power curve.

    Voltages are evenly spaced on [v_low, v_high]; each level's frequency
    comes from the alpha-power law with k calibrated so the top level runs
    at ``f_high``.  This matches how the paper constructs its 3/7/13-level
    analytic studies.
    """
    if levels < 1:
        raise AnalysisError("levels must be >= 1")
    k = calibrate_k(f_high, v_high, alpha, vt)
    if levels == 1:
        voltages = [v_high]
    else:
        step = (v_high - v_low) / (levels - 1)
        voltages = [v_low + i * step for i in range(levels)]
    points = [OperatingPoint(alpha_power_frequency(v, k, alpha, vt), v) for v in voltages]
    return ModeTable(points, name=f"alpha-{levels}")


@dataclass(frozen=True)
class TransitionCostModel:
    """Energy/time cost of switching between two operating points.

    Attributes:
        capacitance_f: voltage-regulator capacitance c, in Farads.
        efficiency: regulator energy efficiency u in [0, 1).
        i_max_a: maximum regulator current, Amperes.
    """

    capacitance_f: float = 10e-6
    efficiency: float = 0.9
    i_max_a: float = 1.0

    # The linear-form constants CE and CT live *here* and nowhere else:
    # the simulator's charged costs and the MILP's linearized constants
    # (core.milp.transition.TransitionCosts) both read these properties,
    # so the two sides cannot drift apart.

    @property
    def ce_j_per_v2(self) -> float:
        """CE = (1-u)·c in Joules per squared volt."""
        return (1.0 - self.efficiency) * self.capacitance_f

    @property
    def ce_nj_per_v2(self) -> float:
        """CE in nanojoules per squared volt (the simulator's energy unit)."""
        return self.ce_j_per_v2 * 1e9

    @property
    def ct_s_per_v(self) -> float:
        """CT = 2c/Imax in seconds per volt."""
        return 2.0 * self.capacitance_f / self.i_max_a

    def energy_j(self, v_from: float, v_to: float) -> float:
        """SE = CE * |v1² - v2²| in Joules (0 for same voltage)."""
        return self.ce_j_per_v2 * abs(v_from**2 - v_to**2)

    def time_s(self, v_from: float, v_to: float) -> float:
        """ST = CT * |v1 - v2| in seconds (0 for same voltage)."""
        return self.ct_s_per_v * abs(v_from - v_to)

    def energy_nj(self, v_from: float, v_to: float) -> float:
        """Canonical nJ-space SE.

        Computed as ``ce_nj_per_v2 * |v1² - v2²|`` — the exact product the
        MILP objective forms — rather than converting a Joule-space result,
        so the simulator's per-transition charge is bitwise the constant
        the formulation prices transitions with.
        """
        return self.ce_nj_per_v2 * abs(v_from**2 - v_to**2)

    def with_capacitance(self, capacitance_f: float) -> "TransitionCostModel":
        """Copy with a different regulator capacitance (Figure 15 sweeps)."""
        return TransitionCostModel(capacitance_f, self.efficiency, self.i_max_a)


ZERO_TRANSITION = TransitionCostModel(capacitance_f=0.0)
