"""Parallel task-graph execution with timeouts, retries and degradation.

The scheduler keeps a frontier of ready tasks (all dependencies
finished) and feeds a ``ProcessPoolExecutor`` up to ``jobs`` tasks deep.
Experiments are CPU-bound pure-Python simulation, so processes — not
threads — are what buys wall-clock time.

Failure semantics, in order of application:

* **cache hit** — a task whose key is in the artifact store never runs;
  the stored payload becomes its output.
* **timeout** — each task may carry a wall-clock budget, enforced
  *inside* the worker with a SIGALRM interval timer (workers run tasks
  on their main thread), raising :class:`~repro.errors.TaskTimeout`.
* **retry** — a failed task is resubmitted up to ``retries`` times with
  exponential backoff; attempts are counted in the parent so a retried
  task lands on a fresh worker.
* **degradation** — a task that exhausts its retries records a
  structured failure; its dependents are marked ``skipped`` with the
  failing task named as the reason, and every other task in the sweep
  proceeds.  The executor itself only raises for malformed graphs,
  never for failing experiments.

Fault injection (:class:`FaultSpec`) deliberately kills matching task
attempts inside the worker — the degradation path is tested, not
assumed.
"""

from __future__ import annotations

import fnmatch
import logging
import multiprocessing
import os
import signal
import sys
import time
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import observe
from repro.errors import InjectedFault, OrchestrationError, TaskTimeout
from repro.resilience import faultplane
from repro.runtime.cache import ArtifactStore
from repro.runtime.dag import Task, TaskGraph, execute_task

logger = logging.getLogger("repro.executor")


@dataclass(frozen=True)
class FaultSpec:
    """Kill worker tasks whose id matches a glob pattern.

    Args:
        pattern: fnmatch glob over task ids (e.g. ``"optimize:gsm*"``).
        fail_attempts: how many leading attempts to kill; ``None`` kills
            every attempt (the task can never succeed).
    """

    pattern: str
    fail_attempts: int | None = None

    def applies(self, task_id: str, attempt: int) -> bool:
        if not fnmatch.fnmatch(task_id, self.pattern):
            return False
        return self.fail_attempts is None or attempt <= self.fail_attempts

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``PATTERN`` or ``PATTERN@N`` (fail the first N attempts)."""
        if "@" in text:
            pattern, _, count = text.rpartition("@")
            try:
                return cls(pattern, fail_attempts=int(count))
            except ValueError:
                raise OrchestrationError(
                    f"malformed fault spec {text!r} (want PATTERN or PATTERN@N)"
                ) from None
        return cls(text)


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for one :func:`run_graph` invocation."""

    jobs: int = 1
    task_timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.05
    fault: FaultSpec | None = None


@dataclass
class TaskResult:
    """What one task did, for the manifest and for dependents."""

    task_id: str
    kind: str
    status: str  # "ok" | "failed" | "skipped"
    experiments: tuple[str, ...]
    cache: str  # "hit" | "miss" | "off" | "journal"
    attempts: int = 0
    wall_time_s: float = 0.0
    output: dict[str, Any] | None = None
    error: str | None = None
    error_type: str | None = None
    # Non-fatal degradations inside the worker (e.g. a timeout that could
    # not be armed off the main thread); surfaced in the manifest.
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# -- worker side -----------------------------------------------------------------


def _init_worker(parent_sys_path: list[str]) -> None:
    """Make the parent's import roots visible under spawn-style start."""
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _with_timeout(
    timeout_s: float | None, fn: Callable[[], dict]
) -> tuple[dict, list[str]]:
    """Run ``fn`` under a SIGALRM deadline when the platform allows it.

    ``signal.setitimer``/``SIGALRM`` only work on the main thread of a
    process.  When a timeout was *requested* but cannot be armed (no
    SIGALRM on this platform, or we are running on a non-main thread,
    e.g. under a thread-pool harness), the task runs without a deadline
    and the degradation is reported as a warning instead of raising
    ``ValueError`` from the signal machinery.

    Returns:
        (result of ``fn``, warnings).
    """
    import threading

    warnings: list[str] = []
    wanted = timeout_s is not None and timeout_s > 0
    on_main = threading.current_thread() is threading.main_thread()
    can_alarm = wanted and hasattr(signal, "SIGALRM") and on_main
    if not can_alarm:
        if wanted:
            reason = ("platform lacks SIGALRM" if not hasattr(signal, "SIGALRM")
                      else "worker is not on its process's main thread")
            warnings.append(
                f"task timeout {timeout_s:g}s requested but not enforced: {reason}"
            )
        return fn(), warnings

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded its {timeout_s:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(), warnings
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_task_entry(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: compute one task, never raise.

    Returns a transport dict ``{ok, output|error, wall_time_s,
    started_at}`` plus, for pool workers with tracing on, a ``trace``
    snapshot the parent merges; errors travel as (type name, message)
    pairs so the parent need not unpickle arbitrary exception state.
    """
    fresh = payload.get("trace_fresh", False)
    if fresh:
        # Fork-started pool workers inherit the parent collector (its
        # spans, metrics, and thread-local span stack); start clean so
        # the shipped snapshot covers exactly this task.  jobs=1 runs
        # in the parent process and must NOT reset the live collector.
        observe.reset()
        if payload.get("trace"):
            observe.enable()
        else:
            observe.disable()
    sp = observe.start_span(
        "worker.task", parent_id=payload.get("trace_parent"), on_stack=True,
        task=payload["task_id"], kind=payload["kind"],
        attempt=payload["attempt"],
    )
    try:
        if payload.get("inject_fault") or faultplane.fire("worker.crash"):
            raise InjectedFault(
                f"injected fault in {payload['task_id']} "
                f"(attempt {payload['attempt']})"
            )

        def _body() -> dict:
            # worker.hang sleeps *inside* the timeout window, so a hang
            # longer than the task budget is killed by TaskTimeout like
            # any genuine stall would be.
            faultplane.stall("worker.hang")
            return execute_task(payload["kind"], payload["spec"], payload["deps"])

        output, warnings = _with_timeout(payload.get("timeout_s"), _body)
        store_root = payload.get("store_root")
        # Tasks may veto memoization of a degraded output (e.g. a fallback
        # schedule from a starved solver must not masquerade as the
        # optimum for future runs).
        if (store_root is not None and payload.get("cache_key")
                and output.get("_cacheable", True)):
            ArtifactStore(store_root).put(payload["cache_key"], output)
        observe.end_span(sp, status="ok")
        transport = {
            "ok": True,
            "output": output,
            "warnings": warnings,
            "wall_time_s": sp.elapsed_s,
            "started_at": sp.t0,
        }
    except BaseException as error:  # noqa: BLE001 — transported, not swallowed
        observe.end_span(sp, status="error", error=type(error).__name__)
        transport = {
            "ok": False,
            "error": str(error),
            "error_type": type(error).__name__,
            "wall_time_s": sp.elapsed_s,
            "started_at": sp.t0,
        }
    if fresh and observe.enabled():
        transport["trace"] = observe.snapshot(reset=True)
        observe.disable()
    return transport


# -- parent side -----------------------------------------------------------------


def _pool_context():
    """Prefer fork (cheap, inherits sys.path); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_roll_call(delay_s: float) -> int:
    """Identify a worker (used by :meth:`WorkerPool.warm_up`).

    The short sleep keeps the task pinned long enough that concurrent
    roll calls land on distinct workers instead of one fast worker
    draining them all.
    """
    time.sleep(delay_s)
    return os.getpid()


class WorkerPool:
    """A persistent, crash-resilient process pool.

    Historically each :func:`run_graph` call spun up its own
    ``ProcessPoolExecutor`` and tore it down with the sweep.  A
    ``WorkerPool`` decouples the pool's lifetime from any one graph run
    so a long-lived service (:mod:`repro.serve`) can keep **warm**
    workers across requests: fork-started workers retain the solver's
    warm-basis/pseudocost registries (:mod:`repro.solver.warmstart`) and
    the compiled-simulator caches (:mod:`repro.perf.engine`) between
    tasks, which is where the per-request amortization comes from.

    The pool is a context manager (``with WorkerPool(4) as pool:``) and
    is safe to share between threads: many concurrent ``run_graph``
    calls may submit into one pool.  When a worker dies (OOM kill,
    SIGKILL chaos), the underlying executor breaks; :meth:`reset`
    discards it and the next :meth:`submit` respawns a fresh one, so a
    single crashed request never takes the service down.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise OrchestrationError(f"pool jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.respawns = 0
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def _spawn_locked(self) -> ProcessPoolExecutor:
        self._executor = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(list(sys.path),),
        )
        return self._executor

    def submit(self, fn: Callable, *args: Any) -> Future:
        """Submit work, respawning the executor if a worker died."""
        with self._lock:
            if self._closed:
                raise OrchestrationError("worker pool is closed")
            executor = self._executor or self._spawn_locked()
            try:
                return executor.submit(fn, *args)
            except BrokenProcessPool:
                self._reset_locked()
                return self._spawn_locked().submit(fn, *args)

    def _reset_locked(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.respawns += 1
            observe.add("executor.pool.respawns")
            logger.warning("worker pool broken; respawning (respawn #%d)",
                           self.respawns)

    def reset(self) -> None:
        """Discard a broken executor; the next submit respawns it."""
        with self._lock:
            self._reset_locked()

    def warm_up(self, delay_s: float = 0.05) -> list[int]:
        """Force worker spawn-up; returns the pids that answered.

        ``ProcessPoolExecutor`` forks workers lazily, so a fresh pool
        has nobody to keep warm (and nothing for a chaos harness to
        kill) until the first task arrives.
        """
        futures = [self.submit(_worker_roll_call, delay_s)
                   for _ in range(self.jobs)]
        return sorted({future.result() for future in futures})

    def worker_pids(self) -> list[int]:
        """Pids of the live worker processes (may be empty before use)."""
        with self._lock:
            if self._executor is None:
                return []
            processes = getattr(self._executor, "_processes", None) or {}
            return sorted(processes)

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        with self._lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _InlineFuture:
    """A completed-immediately future for jobs=1 inline execution."""

    def __init__(self, value: dict[str, Any]) -> None:
        self._value = value

    def result(self) -> dict[str, Any]:
        return self._value


def run_graph(
    graph: TaskGraph,
    store: ArtifactStore | None = None,
    config: ExecutorConfig = ExecutorConfig(),
    on_task: Callable[[TaskResult], None] | None = None,
    completed: dict[str, dict[str, Any]] | None = None,
    should_stop: Callable[[], bool] | None = None,
    pool: WorkerPool | None = None,
) -> dict[str, TaskResult]:
    """Execute a task graph; returns results for every task.

    Args:
        graph: a validated :class:`TaskGraph`.
        store: optional artifact store consulted before running any
            cacheable task and written through by workers.
        config: parallelism/timeout/retry/fault settings.
        on_task: progress callback, invoked once per finished task.
        completed: task outputs recovered from a previous run's journal
            (task id → output dict); these tasks are finished immediately
            with ``cache="journal"`` and never re-executed.
        should_stop: polled between scheduling steps; once it returns
            True the executor stops submitting work, drains every
            in-flight task (journaling their results via ``on_task``)
            and returns the partial result map.  Used by the SIGINT
            handler for a clean interrupted shutdown.
        pool: an externally owned :class:`WorkerPool` to execute tasks
            in.  The caller keeps it alive across calls (warm workers);
            this function never shuts it down.  Without one, ``jobs > 1``
            creates a pool for just this graph and ``jobs == 1`` runs
            tasks inline.

    Returns:
        results for every task — or, after a ``should_stop`` drain, for
        the subset that finished before the stop.
    """
    if config.jobs < 1:
        raise OrchestrationError(f"jobs must be >= 1, got {config.jobs}")
    graph.validate()

    order = graph.topo_order()
    results: dict[str, TaskResult] = {}
    probed: set[str] = set()  # tasks already looked up in the store
    attempts: dict[str, int] = {tid: 0 for tid in order}
    inflight: dict[Future, str] = {}
    task_spans: dict[str, observe.Span] = {}  # open executor.task spans
    stopping = False
    owned_pool: WorkerPool | None = None
    if pool is None and config.jobs > 1:
        owned_pool = pool = WorkerPool(config.jobs)
    graph_span = observe.start_span("executor.run_graph", on_stack=True,
                                    jobs=config.jobs, tasks=len(graph.tasks))

    def finish(result: TaskResult) -> None:
        results[result.task_id] = result
        observe.add(f"executor.tasks.{result.status}")
        if on_task is not None:
            on_task(result)

    for task_id, output in (completed or {}).items():
        task = graph.tasks.get(task_id)
        if task is None:
            continue  # journal from a superset grid; ignore strays
        finish(TaskResult(
            task_id=task_id, kind=task.kind, status="ok",
            experiments=task.experiments, cache="journal", output=output,
        ))

    def ready_tasks() -> list[Task]:
        out = []
        for tid in order:
            if tid in results or tid in inflight.values():
                continue
            task = graph.tasks[tid]
            if all(dep in results for dep in task.deps):
                out.append(task)
        return out

    def resolve_without_running(task: Task) -> TaskResult | None:
        """Skip on failed deps; serve cache hits without a worker."""
        failed_deps = [d for d in task.deps if not results[d].ok]
        if failed_deps:
            return TaskResult(
                task_id=task.task_id, kind=task.kind, status="skipped",
                experiments=task.experiments, cache="off",
                error=f"dependency {failed_deps[0]} "
                      f"{results[failed_deps[0]].status}",
                error_type="SkippedDependency",
            )
        if (store is not None and task.cache_key is not None
                and task.task_id not in probed):
            probed.add(task.task_id)
            probe = observe.start_span("executor.cache_probe",
                                       task=task.task_id)
            payload = store.get(task.cache_key)
            observe.end_span(probe, hit=payload is not None)
            if payload is not None:
                return TaskResult(
                    task_id=task.task_id, kind=task.kind, status="ok",
                    experiments=task.experiments, cache="hit",
                    wall_time_s=probe.elapsed_s, output=payload,
                )
        return None

    def submit(task: Task) -> None:
        attempts[task.task_id] += 1
        attempt = attempts[task.task_id]
        # One executor.task span per attempt, ended in absorb().  It is
        # deliberately off the thread-local stack: many are open at once
        # and they do not nest.
        tspan = observe.start_span("executor.task", task=task.task_id,
                                   kind=task.kind, attempt=attempt)
        task_spans[task.task_id] = tspan
        payload = {
            "task_id": task.task_id,
            "kind": task.kind,
            "spec": task.spec,
            "deps": {
                graph.tasks[dep].kind: results[dep].output for dep in task.deps
            },
            "attempt": attempt,
            "timeout_s": config.task_timeout_s,
            "cache_key": task.cache_key,
            "store_root": str(store.root) if store is not None else None,
            "inject_fault": bool(
                config.fault and config.fault.applies(task.task_id, attempt)
            ),
            "trace": observe.enabled(),
            "trace_parent": tspan.span_id or None,
            "trace_fresh": pool is not None,
        }
        if pool is not None:
            inflight[pool.submit(_run_task_entry, payload)] = task.task_id
        else:
            inflight[_InlineFuture(_run_task_entry(payload))] = task.task_id

    def absorb(task_id: str, transport: dict[str, Any]) -> None:
        task = graph.tasks[task_id]
        observe.absorb(transport.get("trace"))
        tspan = task_spans.pop(task_id, None)
        if tspan is not None:
            started = transport.get("started_at")
            if started is not None:
                # perf_counter is CLOCK_MONOTONIC (system-wide on Linux),
                # so parent submit time and worker start time compare;
                # clamp for platforms where the epochs may differ.
                observe.record("executor.queue_wait_s",
                               max(0.0, started - tspan.t0))
            observe.end_span(tspan, ok=transport["ok"])
        if transport["ok"]:
            finish(TaskResult(
                task_id=task_id, kind=task.kind, status="ok",
                experiments=task.experiments,
                cache="miss" if (store and task.cache_key) else "off",
                attempts=attempts[task_id],
                wall_time_s=transport["wall_time_s"],
                output=transport["output"],
                warnings=tuple(transport.get("warnings", ())),
            ))
            return
        if transport.get("error_type") == "TaskTimeout":
            observe.add("executor.timeouts")
        if attempts[task_id] <= config.retries and not stopping:
            observe.add("executor.retries")
            logger.info("retrying %s (attempt %d failed: %s)", task_id,
                        attempts[task_id], transport.get("error_type"))
            time.sleep(config.backoff_s * (2 ** (attempts[task_id] - 1)))
            submit(task)
            return
        logger.warning("task %s failed after %d attempts: %s", task_id,
                       attempts[task_id], transport.get("error"))
        finish(TaskResult(
            task_id=task_id, kind=task.kind, status="failed",
            experiments=task.experiments,
            cache="miss" if (store and task.cache_key) else "off",
            attempts=attempts[task_id],
            wall_time_s=transport["wall_time_s"],
            error=transport["error"],
            error_type=transport["error_type"],
        ))

    try:
        while len(results) < len(graph.tasks):
            if not stopping and should_stop is not None and should_stop():
                stopping = True
            progressed = False
            if not stopping:
                for task in ready_tasks():
                    resolved = resolve_without_running(task)
                    if resolved is not None:
                        finish(resolved)
                        progressed = True
                    elif len(inflight) < config.jobs:
                        submit(task)
                        progressed = True
            if inflight:
                if pool is not None:
                    done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                else:
                    done = list(inflight)
                for future in done:
                    task_id = inflight.pop(future)
                    absorb(task_id, _transport_of(future, pool))
                progressed = True
            if stopping and not inflight:
                break  # drained: return the partial result map
            if not progressed:
                stuck = sorted(set(graph.tasks) - set(results))
                raise OrchestrationError(
                    f"scheduler stalled with tasks unresolved: {stuck}"
                )
    finally:
        if owned_pool is not None:
            owned_pool.close()
        for tspan in task_spans.values():
            observe.end_span(tspan, ok=False, abandoned=True)
        observe.end_span(graph_span, completed=len(results))

    return results


def _transport_of(future: "Future | _InlineFuture",
                  pool: WorkerPool | None) -> dict[str, Any]:
    """A finished future's transport dict, with worker death absorbed.

    A worker killed mid-task (OOM, SIGKILL chaos) breaks the whole
    executor: every in-flight future raises ``BrokenProcessPool``.  That
    must degrade into per-task failures — retried on a respawned pool or
    reported as structured failures — never crash the graph run.
    """
    try:
        return future.result()
    except BaseException as error:  # noqa: BLE001 - converted to a failure
        if pool is not None and isinstance(error, BrokenProcessPool):
            observe.add("executor.worker_crashes")
            pool.reset()
        return {
            "ok": False,
            "error": str(error) or type(error).__name__,
            "error_type": type(error).__name__,
            "wall_time_s": 0.0,
            "started_at": None,
        }
