"""Content-addressed cache keys for experiment artifacts.

Every expensive artifact (a per-mode profile, a MILP schedule, a
simulated run) is stored under a key that *is* a hash of everything the
artifact depends on:

* the workload **source text** (not its name — editing a kernel
  invalidates its artifacts automatically),
* the **input selector** (category, seed),
* the **machine**: cache geometry and energies, DRAM latency, the full
  mode table as (frequency, voltage) pairs, and the regulator transition
  model,
* stage-specific parameters (the deadline fraction for a schedule),
* the serialization :data:`~repro.profiling.serialize.FORMAT_VERSION`
  and this module's :data:`KEY_VERSION`.

Two producers that agree on those inputs — the ``repro profile``/
``repro optimize`` CLI, the benchmark session cache, a parallel sweep —
therefore share cache entries, and any change to the simulator's
observable configuration changes the key rather than silently serving a
stale artifact.

Hashes are SHA-256 over a *canonical* JSON form (sorted keys, no
whitespace, lossless float repr), so key stability does not depend on
dict insertion order or on which process computed the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

from repro.errors import CacheError
from repro.profiling.serialize import FORMAT_VERSION
from repro.simulator.machine import Machine

#: Bumped whenever key semantics change *or* the simulator's numeric
#: outputs change for identical inputs.  v2: compensated (Neumaier)
#: energy accounting and the canonical nJ-space transition-cost path
#: perturb run summaries in the last few ulps, so v1 artifacts must not
#: be served.  The fast path is deliberately *not* part of any key:
#: it is bit-exact, so fast and reference runs share artifacts.
KEY_VERSION = 2


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for hashing: sorted keys, compact, floats
    via ``repr`` (Python's shortest round-trip form, stable across runs).

    Raises:
        CacheError: the object holds something JSON cannot express
            (a set, an object, NaN/Infinity).
    """
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except (TypeError, ValueError) as error:
        raise CacheError(f"value is not canonically hashable: {error}") from error


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def source_digest(source: str) -> str:
    """SHA-256 of a workload's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def machine_fingerprint(machine: Machine) -> dict[str, Any]:
    """Everything about a :class:`Machine` that can change simulation
    results, as a JSON-compatible dict.

    The mode table is fingerprinted by its numeric (frequency, voltage)
    points, not its display name, so ``make_mode_table(3)`` and a
    hand-built identical table share artifacts.
    """
    return {
        "config": asdict(machine.config),
        "modes": [[p.frequency_hz, p.voltage] for p in machine.mode_table],
        "transition": asdict(machine.transition_model),
    }


def workload_fingerprint(source: str, category: str | None, seed: int) -> dict[str, Any]:
    """The (program, input) half of an artifact key."""
    return {
        "source_sha256": source_digest(source),
        "category": category,
        "seed": seed,
    }


def artifact_key(kind: str, **parts: Any) -> str:
    """The content address for one artifact kind.

    Args:
        kind: artifact kind tag (``"profile"``, ``"params"``,
            ``"schedule"``, ``"run-summary"``, ...).
        **parts: the key document fields (fingerprints, stage params).

    Returns:
        A 64-char hex digest; the same inputs always produce the same
        key, in any process on any platform.
    """
    document = {
        "key_version": KEY_VERSION,
        "format": FORMAT_VERSION,
        "kind": kind,
        **parts,
    }
    return stable_hash(document)


def profile_key(source: str, category: str | None, seed: int,
                machine: Machine) -> str:
    """Key for a per-mode :class:`~repro.profiling.profile_data.ProfileData`."""
    return artifact_key(
        "profile",
        workload=workload_fingerprint(source, category, seed),
        machine=machine_fingerprint(machine),
    )


def params_key(source: str, category: str | None, seed: int,
               machine: Machine) -> str:
    """Key for extracted Section 3.2 analytical parameters."""
    return artifact_key(
        "params",
        workload=workload_fingerprint(source, category, seed),
        machine=machine_fingerprint(machine),
    )


def _method_part(method: str) -> dict[str, Any]:
    """Extra key fields for a non-default optimization method.

    MILP backends all return the same proven optimum, so they share one
    identity (and the solver backend/budget stay execution hints).  The
    ``continuous`` method returns a *different* deterministic schedule —
    the continuous round-up — so its artifacts must live under their own
    keys.  The default contributes nothing, keeping existing MILP keys
    byte-stable.
    """
    return {} if method == "milp" else {"method": method}


def schedule_key(source: str, category: str | None, seed: int,
                 machine: Machine, deadline_frac: float,
                 method: str = "milp") -> str:
    """Key for an optimized schedule (plus solver stats) at one deadline."""
    return artifact_key(
        "schedule",
        workload=workload_fingerprint(source, category, seed),
        machine=machine_fingerprint(machine),
        deadline_frac=deadline_frac,
        **_method_part(method),
    )


def run_summary_key(source: str, category: str | None, seed: int,
                    machine: Machine, deadline_frac: float,
                    method: str = "milp") -> str:
    """Key for the simulated execution of a schedule."""
    return artifact_key(
        "run-summary",
        workload=workload_fingerprint(source, category, seed),
        machine=machine_fingerprint(machine),
        deadline_frac=deadline_frac,
        **_method_part(method),
    )


def taskgraph_tables_key(graph_fingerprint: dict[str, Any],
                         machine: Machine) -> str:
    """Key for a task graph's per-task per-mode tables.

    ``graph_fingerprint`` is :func:`repro.taskgraph.model.graph_fingerprint`
    output — kernel-backed nodes carry source digests, so editing a
    kernel invalidates the tables exactly like ``profile_key`` does.
    Tables are core-count independent (they describe tasks, not lanes).
    """
    return artifact_key(
        "tg-tables",
        graph=graph_fingerprint,
        machine=machine_fingerprint(machine),
    )


def taskgraph_solve_key(graph_fingerprint: dict[str, Any], machine: Machine,
                        cores: int, deadline_frac: float) -> str:
    """Key for a solved taskgraph schedule at one (cores, deadline).

    The solver budget and backend are execution knobs (anytime solving
    may degrade, and degraded outputs are never cached), so — like the
    single-stream ``schedule_key`` — they are not part of the identity.
    """
    return artifact_key(
        "tg-solve",
        graph=graph_fingerprint,
        machine=machine_fingerprint(machine),
        cores=cores,
        deadline_frac=deadline_frac,
    )


def taskgraph_run_key(graph_fingerprint: dict[str, Any], machine: Machine,
                      cores: int, deadline_frac: float) -> str:
    """Key for the replayed execution of a taskgraph schedule."""
    return artifact_key(
        "tg-run",
        graph=graph_fingerprint,
        machine=machine_fingerprint(machine),
        cores=cores,
        deadline_frac=deadline_frac,
    )
