"""Content-addressed on-disk artifact store.

Layout::

    <root>/
      ab/
        ab3f...e1.json        # one JSON document per artifact
      quarantine/
        ab3f...e1.json        # corrupt documents, moved aside on read

Each document wraps its payload with the key it was stored under, the
store format version and a SHA-256 digest of the payload's canonical
JSON form, so a document moved, truncated or bit-flipped on disk is
detected on read — and **quarantined** (moved to ``quarantine/``) rather
than raised or silently served.  The next producer then recomputes and
rewrites the entry: corruption self-heals at the cost of one recompute.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
concurrent workers — the sweep executor runs many — can race on the same
key and the store still ends up with exactly one intact document.

:func:`verify_store` audits every document (``repro cache verify``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import observe
from repro.errors import CacheError
from repro.resilience import faultplane

logger = logging.getLogger("repro.cache")

#: Version of the on-disk envelope (not of the payloads inside it).
#: v2 added the embedded payload digest.
STORE_FORMAT = 2

#: Directory (under the store root) holding quarantined documents.
QUARANTINE_DIR = "quarantine"


def payload_digest(payload: Any) -> str:
    """SHA-256 over the payload's canonical JSON form."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

#: Environment variable naming the default store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback store root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheStats:
    """Hit/miss accounting for one store handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # corrupt/mismatched documents treated as misses
    quarantined: int = 0  # invalid documents moved to quarantine/

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "quarantined": self.quarantined}


@dataclass
class ArtifactStore:
    """A directory of content-addressed JSON artifacts.

    Args:
        root: store directory; created lazily on first write.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # -- addressing -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (sharded by the first two hex chars)."""
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- read/write -------------------------------------------------------------

    def _quarantine(self, path: Path) -> bool:
        """Move a corrupt document aside; fall back to deleting it.

        Either way the poisoned entry never crosses a ``get()`` again.
        """
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                return False
        self.stats.quarantined += 1
        observe.add("cache.artifact.quarantined")
        logger.warning("quarantined corrupt artifact %s", path.name)
        return True

    def _inspect(self, path: Path, key: str) -> tuple[dict[str, Any] | None, str | None]:
        """(payload, problem) for one on-disk document.

        Exactly one side is None: a readable, digest-intact document
        yields its payload; anything else yields a problem description.
        """
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            return None, f"unreadable document: {type(error).__name__}: {error}"
        if not isinstance(document, dict):
            return None, "document is not a JSON object"
        if document.get("format") != STORE_FORMAT:
            return None, f"envelope format {document.get('format')!r} != {STORE_FORMAT}"
        if document.get("key") != key:
            return None, f"embedded key {str(document.get('key'))[:12]}… != file key"
        if "payload" not in document:
            return None, "document has no payload"
        expected = document.get("digest")
        try:
            actual = payload_digest(document["payload"])
        except (TypeError, ValueError) as error:
            return None, f"payload not hashable: {error}"
        if expected != actual:
            return None, f"payload digest mismatch (stored {str(expected)[:12]}…)"
        return document["payload"], None

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload stored under ``key``, or None (counted as a miss).

        A document that fails to parse, whose envelope does not match the
        key, or whose embedded payload digest does not verify is a miss,
        never an exception — a half-written, truncated or bit-flipped
        file must not take down a sweep.  Such documents are moved to
        ``quarantine/`` so the next ``put`` self-heals the entry and a
        postmortem can still inspect the bytes.
        """
        path = self.path_for(key)
        faultplane.stall("io.slow")
        if path.is_file() and faultplane.fire("cache.read.corrupt"):
            # Genuinely damage the on-disk bytes so the real quarantine
            # and self-heal machinery below is what absorbs the fault.
            faultplane.damage_file(path)
        try:
            payload, problem = self._inspect(path, key)
        except FileNotFoundError:
            self.stats.misses += 1
            observe.add("cache.artifact.misses")
            return None
        if problem is not None:
            self.stats.misses += 1
            self.stats.invalid += 1
            observe.add("cache.artifact.misses")
            observe.add("cache.artifact.invalid")
            logger.warning("invalid artifact %s…: %s", key[:12], problem)
            self._quarantine(path)
            return None
        self.stats.hits += 1
        observe.add("cache.artifact.hits")
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns its path."""
        path = self.path_for(key)
        document = {"format": STORE_FORMAT, "key": key,
                    "digest": payload_digest(payload), "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise CacheError(f"cannot write artifact {key[:12]}…: {error}") from error
        faultplane.stall("io.slow")
        if faultplane.fire("cache.write.torn"):
            # Tear the freshly landed document; the next get() quarantines
            # it and the producer recomputes — the self-heal contract.
            faultplane.damage_file(path)
        self.stats.writes += 1
        observe.add("cache.artifact.writes")
        return path

    def contains(self, key: str) -> bool:
        """True when an intact document exists (does not touch stats)."""
        path = self.path_for(key)
        return path.is_file()

    # -- maintenance ------------------------------------------------------------

    def clear(self) -> int:
        """Delete every artifact (incl. quarantine); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def iter_entries(self):
        """Yield (key, path) for every stored document (not quarantine)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == QUARANTINE_DIR:
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem, entry

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())


@dataclass
class StoreAudit:
    """Outcome of :func:`verify_store` (``repro cache verify``)."""

    root: Path
    scanned: int = 0
    intact: int = 0
    quarantined: int = 0
    problems: list[tuple[str, str]] = field(default_factory=list)  # (key, why)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def summary(self) -> str:
        if self.ok:
            return f"cache ok: {self.intact}/{self.scanned} documents intact ({self.root})"
        return (f"cache DEGRADED: {len(self.problems)} of {self.scanned} documents "
                f"corrupt, {self.quarantined} quarantined ({self.root})")


def verify_store(store: ArtifactStore, quarantine: bool = True) -> StoreAudit:
    """Audit every document in a store; optionally quarantine corruption.

    Unlike :meth:`ArtifactStore.get` this walks the whole store, so it
    also catches corruption in entries the current workload would never
    read.  Misplaced files (name that is not a plausible key) count as
    problems too.
    """
    audit = StoreAudit(root=store.root)
    for key, path in store.iter_entries():
        audit.scanned += 1
        try:
            store.path_for(key)
        except CacheError:
            audit.problems.append((key, "file name is not a valid artifact key"))
            if quarantine and store._quarantine(path):
                audit.quarantined += 1
            continue
        try:
            _, problem = store._inspect(path, key)
        except FileNotFoundError:  # pragma: no cover - raced with a writer
            continue
        if problem is None:
            audit.intact += 1
            continue
        audit.problems.append((key, problem))
        if quarantine and store._quarantine(path):
            audit.quarantined += 1
    return audit


def default_store(root: str | Path | None = None) -> ArtifactStore:
    """The store at ``root``, ``$REPRO_CACHE_DIR``, or ``.repro-cache``."""
    if root is None:
        root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    return ArtifactStore(root)
