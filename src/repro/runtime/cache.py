"""Content-addressed on-disk artifact store.

Layout::

    <root>/
      ab/
        ab3f...e1.json        # one JSON document per artifact

Each document wraps its payload with the key it was stored under and the
store format version, so a document moved or corrupted on disk is
detected on read (and treated as a miss) instead of silently feeding a
wrong artifact into an experiment.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
concurrent workers — the sweep executor runs many — can race on the same
key and the store still ends up with exactly one intact document.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CacheError

#: Version of the on-disk envelope (not of the payloads inside it).
STORE_FORMAT = 1

#: Environment variable naming the default store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback store root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheStats:
    """Hit/miss accounting for one store handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # corrupt/mismatched documents treated as misses

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid}


@dataclass
class ArtifactStore:
    """A directory of content-addressed JSON artifacts.

    Args:
        root: store directory; created lazily on first write.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # -- addressing -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (sharded by the first two hex chars)."""
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- read/write -------------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload stored under ``key``, or None (counted as a miss).

        A document that fails to parse or whose envelope does not match
        the key is a miss, never an exception: a half-written or stale
        file must not take down a sweep.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            self.stats.invalid += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != STORE_FORMAT
            or document.get("key") != key
            or "payload" not in document
        ):
            self.stats.misses += 1
            self.stats.invalid += 1
            return None
        self.stats.hits += 1
        return document["payload"]

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns its path."""
        path = self.path_for(key)
        document = {"format": STORE_FORMAT, "key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise CacheError(f"cannot write artifact {key[:12]}…: {error}") from error
        self.stats.writes += 1
        return path

    def contains(self, key: str) -> bool:
        """True when an intact document exists (does not touch stats)."""
        path = self.path_for(key)
        return path.is_file()

    # -- maintenance ------------------------------------------------------------

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


def default_store(root: str | Path | None = None) -> ArtifactStore:
    """The store at ``root``, ``$REPRO_CACHE_DIR``, or ``.repro-cache``."""
    if root is None:
        root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    return ArtifactStore(root)
