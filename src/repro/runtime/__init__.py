"""Experiment orchestration: parallel sweeps with artifact memoization.

The paper's evaluation is a cross-product — benchmarks × input
categories × deadlines × mode tables — of experiments that are
individually expensive (one simulation per mode just to profile) and
mutually independent.  This package turns that shape into throughput:

* :mod:`repro.runtime.dag` — each grid point is a small task DAG
  (``compile -> profile -> params/bound -> optimize -> simulate ->
  verify``); sweeps merge DAGs and deduplicate shared stages.
* :mod:`repro.runtime.executor` — a ``ProcessPoolExecutor`` scheduler
  with per-task timeouts, bounded retries with backoff, fault injection
  and graceful degradation (one failed grid point never stops a sweep).
* :mod:`repro.runtime.hashing` / :mod:`repro.runtime.cache` — expensive
  artifacts (profiles, MILP schedules, simulated runs) are memoized in
  a content-addressed on-disk store keyed by source text, inputs,
  machine configuration and format version; the CLI and the benchmark
  suite share the same entries.
* :mod:`repro.runtime.manifest` — every run emits an operational JSONL
  manifest (timings, cache traffic, retries, solver stats) plus a
  deterministic ``results.jsonl`` that is byte-identical across job
  counts and cache states.
* :mod:`repro.runtime.sweep` — the grid driver behind ``repro sweep``.

Quickstart::

    from repro.runtime import SweepConfig, run_sweep

    report = run_sweep(SweepConfig(
        workloads=("adpcm", "gsm"),
        deadline_fracs=(0.35, 0.7),
        jobs=4,
        cache_dir=".repro-cache",
        output_dir="sweep-results",
    ))
    assert report.ok, report.failures
"""

from repro.runtime.cache import ArtifactStore, CacheStats, default_store
from repro.runtime.dag import (
    ExperimentSpec,
    MachineSpec,
    Task,
    TaskGraph,
    build_task_graph,
    execute_task,
)
from repro.runtime.executor import (
    ExecutorConfig,
    FaultSpec,
    TaskResult,
    run_graph,
)
from repro.runtime.hashing import (
    artifact_key,
    canonical_json,
    machine_fingerprint,
    profile_key,
    run_summary_key,
    schedule_key,
    stable_hash,
    workload_fingerprint,
)
from repro.runtime.sweep import SweepConfig, SweepReport, build_grid, run_sweep

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "ExecutorConfig",
    "ExperimentSpec",
    "FaultSpec",
    "MachineSpec",
    "SweepConfig",
    "SweepReport",
    "Task",
    "TaskGraph",
    "TaskResult",
    "artifact_key",
    "build_grid",
    "build_task_graph",
    "canonical_json",
    "default_store",
    "execute_task",
    "machine_fingerprint",
    "profile_key",
    "run_graph",
    "run_summary_key",
    "run_sweep",
    "schedule_key",
    "stable_hash",
    "workload_fingerprint",
]
