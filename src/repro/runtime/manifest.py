"""JSONL manifests and deterministic result records for sweeps.

A sweep emits two files:

* ``manifest.jsonl`` — the *operational* log: a header describing the
  run, one record per task (status, wall time, cache hit/miss, attempt
  count, solver stats) and a summary footer with aggregate counters.
  Wall-clock fields make this file inherently timing-dependent.
* ``results.jsonl`` — the *scientific* record: one line per experiment,
  sorted by experiment id, holding only run-invariant quantities
  (deadlines, predicted/measured energies, verification verdicts, cache
  keys).  Two sweeps over the same grid produce **byte-identical**
  results files regardless of ``--jobs``, cache temperature or machine
  load — this is the file the determinism tests diff.

Records are JSON with sorted keys and fixed separators so byte equality
is meaningful.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.runtime.dag import ExperimentSpec, TaskGraph
from repro.runtime.executor import TaskResult

#: Fields of a task record that vary run to run; scrub these before
#: comparing manifests across runs.  Under a solver budget the fallback
#: tier and optimality gap depend on wall-clock luck, so they live here
#: (and in the manifest) — never in ``results.jsonl``.
TIMING_FIELDS = ("wall_time_s", "solver_time_s", "fallback_tier",
                 "optimality_gap", "degraded", "solver_method")


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def task_record(result: TaskResult) -> dict[str, Any]:
    """Manifest line for one finished task."""
    record: dict[str, Any] = {
        "type": "task",
        "task": result.task_id,
        "kind": result.kind,
        "status": result.status,
        "cache": result.cache,
        "attempts": result.attempts,
        "retries": max(0, result.attempts - 1),
        "wall_time_s": result.wall_time_s,
        "experiments": sorted(result.experiments),
    }
    if result.error is not None:
        record["error"] = result.error
        record["error_type"] = result.error_type
    if result.warnings:
        record["warnings"] = list(result.warnings)
    if result.kind == "optimize" and result.output is not None:
        solver = result.output.get("solver", {})
        record["solver_status"] = solver.get("status")
        record["solver_time_s"] = solver.get("solve_time_s")
        record["num_independent_edges"] = solver.get("num_independent_edges")
        if "fallback_tier" in solver:
            record["fallback_tier"] = solver.get("fallback_tier")
            record["optimality_gap"] = solver.get("optimality_gap")
            record["degraded"] = solver.get("degraded")
    if result.kind == "tg-solve" and result.output is not None:
        solver = result.output.get("solver", {})
        record["solver_status"] = solver.get("status")
        record["solver_time_s"] = solver.get("solve_time_s")
        record["solver_method"] = solver.get("method")
        record["degraded"] = solver.get("degraded")
    return record


def summary_record(results: dict[str, TaskResult],
                   wall_time_s: float | None = None) -> dict[str, Any]:
    """Aggregate footer: task statuses and cache traffic."""
    statuses = {"ok": 0, "failed": 0, "skipped": 0}
    cache = {"hit": 0, "miss": 0, "off": 0, "journal": 0}
    retries = 0
    for result in results.values():
        statuses[result.status] = statuses.get(result.status, 0) + 1
        cache[result.cache] = cache.get(result.cache, 0) + 1
        retries += max(0, result.attempts - 1)
    record: dict[str, Any] = {
        "type": "summary",
        "tasks": len(results),
        "statuses": statuses,
        "cache": cache,
        "retries": retries,
    }
    if wall_time_s is not None:
        record["wall_time_s"] = wall_time_s
    return record


def write_manifest(
    path: str | Path,
    run_info: dict[str, Any],
    results: dict[str, TaskResult],
    wall_time_s: float | None = None,
) -> Path:
    """Write header + per-task records (sorted by task id) + summary."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_dump({"type": "header", **run_info})]
    for task_id in sorted(results):
        lines.append(_dump(task_record(results[task_id])))
    lines.append(_dump(summary_record(results, wall_time_s)))
    path.write_text("\n".join(lines) + "\n")
    return path


def experiment_record(
    spec: ExperimentSpec,
    graph: TaskGraph,
    results: dict[str, TaskResult],
) -> dict[str, Any]:
    """Deterministic per-experiment result line.

    Every field here must be a pure function of the grid point — never
    of scheduling order, cache temperature or wall-clock time.
    """
    if getattr(spec, "family", None) == "taskgraph":
        from repro.taskgraph.pipeline import tg_experiment_record

        return tg_experiment_record(spec, graph, results)
    eid = spec.experiment_id
    by_kind: dict[str, TaskResult] = {}
    missing: list[str] = []
    for task in graph.tasks_for_experiment(eid):
        result = results.get(task.task_id)
        if result is None:
            missing.append(task.kind)  # interrupted run: task never ran
        else:
            by_kind[task.kind] = result

    record: dict[str, Any] = {
        "type": "experiment",
        "experiment": eid,
        "workload": spec.workload,
        "category": spec.category or "default",
        "seed": spec.seed,
        "mode_table": spec.machine.table_tag,
        "capacitance_uf": spec.machine.capacitance_uf,
        "deadline_frac": spec.deadline_frac,
        "tasks": {
            kind: result.status for kind, result in sorted(by_kind.items())
        },
        "cache_keys": {
            task.kind: task.cache_key
            for task in sorted(graph.tasks_for_experiment(eid),
                               key=lambda t: t.task_id)
            if task.cache_key is not None
        },
    }

    if missing:
        record["status"] = "incomplete"
        record["missing"] = sorted(missing)
        return record

    failures = {
        kind: {"error_type": r.error_type, "error": r.error}
        for kind, r in sorted(by_kind.items())
        if r.status != "ok"
    }
    if failures:
        record["status"] = "failed"
        record["failures"] = failures
        return record

    bound = by_kind["bound"].output
    optimize = by_kind["optimize"].output
    run = by_kind["simulate"].output["run"]
    verify = by_kind["verify"].output
    record.update({
        "status": "ok" if verify["ok"] else "verify_failed",
        "deadline_s": optimize["deadline_s"],
        "savings_bound": bound["savings_bound"],
        # .get: journals written before the continuous engine lack these.
        "continuous_energy_nj": bound.get("continuous_energy_nj"),
        "continuous_savings_bound": bound.get("continuous_savings_bound"),
        "predicted_energy_nj": optimize["predicted_energy_nj"],
        "predicted_time_s": optimize["predicted_time_s"],
        "measured_energy_nj": run["cpu_energy_nj"],
        "measured_time_s": run["wall_time_s"],
        "mode_transitions": run["mode_transitions"],
        "return_value": run["return_value"],
        "verified": verify["ok"],
        "checks": verify["checks"],
        "baseline_mode": verify["baseline_mode"],
        "baseline_energy_nj": verify["baseline_energy_nj"],
        "savings_vs_single_mode": verify["savings_vs_single_mode"],
    })
    return record


def write_results(
    path: str | Path,
    graph: TaskGraph,
    results: dict[str, TaskResult],
) -> Path:
    """Write the deterministic per-experiment records, sorted by id."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    specs = sorted(graph.experiments, key=lambda s: s.experiment_id)
    lines = [_dump(experiment_record(spec, graph, results)) for spec in specs]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Parse a JSONL file lazily."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def scrub_timings(record: dict[str, Any]) -> dict[str, Any]:
    """Copy of a manifest record with run-varying fields removed."""
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}
