"""Experiment task DAGs.

One grid point of the paper's evaluation — (workload, input category,
seed, mode table, deadline fraction) — is an :class:`ExperimentSpec`,
and runs as a six-stage pipeline mirroring the paper's Figure 13 flow::

    compile ──> profile ──┬─> params ──> bound
                          ├─────────────> optimize ──> simulate ──┐
                          └───────────────────────────────────────┴─> verify

:func:`build_task_graph` merges the pipelines of a whole sweep into one
DAG, **deduplicating shared stages**: every experiment on ``gsm`` with
the same inputs and machine shares a single ``profile`` task, so a
4-deadline sweep profiles each workload once, not four times.  Task ids
double as single-flight locks — the executor runs each id exactly once
per sweep regardless of how many experiments depend on it.

Tasks carry JSON-only payloads (specs in, artifact dicts out) so they
cross process boundaries and land in the content-addressed store
unchanged.  :func:`execute_task` is the single worker entry point that
maps a task kind to its computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import DVSOptimizer
from repro.core.analytical import savings_ratio_discrete
from repro.core.continuous import continuous_bound
from repro.errors import OrchestrationError, ScheduleError
from repro.profiling import extract_params
from repro.profiling.serialize import (
    profile_from_dict,
    profile_to_dict,
    run_summary_from_dict,
    run_summary_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.runtime import hashing
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import make_mode_table
from repro.verify import tolerances
from repro.workloads import compile_workload, get_workload

#: Pipeline stages in dependency order.
TASK_KINDS = ("compile", "profile", "params", "bound", "optimize", "simulate", "verify")


@dataclass(frozen=True)
class MachineSpec:
    """A JSON-representable machine description (mirrors the CLI flags)."""

    levels: int | None = None  # None -> the paper's XScale-3 table
    capacitance_uf: float = 10.0
    # The fast path is bit-exact, so this is an execution knob, not part
    # of the machine's observable identity: it must never enter cache
    # keys, experiment ids or results.jsonl records.
    fastpath: bool = True

    def build(self) -> Machine:
        table = XSCALE_3 if self.levels is None else make_mode_table(self.levels)
        return Machine(
            SCALE_CONFIG,
            table,
            TransitionCostModel(capacitance_f=self.capacitance_uf * 1e-6),
            fastpath=self.fastpath,
        )

    @property
    def table_tag(self) -> str:
        return "xscale-3" if self.levels is None else f"alpha-{self.levels}"


@dataclass(frozen=True)
class ExperimentSpec:
    """One grid point of a sweep."""

    workload: str
    deadline_frac: float
    category: str | None = None
    seed: int = 0
    machine: MachineSpec = field(default_factory=MachineSpec)

    def resolved_category(self) -> str:
        """The concrete input category (a workload's first when unset),
        so explicit-default and implicit-default grid points share cache
        entries and ids."""
        return self.category or get_workload(self.workload).categories[0]

    @property
    def shared_id(self) -> str:
        """Identity of the (program, input, machine) triple — the part
        shared by every deadline fraction swept over it."""
        return (f"{self.workload}.{self.resolved_category()}.s{self.seed}"
                f".{self.machine.table_tag}.c{self.machine.capacitance_uf:g}")

    @property
    def experiment_id(self) -> str:
        return f"{self.shared_id}.d{self.deadline_frac:.3f}"

    def payload(self) -> dict[str, Any]:
        """JSON-compatible worker payload."""
        return {
            "workload": self.workload,
            "category": self.resolved_category(),
            "seed": self.seed,
            "levels": self.machine.levels,
            "capacitance_uf": self.machine.capacitance_uf,
            "deadline_frac": self.deadline_frac,
            "fastpath": self.machine.fastpath,
        }


@dataclass
class Task:
    """One node of the sweep DAG."""

    task_id: str
    kind: str
    spec: dict[str, Any]
    deps: tuple[str, ...] = ()
    cache_key: str | None = None  # None -> never memoized
    experiments: tuple[str, ...] = ()  # experiment ids needing this task


@dataclass
class TaskGraph:
    """A validated DAG of tasks plus the experiments they serve."""

    tasks: dict[str, Task]
    experiments: list[ExperimentSpec]

    def validate(self) -> None:
        """Reject dangling dependencies and cycles."""
        for task in self.tasks.values():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise OrchestrationError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
        self.topo_order()

    def topo_order(self) -> list[str]:
        """Kahn topological order; raises on cycles."""
        indegree = {tid: len(task.deps) for tid, task in self.tasks.items()}
        dependents: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        for task in self.tasks.values():
            for dep in task.deps:
                dependents[dep].append(task.task_id)
        ready = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            tid = ready.pop(0)
            order.append(tid)
            newly = []
            for succ in dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    newly.append(succ)
            # Sorted insertion keeps the order deterministic for any
            # completion pattern, which keeps manifests reproducible.
            ready = sorted(ready + newly)
        if len(order) != len(self.tasks):
            cyclic = sorted(set(self.tasks) - set(order))
            raise OrchestrationError(f"task graph has a cycle through {cyclic}")
        return order

    def tasks_for_experiment(self, experiment_id: str) -> list[Task]:
        return [t for t in self.tasks.values() if experiment_id in t.experiments]


def build_task_graph(
    experiments: list[ExperimentSpec],
    solver_budget_s: float | None = None,
    solver_backend: str = "auto",
    continuous_prune: bool = False,
) -> TaskGraph:
    """Merge per-experiment pipelines into one deduplicated DAG.

    Args:
        experiments: the grid points to run.
        solver_budget_s: optional wall-clock budget for each ``optimize``
            task (anytime solving with fallback tiers).  Cache keys are
            unchanged: a budgeted solve that still proves optimality is
            the same artifact as an unbudgeted one, and degraded solves
            are never cached (``_cacheable``).
        solver_backend: MILP backend for ``optimize`` tasks ("auto",
            "scipy", "native").  Like ``solver_budget_s`` (and the
            fastpath knob), an execution hint excluded from cache keys:
            every backend must produce the identical optimum, and the
            certificate/replay checks enforce that.  The "continuous"
            backend is the exception — it returns a different
            (round-up) schedule by design, so its optimize/simulate
            artifacts are keyed under ``method="continuous"``.
        continuous_prune: warm-start the native branch and bound with
            the continuous round-up incumbent.  An execution hint: the
            pruner may only skip work, never change the answer (enforced
            by the fuzz battery), so cache keys are unchanged.
    """
    if not experiments:
        raise OrchestrationError("sweep grid is empty")
    # The taskgraph family builds its own pipelines; mixed grids merge
    # both DAGs (task ids are disjoint by construction: tg-* prefixes).
    tg_specs = [e for e in experiments
                if getattr(e, "family", None) == "taskgraph"]
    if tg_specs:
        from repro.taskgraph.pipeline import build_tg_task_graph

        tg_graph = build_tg_task_graph(tg_specs,
                                       solver_budget_s=solver_budget_s,
                                       solver_backend=solver_backend)
        rest = [e for e in experiments
                if getattr(e, "family", None) != "taskgraph"]
        if not rest:
            return tg_graph
        merged = build_task_graph(rest, solver_budget_s=solver_budget_s,
                                  solver_backend=solver_backend,
                                  continuous_prune=continuous_prune)
        merged.tasks.update(tg_graph.tasks)
        merged.experiments.extend(tg_graph.experiments)
        merged.validate()
        return merged
    seen_ids = set()
    for exp in experiments:
        if exp.experiment_id in seen_ids:
            raise OrchestrationError(
                f"duplicate grid point {exp.experiment_id!r}"
            )
        seen_ids.add(exp.experiment_id)

    tasks: dict[str, Task] = {}

    def ensure(task_id: str, kind: str, spec: dict[str, Any],
               deps: tuple[str, ...], cache_key: str | None,
               experiment_id: str) -> str:
        task = tasks.get(task_id)
        if task is None:
            tasks[task_id] = Task(task_id=task_id, kind=kind, spec=spec,
                                  deps=deps, cache_key=cache_key,
                                  experiments=(experiment_id,))
        elif experiment_id not in task.experiments:
            task.experiments += (experiment_id,)
        return task_id

    for exp in experiments:
        eid = exp.experiment_id
        spec = exp.payload()
        source = get_workload(exp.workload).source
        machine = exp.machine.build()
        category, seed, frac = exp.resolved_category(), exp.seed, exp.deadline_frac

        compile_id = ensure(
            f"compile:{exp.workload}", "compile", spec, (), None, eid)
        profile_id = ensure(
            f"profile:{exp.shared_id}", "profile", spec, (compile_id,),
            hashing.profile_key(source, category, seed, machine), eid)
        params_id = ensure(
            f"params:{exp.shared_id}", "params", spec, (compile_id,),
            hashing.params_key(source, category, seed, machine), eid)
        ensure(
            f"bound:{eid}", "bound", spec, (profile_id, params_id), None, eid)
        opt_spec = dict(spec)
        if solver_budget_s is not None:
            opt_spec["solver_budget_s"] = solver_budget_s
        if solver_backend != "auto":
            opt_spec["solver_backend"] = solver_backend
        if continuous_prune:
            opt_spec["continuous_prune"] = True
        if opt_spec == spec:
            opt_spec = spec
        method = "continuous" if solver_backend == "continuous" else "milp"
        optimize_id = ensure(
            f"optimize:{eid}", "optimize", opt_spec, (profile_id,),
            hashing.schedule_key(source, category, seed, machine, frac,
                                 method=method), eid)
        simulate_id = ensure(
            f"simulate:{eid}", "simulate", spec, (optimize_id,),
            hashing.run_summary_key(source, category, seed, machine, frac,
                                    method=method), eid)
        ensure(
            f"verify:{eid}", "verify", spec,
            (profile_id, optimize_id, simulate_id), None, eid)

    graph = TaskGraph(tasks=tasks, experiments=list(experiments))
    graph.validate()
    return graph


# -- task computations (run inside worker processes) ------------------------------


def _context(spec: dict[str, Any]):
    workload = get_workload(spec["workload"])
    cfg = compile_workload(spec["workload"])
    machine = MachineSpec(spec["levels"], spec["capacitance_uf"],
                          spec.get("fastpath", True)).build()
    inputs = workload.inputs(category=spec["category"], seed=spec["seed"])
    return workload, cfg, machine, inputs, workload.registers()


def _task_compile(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    cfg = compile_workload(spec["workload"])
    return {
        "workload": spec["workload"],
        "num_blocks": len(cfg.blocks),
        "num_instructions": sum(len(b.instructions) for b in cfg.blocks.values()),
    }


def _task_profile(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    _, cfg, machine, inputs, registers = _context(spec)
    profile = DVSOptimizer(machine).profile(cfg, inputs=inputs, registers=registers)
    return {"profile": profile_to_dict(profile)}


def _task_params(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    _, cfg, machine, inputs, registers = _context(spec)
    params = extract_params(machine, cfg, inputs=inputs, registers=registers)
    return {
        "params": {
            "n_overlap": params.n_overlap,
            "n_dependent": params.n_dependent,
            "n_cache": params.n_cache,
            "t_invariant_s": params.t_invariant_s,
            "name": params.name,
        }
    }


def _task_bound(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    from repro.core.analytical import ProgramParams

    profile = profile_from_dict(deps["profile"]["profile"])
    machine = MachineSpec(spec["levels"], spec["capacitance_uf"],
                          spec.get("fastpath", True)).build()
    params = ProgramParams(**deps["params"]["params"])
    deadline = profile.deadline_at(spec["deadline_frac"])
    bound = savings_ratio_discrete(params, deadline, machine.mode_table)
    # The achievable-optimum counterpart: energy of the exact continuous
    # schedule (Li-Yao-Yuan) and its savings against the best single
    # mode, the paper's Section 3 "opportunity" restated on profiled
    # numbers.  Absent (None) when the deadline or profile is outside
    # the engine's regime — an absence, never a crash.
    continuous_energy = continuous_savings = None
    try:
        cont = continuous_bound(profile, machine.mode_table, deadline)
        continuous_energy = float(cont.energy_nj)
        _, baseline = DVSOptimizer(machine).best_single_mode(profile, deadline)
        if baseline > 0:
            continuous_savings = float(1.0 - cont.energy_nj / baseline)
    except ScheduleError:
        pass
    return {
        "deadline_s": deadline,
        # nan (infeasible) is not JSON; record the absence explicitly.
        "savings_bound": None if bound != bound else bound,
        "continuous_energy_nj": continuous_energy,
        "continuous_savings_bound": continuous_savings,
    }


def _task_optimize(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    _, cfg, machine, _, _ = _context(spec)
    profile = profile_from_dict(deps["profile"]["profile"])
    deadline = profile.deadline_at(spec["deadline_frac"])
    # Consecutive deadlines of the same (program, input, machine) triple
    # share a warm-start key: the native solver hands the optimal basis
    # and branching pseudocosts from one deadline to the next through
    # the per-process registry.  Ephemeral execution state — never
    # cached, never serialized.
    table_tag = ("xscale-3" if spec["levels"] is None
                 else f"alpha-{spec['levels']}")
    warm_key = (f"{spec['workload']}.{spec['category']}.s{spec['seed']}"
                f".{table_tag}.c{spec['capacitance_uf']:g}")
    solver_options: dict[str, Any] = {"warm_key": warm_key}
    if spec.get("continuous_prune"):
        solver_options["continuous_prune"] = True
    backend = spec.get("solver_backend", "auto")
    optimizer = DVSOptimizer(
        machine,
        backend=backend,
        solver_options=solver_options,
    )
    outcome = optimizer.optimize(
        cfg, deadline, profile=profile, budget_s=spec.get("solver_budget_s")
    )
    # The continuous method is FEASIBLE by contract (a round-up, not a
    # proven optimum) yet fully deterministic, so when it was *asked for*
    # its output is neither degraded nor uncacheable — a starved MILP
    # falling back to the continuous tier, by contrast, is both.
    continuous_requested = (backend == "continuous"
                            and outcome.fallback_tier == "continuous")
    degraded = not outcome.solution.ok and not continuous_requested
    return {
        "schedule": schedule_to_dict(outcome.schedule),
        "deadline_s": deadline,
        # float() strips numpy scalars: the native solver path hands back
        # np.float64 and journal/cache digests require pure-JSON payloads.
        "predicted_energy_nj": float(outcome.predicted_energy_nj),
        "predicted_time_s": float(outcome.predicted_time_s),
        # A fallback schedule from a starved solver is feasible and
        # certified, but must not be memoized as if it were the optimum.
        "_cacheable": not degraded,
        "solver": {
            "status": outcome.solution.status.value,
            "solve_time_s": outcome.solve_time_s,
            "num_independent_edges": outcome.num_independent_edges,
            "num_assignments": len(outcome.schedule.assignment),
            "fallback_tier": outcome.fallback_tier,
            "optimality_gap": outcome.optimality_gap,
            "degraded": degraded,
        },
    }


def _task_simulate(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    _, cfg, machine, inputs, registers = _context(spec)
    schedule = schedule_from_dict(deps["optimize"]["schedule"])
    run = DVSOptimizer(machine).verify(cfg, schedule, inputs=inputs, registers=registers)
    return {"run": run_summary_to_dict(run)}


def _task_verify(spec: dict[str, Any], deps: dict[str, Any]) -> dict[str, Any]:
    profile = profile_from_dict(deps["profile"]["profile"])
    machine = MachineSpec(spec["levels"], spec["capacitance_uf"],
                          spec.get("fastpath", True)).build()
    optimize = deps["optimize"]
    run = run_summary_from_dict(deps["simulate"]["run"])
    deadline = optimize["deadline_s"]

    checks: dict[str, bool] = {}
    checks["deadline_met"] = (
        run["wall_time_s"] <= deadline * (1 + tolerances.DEADLINE_REL_SLACK)
    )
    energy_err = float(
        abs(run["cpu_energy_nj"] - optimize["predicted_energy_nj"])
        / max(1.0, optimize["predicted_energy_nj"])
    )
    checks["energy_predicted"] = (
        energy_err <= tolerances.ENERGY_PREDICTION_REL_TOL
    )
    checks["result_preserved"] = run["return_value"] == profile.return_value

    baseline_mode = baseline_energy = savings = None
    try:
        baseline_mode, baseline_energy = DVSOptimizer(machine).best_single_mode(
            profile, deadline
        )
        if baseline_energy > 0:
            savings = 1.0 - run["cpu_energy_nj"] / baseline_energy
    except ScheduleError:
        pass  # deadline below the fastest single mode: no baseline exists

    return {
        "ok": all(checks.values()),
        "checks": checks,
        "energy_prediction_rel_err": energy_err,
        "baseline_mode": baseline_mode,
        "baseline_energy_nj": baseline_energy,
        "savings_vs_single_mode": savings,
    }


_TASK_FNS: dict[str, Callable[[dict[str, Any], dict[str, Any]], dict[str, Any]]] = {
    "compile": _task_compile,
    "profile": _task_profile,
    "params": _task_params,
    "bound": _task_bound,
    "optimize": _task_optimize,
    "simulate": _task_simulate,
    "verify": _task_verify,
}


def execute_task(kind: str, spec: dict[str, Any],
                 deps: dict[str, Any]) -> dict[str, Any]:
    """Run one task kind; ``deps`` maps dep *kind* to its output dict."""
    if kind.startswith("tg-"):
        from repro.taskgraph.pipeline import execute_tg_task

        return execute_tg_task(kind, spec, deps)
    try:
        fn = _TASK_FNS[kind]
    except KeyError:
        raise OrchestrationError(f"unknown task kind {kind!r}") from None
    return fn(spec, deps)
