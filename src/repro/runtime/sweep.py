"""Grid sweeps: suite × deadline fraction × mode-table level count.

:func:`build_grid` expands a :class:`SweepConfig` into the cross-product
of experiment specs; :func:`run_sweep` builds the merged task DAG, runs
it through the parallel executor against the artifact store, and writes
the manifest/results pair.  This is the engine behind ``repro sweep``
and the scaling path for evaluations far larger than the paper's.
"""

from __future__ import annotations

import logging
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import observe
from repro.errors import OrchestrationError, ReproError
from repro.resilience.journal import SweepJournal, run_fingerprint
from repro.runtime import manifest as manifest_mod
from repro.runtime.cache import ArtifactStore
from repro.runtime.dag import (
    ExperimentSpec,
    MachineSpec,
    TaskGraph,
    build_task_graph,
)
from repro.runtime.executor import ExecutorConfig, FaultSpec, TaskResult, run_graph
from repro.workloads import get_workload

logger = logging.getLogger("repro.sweep")


@dataclass(frozen=True)
class SweepConfig:
    """One sweep = a grid plus execution and persistence settings."""

    workloads: tuple[str, ...]
    deadline_fracs: tuple[float, ...] = (0.35, 0.7)
    levels: tuple[int | None, ...] = (None,)  # None -> XScale-3
    categories: dict[str, tuple[str, ...]] = field(default_factory=dict)
    seed: int = 0
    capacitance_uf: float = 10.0
    jobs: int = 1
    task_timeout_s: float | None = 600.0
    retries: int = 1
    backoff_s: float = 0.05
    fault: FaultSpec | None = None
    cache_dir: str | None = None  # None -> caching disabled
    output_dir: str = "sweep-results"
    solver_budget_s: float | None = None  # anytime optimize budget
    solver_backend: str = "auto"  # optimize backend (incl. "continuous")
    continuous_prune: bool = False  # warm-start B&B from the continuous round-up
    resume: bool = False  # replay the journal in output_dir
    trace: bool = False  # collect + export trace.jsonl / metrics.json
    fastpath: bool = True  # bit-exact accelerated simulation (see repro.perf)


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` produced."""

    graph: TaskGraph
    results: dict[str, TaskResult]
    manifest_path: Path
    results_path: Path | None  # None when the run was interrupted
    wall_time_s: float
    cache_stats: dict[str, int]
    interrupted: bool = False
    resumed_tasks: int = 0
    trace_path: Path | None = None  # trace.jsonl when tracing was on
    metrics_path: Path | None = None  # metrics.json when tracing was on

    @property
    def experiment_records(self) -> list[dict[str, Any]]:
        return [
            manifest_mod.experiment_record(spec, self.graph, self.results)
            for spec in sorted(self.graph.experiments,
                               key=lambda s: s.experiment_id)
        ]

    @property
    def failures(self) -> list[dict[str, Any]]:
        return [r for r in self.experiment_records
                if r["status"] not in ("ok", "incomplete")]

    @property
    def degraded_tasks(self) -> list[str]:
        """Solve tasks that fell back below a proven optimum."""
        return sorted(
            r.task_id for r in self.results.values()
            if r.kind in ("optimize", "tg-solve") and r.ok
            and r.output is not None
            and r.output.get("solver", {}).get("degraded")
        )

    @property
    def verify_failures(self) -> list[dict[str, Any]]:
        return [r for r in self.experiment_records
                if r["status"] == "verify_failed"]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted


def build_grid(config: SweepConfig) -> list[ExperimentSpec]:
    """Expand the sweep cross-product, validating every axis up front."""
    if not config.workloads:
        raise OrchestrationError("sweep needs at least one workload")
    if not config.deadline_fracs:
        raise OrchestrationError("sweep needs at least one deadline fraction")
    for frac in config.deadline_fracs:
        if not 0.0 <= frac <= 1.0:
            raise OrchestrationError(
                f"deadline fraction {frac} outside [0, 1]"
            )
    experiments: list[ExperimentSpec] = []
    for name in config.workloads:
        get_workload(name)  # raises ReproError for unknown names, early
        categories = config.categories.get(name, (None,))
        for category in categories:
            for levels in config.levels:
                machine = MachineSpec(levels=levels,
                                      capacitance_uf=config.capacitance_uf,
                                      fastpath=config.fastpath)
                for frac in config.deadline_fracs:
                    experiments.append(ExperimentSpec(
                        workload=name,
                        deadline_frac=frac,
                        category=category,
                        seed=config.seed,
                        machine=machine,
                    ))
    return experiments


def run_sweep(
    config: SweepConfig,
    on_task: Callable[[TaskResult], None] | None = None,
    experiments: list | None = None,
    run_info_extra: dict[str, Any] | None = None,
) -> SweepReport:
    """Run a full sweep and persist its manifest and results.

    Crash safety: every completed task is appended (fsync'd) to
    ``<output-dir>/journal.jsonl``; with ``config.resume`` a later
    invocation replays those entries instead of recomputing, producing a
    byte-identical ``results.jsonl``.  A SIGINT on the main thread asks
    the executor to stop submitting work, drains in-flight tasks into
    the journal, writes the (partial) manifest and returns with
    ``interrupted=True`` — ``results.jsonl`` is only written for
    complete runs.

    Args:
        config: execution and persistence settings; its grid axes are
            expanded via :func:`build_grid` unless ``experiments`` is
            given.
        on_task: per-task completion callback.
        experiments: pre-built grid (any experiment family, e.g.
            taskgraph specs) that bypasses :func:`build_grid`.
        run_info_extra: extra fields merged into the manifest header
            (family-specific axes the generic config cannot express).
    """
    if experiments is None:
        experiments = build_grid(config)
    graph = build_task_graph(experiments,
                             solver_budget_s=config.solver_budget_s,
                             solver_backend=config.solver_backend,
                             continuous_prune=config.continuous_prune)
    # Warm-start bases/pseudocosts are per-sweep ephemeral state: reset
    # so a resumed run and a cold run see identical (empty) registries.
    # Pool workers (jobs > 1) start with fresh per-process registries.
    from repro.solver import warmstart

    warmstart.reset()
    store = ArtifactStore(config.cache_dir) if config.cache_dir else None
    output_dir = Path(config.output_dir)

    journal = SweepJournal(
        output_dir / "journal.jsonl",
        run_fingerprint({
            "experiments": sorted(e.experiment_id for e in experiments),
            "seed": config.seed,
        }),
    )
    completed = journal.load_completed() if config.resume else {}
    # Replay only tasks that still exist in this grid.
    completed = {tid: out for tid, out in completed.items()
                 if tid in graph.tasks}
    if completed:
        logger.info("resuming %d completed tasks from %s",
                    len(completed), journal.path)
    journal.start(resume=config.resume)

    def journal_task(result: TaskResult) -> None:
        if (result.ok and result.cache != "journal"
                and result.output is not None
                and result.output.get("_cacheable", True)):
            journal.record(result.task_id, result.output)
        if on_task is not None:
            on_task(result)

    # First Ctrl-C flips a flag the executor polls; the drain then runs
    # to a valid partial journal instead of dying mid-write.  Only the
    # main thread may own signal handlers.
    stop = threading.Event()
    previous_handler = None
    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        previous_handler = signal.signal(
            signal.SIGINT, lambda signum, frame: stop.set()
        )

    # Tracing covers exactly this sweep: enabled here (flag or env),
    # restored afterwards.  A collector an embedding caller already
    # enabled is left alone — and left enabled.
    trace_requested = config.trace or observe.env_enabled()
    was_enabled = observe.enabled()
    if trace_requested and not was_enabled:
        observe.enable(reset=True)
    sweep_span = observe.start_span(
        "sweep", on_stack=True,
        workloads=",".join(sorted(config.workloads)),
        experiments=len(experiments), jobs=config.jobs,
        resume=config.resume,
    )
    try:
        results = run_graph(
            graph,
            store=store,
            config=ExecutorConfig(
                jobs=config.jobs,
                task_timeout_s=config.task_timeout_s,
                retries=config.retries,
                backoff_s=config.backoff_s,
                fault=config.fault,
            ),
            on_task=journal_task,
            completed=completed,
            should_stop=stop.is_set,
        )
    finally:
        observe.end_span(sweep_span)
        journal.close()
        if on_main:
            signal.signal(signal.SIGINT,
                          previous_handler if previous_handler is not None
                          else signal.SIG_DFL)
    wall_time = sweep_span.elapsed_s
    interrupted = len(results) < len(graph.tasks)

    run_info = {
        "workloads": sorted(config.workloads),
        "deadline_fracs": list(config.deadline_fracs),
        "levels": ["xscale-3" if l is None else l for l in config.levels],
        "seed": config.seed,
        "capacitance_uf": config.capacitance_uf,
        "jobs": config.jobs,
        "retries": config.retries,
        "cache_dir": config.cache_dir,
        "solver_budget_s": config.solver_budget_s,
        "solver_backend": config.solver_backend,
        "continuous_prune": config.continuous_prune,
        "resume": config.resume,
        "resumed_tasks": len(completed),
        "interrupted": interrupted,
        "experiments": len(experiments),
        "tasks": len(graph.tasks),
    }
    if run_info_extra:
        run_info.update(run_info_extra)
    manifest_path = manifest_mod.write_manifest(
        output_dir / "manifest.jsonl", run_info, results, wall_time
    )
    # The scientific record is all-or-nothing: a partial results.jsonl
    # would be mistaken for a complete (byte-comparable) one.
    results_path = None
    if not interrupted:
        results_path = manifest_mod.write_results(
            output_dir / "results.jsonl", graph, results
        )
    cache_stats = store.stats.as_dict() if store is not None else {}
    # Trace/metrics are operational artifacts (like the manifest): they
    # sit next to results.jsonl but never influence its bytes.
    trace_path = metrics_path = None
    if trace_requested:
        trace_path, metrics_path = observe.export(output_dir)
        if not was_enabled:
            observe.disable()
    return SweepReport(
        graph=graph,
        results=results,
        manifest_path=manifest_path,
        results_path=results_path,
        wall_time_s=wall_time,
        cache_stats=cache_stats,
        interrupted=interrupted,
        resumed_tasks=len(completed),
        trace_path=trace_path,
        metrics_path=metrics_path,
    )
