"""The virtual instruction set.

Every instruction belongs to an :class:`OpClass`, which carries its latency
in CPU cycles and its relative switched capacitance (the energy model
charges ``c_eff * V^2`` per activation, Wattch-style).  Latencies and
capacitances are class constants here; the machine configuration can scale
them globally but the *relative* mix is what shapes the program parameters
the paper's model consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class OpClass(enum.Enum):
    """Functional-unit class of an instruction.

    Values are ``(latency_cycles, c_eff_nF)`` — latency in CPU cycles at any
    frequency, effective switched capacitance in nanofarads so that one
    activation at supply voltage V costs ``c_eff * V²`` nanojoules.
    """

    INT_ALU = (1, 1.00)
    INT_MUL = (3, 2.20)
    INT_DIV = (12, 2.80)
    FP_ADD = (2, 2.50)
    FP_MUL = (4, 3.20)
    FP_DIV = (18, 4.00)
    MEM = (1, 1.80)  # address generation + cache port; hit latency added by the cache
    BRANCH = (1, 1.10)
    MOVE = (1, 0.60)

    def __init__(self, latency: int, c_eff: float) -> None:
        self.latency = latency
        self.c_eff = c_eff


_INT_OPS = {
    "add", "sub", "and", "or", "xor", "shl", "shr",
    "lt", "le", "gt", "ge", "eq", "ne", "min", "max",
}
_INT_MUL_OPS = {"mul"}
_INT_DIV_OPS = {"div", "mod"}
_FP_ADD_OPS = {"fadd", "fsub", "flt", "fle", "fgt", "fge", "feq", "fne", "fmin", "fmax"}
_FP_MUL_OPS = {"fmul"}
_FP_DIV_OPS = {"fdiv"}

BINARY_OPS = (
    _INT_OPS | _INT_MUL_OPS | _INT_DIV_OPS | _FP_ADD_OPS | _FP_MUL_OPS | _FP_DIV_OPS
)
UNARY_OPS = {"neg", "not", "fneg", "i2f", "f2i", "abs", "fabs", "sqrt"}


def classify_op(op: str) -> OpClass:
    """Map an operator mnemonic to its functional-unit class."""
    if op in _INT_OPS:
        return OpClass.INT_ALU
    if op in _INT_MUL_OPS:
        return OpClass.INT_MUL
    if op in _INT_DIV_OPS:
        return OpClass.INT_DIV
    if op in _FP_ADD_OPS:
        return OpClass.FP_ADD
    if op in _FP_MUL_OPS:
        return OpClass.FP_MUL
    if op in _FP_DIV_OPS:
        return OpClass.FP_DIV
    if op in ("neg", "not", "abs"):
        return OpClass.INT_ALU
    if op in ("fneg", "fabs", "i2f", "f2i"):
        return OpClass.FP_ADD
    if op == "sqrt":
        return OpClass.FP_DIV
    raise ValueError(f"unknown operator {op!r}")


@dataclass
class Instruction:
    """Base class; concrete instructions define uses/defs and a class."""

    @property
    def op_class(self) -> OpClass:
        raise NotImplementedError

    def uses(self) -> Iterator[str]:
        """Virtual registers read by this instruction."""
        return iter(())

    def defs(self) -> str | None:
        """Virtual register written, or None."""
        return None

    @property
    def is_terminator(self) -> bool:
        return False


@dataclass
class Const(Instruction):
    """``dst <- immediate``."""

    dst: str
    value: float

    @property
    def op_class(self) -> OpClass:
        return OpClass.MOVE

    def defs(self) -> str | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = const {self.value}"


@dataclass
class Move(Instruction):
    """``dst <- src`` register copy."""

    dst: str
    src: str

    @property
    def op_class(self) -> OpClass:
        return OpClass.MOVE

    def uses(self) -> Iterator[str]:
        yield self.src

    def defs(self) -> str | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(Instruction):
    """``dst <- lhs op rhs`` for any mnemonic in :data:`BINARY_OPS`."""

    op: str
    dst: str
    lhs: str
    rhs: str

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def op_class(self) -> OpClass:
        return classify_op(self.op)

    def uses(self) -> Iterator[str]:
        yield self.lhs
        yield self.rhs

    def defs(self) -> str | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass
class UnOp(Instruction):
    """``dst <- op src`` for any mnemonic in :data:`UNARY_OPS`."""

    op: str
    dst: str
    src: str

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    @property
    def op_class(self) -> OpClass:
        return classify_op(self.op)

    def uses(self) -> Iterator[str]:
        yield self.src

    def defs(self) -> str | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.src}"


@dataclass
class Load(Instruction):
    """``dst <- memory[base + offset]``; base is a register, offset bytes."""

    dst: str
    base: str
    offset: int = 0

    @property
    def op_class(self) -> OpClass:
        return OpClass.MEM

    def uses(self) -> Iterator[str]:
        yield self.base

    def defs(self) -> str | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = load [{self.base}+{self.offset}]"


@dataclass
class Store(Instruction):
    """``memory[base + offset] <- src``."""

    src: str
    base: str
    offset: int = 0

    @property
    def op_class(self) -> OpClass:
        return OpClass.MEM

    def uses(self) -> Iterator[str]:
        yield self.src
        yield self.base

    def __repr__(self) -> str:
        return f"store [{self.base}+{self.offset}] = {self.src}"


@dataclass
class Branch(Instruction):
    """Conditional terminator: go to ``if_true`` when cond != 0."""

    cond: str
    if_true: str
    if_false: str

    @property
    def op_class(self) -> OpClass:
        return OpClass.BRANCH

    def uses(self) -> Iterator[str]:
        yield self.cond

    @property
    def is_terminator(self) -> bool:
        return True

    def targets(self) -> tuple[str, ...]:
        return (self.if_true, self.if_false)

    def __repr__(self) -> str:
        return f"br {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass
class Jump(Instruction):
    """Unconditional terminator."""

    target: str

    @property
    def op_class(self) -> OpClass:
        return OpClass.BRANCH

    @property
    def is_terminator(self) -> bool:
        return True

    def targets(self) -> tuple[str, ...]:
        return (self.target,)

    def __repr__(self) -> str:
        return f"jmp {self.target}"


@dataclass
class Ret(Instruction):
    """Function return; ``value`` register is optional."""

    value: str | None = None

    @property
    def op_class(self) -> OpClass:
        return OpClass.BRANCH

    def uses(self) -> Iterator[str]:
        if self.value is not None:
            yield self.value

    @property
    def is_terminator(self) -> bool:
        return True

    def targets(self) -> tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return f"ret {self.value or ''}".rstrip()
