"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.instructions import Instruction


@dataclass
class BasicBlock:
    """A labelled straight-line code region.

    Invariants (checked by :func:`repro.ir.validate.validate_cfg`):

    * exactly the last instruction is a terminator;
    * the label is unique within its CFG.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> Instruction:
        """Append an instruction; refuses to append past a terminator."""
        if self.is_terminated:
            raise IRError(f"block {self.label!r} already has a terminator")
        self.instructions.append(instruction)
        return instruction

    @property
    def terminator(self) -> Instruction:
        """The block's terminator instruction."""
        if not self.is_terminated:
            raise IRError(f"block {self.label!r} is not terminated")
        return self.instructions[-1]

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> tuple[str, ...]:
        """Labels this block can transfer control to."""
        return self.terminator.targets()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"

    def pretty(self) -> str:
        """Multi-line textual listing of the block."""
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr!r}" for instr in self.instructions)
        return "\n".join(lines)
