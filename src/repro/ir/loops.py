"""Dominators and natural loops.

Used by the schedule post-pass (hoisting silent mode-set instructions out of
loop back-edges, the paper's Section 4.2 remark) and by workload reports.
The dominator computation is the classic iterative dataflow algorithm of
Cooper, Harvey and Kennedy over reverse postorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.cfg import CFG, Edge


def compute_dominators(cfg: CFG) -> dict[str, str | None]:
    """Immediate dominators for every reachable block.

    Returns:
        mapping label -> immediate-dominator label (entry maps to None).
    """
    order = cfg.reverse_postorder()
    index = {label: i for i, label in enumerate(order)}
    preds = cfg.predecessor_map()
    idom: dict[str, str | None] = {cfg.entry: cfg.entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == cfg.entry:
                continue
            candidates = [p for p in preds[label] if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: dict[str, str | None] = {label: dom for label, dom in idom.items()}
    result[cfg.entry] = None
    return result


def dominates(idom: dict[str, str | None], a: str, b: str) -> bool:
    """True when block a dominates block b (reflexive)."""
    node: str | None = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


@dataclass
class LoopInfo:
    """A natural loop: its header, back edges and member blocks."""

    header: str
    back_edges: list[Edge] = field(default_factory=list)
    blocks: set[str] = field(default_factory=set)

    @property
    def depth_hint(self) -> int:
        """Block count — a crude size proxy used only for reporting."""
        return len(self.blocks)

    def entry_edges(self, cfg: CFG) -> list[Edge]:
        """Edges entering the loop from outside (the preheader candidates)."""
        return [
            (src, self.header)
            for src in cfg.predecessor_map()[self.header]
            if src not in self.blocks
        ]


def find_natural_loops(cfg: CFG) -> list[LoopInfo]:
    """Identify natural loops via back edges (edge u->h where h dominates u).

    Loops sharing a header are merged into a single :class:`LoopInfo`, as is
    conventional.  Irreducible flow (a cycle whose entry does not dominate
    its tail) simply yields no loop for that cycle; the schedule post-pass
    then leaves those edges alone, which is always safe.
    """
    idom = compute_dominators(cfg)
    reachable = set(idom)
    loops: dict[str, LoopInfo] = {}

    for src, dst in cfg.edges():
        if src not in reachable or dst not in reachable:
            continue
        if not dominates(idom, dst, src):
            continue
        loop = loops.setdefault(dst, LoopInfo(header=dst))
        loop.back_edges.append((src, dst))
        # Collect the loop body: all blocks that reach src without passing
        # through the header.
        body = {dst, src}
        stack = [src]
        preds = cfg.predecessor_map()
        while stack:
            node = stack.pop()
            for pred in preds[node]:
                if pred not in body and pred in reachable:
                    body.add(pred)
                    if pred != dst:
                        stack.append(pred)
        loop.blocks |= body

    return sorted(loops.values(), key=lambda l: l.header)


def loop_nesting(loops: list[LoopInfo]) -> dict[str, int]:
    """Nesting depth of each loop header (1 = outermost)."""
    depth: dict[str, int] = {}
    for loop in loops:
        depth[loop.header] = 1 + sum(
            1
            for other in loops
            if other.header != loop.header and loop.header in other.blocks
        )
    return depth


def validate_loop(cfg: CFG, loop: LoopInfo) -> None:
    """Sanity-check a loop against its CFG (used in tests)."""
    if loop.header not in cfg.blocks:
        raise IRError(f"loop header {loop.header!r} not in CFG")
    for src, dst in loop.back_edges:
        if dst != loop.header:
            raise IRError("back edge does not target the loop header")
        if src not in loop.blocks:
            raise IRError("back-edge source not inside the loop body")
