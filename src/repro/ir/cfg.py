"""Control-flow graphs over basic blocks.

A :class:`CFG` is the unit everything downstream consumes: the simulator
executes it, the profiler counts its edges and local paths, and the MILP
formulation assigns a DVS mode to each of its edges.

Edges are ordered pairs of block labels.  The synthetic edge
``(ENTRY_EDGE_SOURCE, entry)`` represents "program start enters the entry
block"; the profiler and MILP treat it like any other edge so the entry
block's initial mode is also an optimization variable (the paper's
formulation does the same by letting the entry edge carry a mode-set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import IRError
from repro.ir.basic_block import BasicBlock

ENTRY_EDGE_SOURCE = "__start__"

Edge = tuple[str, str]


@dataclass
class CFG:
    """A single-function control-flow graph.

    Attributes:
        name: function/program name (used in reports).
        entry: label of the entry block.
        blocks: mapping label -> block, in insertion order.
        arrays: mapping array name -> (base_address, length_in_elements);
            the flat data-memory layout used by loads/stores.
        element_size: bytes per array element (cache-line occupancy).
    """

    name: str
    entry: str = ""
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    arrays: dict[str, tuple[int, int]] = field(default_factory=dict)
    element_size: int = 4

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise IRError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        if not self.entry:
            self.entry = block.label
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block labelled {label!r} in {self.name!r}") from None

    # -- graph structure -----------------------------------------------------

    def edges(self, include_entry: bool = False) -> list[Edge]:
        """All control-flow edges, optionally with the synthetic entry edge."""
        result: list[Edge] = []
        if include_entry:
            result.append((ENTRY_EDGE_SOURCE, self.entry))
        for label, block in self.blocks.items():
            result.extend((label, succ) for succ in block.successors())
        return result

    def successors(self, label: str) -> tuple[str, ...]:
        return self.block(label).successors()

    def predecessors(self, label: str) -> list[str]:
        return [src for src, dst in self.edges() if dst == label]

    def predecessor_map(self) -> dict[str, list[str]]:
        """Label -> predecessor labels, one pass over all edges."""
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for src, dst in self.edges():
            preds[dst].append(src)
        return preds

    def exit_blocks(self) -> list[str]:
        """Blocks terminated by a return."""
        return [label for label, block in self.blocks.items() if not block.successors()]

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder from the entry (forward dataflow order)."""
        visited: set[str] = set()
        order: list[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.successors(label)))]
            visited.add(label)
            while stack:
                current, succ_iter = stack[-1]
                advanced = False
                for nxt in succ_iter:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def reachable(self) -> set[str]:
        """Labels reachable from the entry block."""
        return set(self.reverse_postorder())

    # -- memory layout ---------------------------------------------------------

    def add_array(self, name: str, length: int, align: int = 32) -> int:
        """Reserve a data-memory region for an array; returns its base address.

        Arrays are laid out sequentially, each aligned to ``align`` bytes
        (a cache line by default) so distinct arrays never share a line.
        """
        if name in self.arrays:
            raise IRError(f"duplicate array {name!r}")
        end = 0
        for base, length_elems in self.arrays.values():
            end = max(end, base + length_elems * self.element_size)
        base = (end + align - 1) // align * align
        self.arrays[name] = (base, length)
        return base

    def array_base(self, name: str) -> int:
        try:
            return self.arrays[name][0]
        except KeyError:
            raise IRError(f"unknown array {name!r}") from None

    def data_size(self) -> int:
        """Total bytes of data memory the program addresses."""
        end = 0
        for base, length in self.arrays.values():
            end = max(end, base + length * self.element_size)
        return end

    # -- stats -----------------------------------------------------------------

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def pretty(self) -> str:
        """Whole-program textual listing."""
        parts = [f"; cfg {self.name} (entry {self.entry})"]
        parts.extend(block.pretty() for block in self.blocks.values())
        return "\n".join(parts)
