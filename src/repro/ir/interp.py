"""Reference interpreter: IR semantics without any timing or energy model.

Used to test that the machine simulator computes the same values as plain
execution, and that frontend lowering preserves source semantics.  Memory is
a flat byte-addressed array of ``element_size``-wide cells holding Python
floats/ints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    Branch,
    Const,
    Jump,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)

_INT_BINOPS = {
    "add": lambda a, b: int(a) + int(b),
    "sub": lambda a, b: int(a) - int(b),
    "mul": lambda a, b: int(a) * int(b),
    "div": lambda a, b: _int_div(a, b),
    "mod": lambda a, b: _int_mod(a, b),
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "lt": lambda a, b: int(int(a) < int(b)),
    "le": lambda a, b: int(int(a) <= int(b)),
    "gt": lambda a, b: int(int(a) > int(b)),
    "ge": lambda a, b: int(int(a) >= int(b)),
    "eq": lambda a, b: int(int(a) == int(b)),
    "ne": lambda a, b: int(int(a) != int(b)),
    "min": lambda a, b: min(int(a), int(b)),
    "max": lambda a, b: max(int(a), int(b)),
}

_FP_BINOPS = {
    "fadd": lambda a, b: float(a) + float(b),
    "fsub": lambda a, b: float(a) - float(b),
    "fmul": lambda a, b: float(a) * float(b),
    "fdiv": lambda a, b: float(a) / float(b),
    "flt": lambda a, b: int(float(a) < float(b)),
    "fle": lambda a, b: int(float(a) <= float(b)),
    "fgt": lambda a, b: int(float(a) > float(b)),
    "fge": lambda a, b: int(float(a) >= float(b)),
    "feq": lambda a, b: int(float(a) == float(b)),
    "fne": lambda a, b: int(float(a) != float(b)),
    "fmin": lambda a, b: min(float(a), float(b)),
    "fmax": lambda a, b: max(float(a), float(b)),
}

_UNOPS = {
    "neg": lambda a: -int(a),
    "not": lambda a: int(not int(a)),
    "abs": lambda a: abs(int(a)),
    "fneg": lambda a: -float(a),
    "fabs": lambda a: abs(float(a)),
    "i2f": lambda a: float(int(a)),
    "f2i": lambda a: int(float(a)),
    "sqrt": lambda a: math.sqrt(float(a)),
}


def _int_div(a, b) -> int:
    """C-style truncating division (0 divisor raises)."""
    a, b = int(a), int(b)
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b) -> int:
    a, b = int(a), int(b)
    if b == 0:
        raise SimulationError("integer modulo by zero")
    return a - _int_div(a, b) * b


def apply_binop(op: str, a, b):
    """Evaluate a binary operator; shared with the machine simulator."""
    if op in _INT_BINOPS:
        return _INT_BINOPS[op](a, b)
    if op in _FP_BINOPS:
        return _FP_BINOPS[op](a, b)
    raise SimulationError(f"unknown binary op {op!r}")


def apply_unop(op: str, a):
    """Evaluate a unary operator; shared with the machine simulator."""
    if op in _UNOPS:
        return _UNOPS[op](a)
    raise SimulationError(f"unknown unary op {op!r}")


class DataMemory:
    """Flat element-addressed memory backing loads and stores.

    Addresses are byte addresses; each cell is ``element_size`` bytes and
    holds one numeric value, so the address must be element-aligned.
    """

    def __init__(self, size_bytes: int, element_size: int = 4) -> None:
        self.element_size = element_size
        self.cells: list[float] = [0] * (max(size_bytes, element_size) // element_size + 1)

    def _index(self, address: int) -> int:
        address = int(address)
        if address < 0:
            raise SimulationError(f"negative memory address {address}")
        if address % self.element_size:
            raise SimulationError(f"misaligned access at byte address {address}")
        index = address // self.element_size
        if index >= len(self.cells):
            raise SimulationError(f"out-of-bounds access at byte address {address}")
        return index

    def read(self, address: int):
        return self.cells[self._index(address)]

    def write(self, address: int, value) -> None:
        self.cells[self._index(address)] = value

    def write_array(self, base: int, values) -> None:
        """Bulk-initialize an array region starting at ``base``."""
        values = list(values)
        if not values:
            return
        # Validate both ends once; interior addresses of a stride-1 element
        # run are then aligned and in bounds by construction.
        start = self._index(base)
        self._index(base + (len(values) - 1) * self.element_size)
        self.cells[start:start + len(values)] = values

    def read_array(self, base: int, length: int) -> list:
        """Bulk-read ``length`` elements from ``base``."""
        return [self.read(base + i * self.element_size) for i in range(length)]


@dataclass
class InterpResult:
    """Output of a reference interpretation."""

    return_value: float | None
    instructions_executed: int
    block_counts: dict[str, int] = field(default_factory=dict)
    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    memory: DataMemory | None = None


def interpret(
    cfg: CFG,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    max_steps: int = 200_000_000,
) -> InterpResult:
    """Execute a CFG with reference semantics.

    Args:
        cfg: the program.
        inputs: array name -> initial values (must match declared arrays).
        registers: initial register values (program parameters).
        max_steps: safety cap on executed instructions.

    Returns:
        :class:`InterpResult` with the return value, dynamic counts and the
        final memory image (for reading back output arrays).
    """
    memory = DataMemory(cfg.data_size() + cfg.element_size, cfg.element_size)
    for name, values in (inputs or {}).items():
        base, length = cfg.arrays[name]
        if len(values) > length:
            raise SimulationError(
                f"input for {name!r} has {len(values)} elements, array holds {length}"
            )
        memory.write_array(base, values)

    regs: dict[str, float] = dict(registers or {})
    block_counts: dict[str, int] = {}
    edge_counts: dict[tuple[str, str], int] = {}
    label = cfg.entry
    executed = 0

    def read(reg: str):
        try:
            return regs[reg]
        except KeyError:
            raise SimulationError(f"read of undefined register {reg!r}") from None

    while True:
        block = cfg.block(label)
        block_counts[label] = block_counts.get(label, 0) + 1
        next_label: str | None = None
        return_value: float | None = None
        for instr in block.instructions:
            executed += 1
            if executed > max_steps:
                raise SimulationError(f"exceeded max_steps={max_steps}")
            if isinstance(instr, Const):
                regs[instr.dst] = instr.value
            elif isinstance(instr, Move):
                regs[instr.dst] = read(instr.src)
            elif isinstance(instr, BinOp):
                regs[instr.dst] = apply_binop(instr.op, read(instr.lhs), read(instr.rhs))
            elif isinstance(instr, UnOp):
                regs[instr.dst] = apply_unop(instr.op, read(instr.src))
            elif isinstance(instr, Load):
                regs[instr.dst] = memory.read(int(read(instr.base)) + instr.offset)
            elif isinstance(instr, Store):
                memory.write(int(read(instr.base)) + instr.offset, read(instr.src))
            elif isinstance(instr, Branch):
                next_label = instr.if_true if read(instr.cond) else instr.if_false
            elif isinstance(instr, Jump):
                next_label = instr.target
            elif isinstance(instr, Ret):
                return_value = read(instr.value) if instr.value else None
                return InterpResult(
                    return_value=return_value,
                    instructions_executed=executed,
                    block_counts=block_counts,
                    edge_counts=edge_counts,
                    memory=memory,
                )
            else:
                raise SimulationError(f"unknown instruction {instr!r}")
        if next_label is None:
            raise SimulationError(f"block {label!r} fell through without terminator")
        edge_counts[(label, next_label)] = edge_counts.get((label, next_label), 0) + 1
        label = next_label
