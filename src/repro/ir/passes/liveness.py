"""Global liveness analysis (backwards may-dataflow).

Standard equations over basic blocks::

    live_out(b) = union of live_in(s) for s in successors(b)
    live_in(b)  = use(b) | (live_out(b) - def(b))

where ``use(b)`` contains registers read in b before any write, and
``def(b)`` registers written anywhere in b.  Iterated to a fixpoint over
postorder (so information flows backwards fast).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    live_in: dict[str, set[str]] = field(default_factory=dict)
    live_out: dict[str, set[str]] = field(default_factory=dict)

    def is_live_out(self, block: str, reg: str) -> bool:
        return reg in self.live_out.get(block, ())


def _block_use_def(block) -> tuple[set[str], set[str]]:
    uses: set[str] = set()
    defs: set[str] = set()
    for instr in block.instructions:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defined = instr.defs()
        if defined is not None:
            defs.add(defined)
    return uses, defs


def compute_liveness(cfg: CFG) -> LivenessInfo:
    """Fixpoint liveness for every block of the CFG."""
    use: dict[str, set[str]] = {}
    deff: dict[str, set[str]] = {}
    for label, block in cfg.blocks.items():
        use[label], deff[label] = _block_use_def(block)

    info = LivenessInfo(
        live_in={label: set() for label in cfg.blocks},
        live_out={label: set() for label in cfg.blocks},
    )
    order = list(reversed(cfg.reverse_postorder()))  # postorder
    changed = True
    while changed:
        changed = False
        for label in order:
            out: set[str] = set()
            for succ in cfg.successors(label):
                out |= info.live_in[succ]
            new_in = use[label] | (out - deff[label])
            if out != info.live_out[label] or new_in != info.live_in[label]:
                info.live_out[label] = out
                info.live_in[label] = new_in
                changed = True
    return info
