"""Pass pipeline: iterate the optimization passes to a fixpoint."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.copyprop import propagate_copies
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplify import simplify_cfg
from repro.ir.validate import validate_cfg

_PASSES = (
    ("constfold", fold_constants),
    ("copyprop", propagate_copies),
    ("dce", eliminate_dead_code),
    ("simplify", simplify_cfg),
)


@dataclass
class PassResult:
    """What the pipeline did: per-pass change counts and round count."""

    changes: dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    instructions_before: int = 0
    instructions_after: int = 0

    @property
    def total_changes(self) -> int:
        return sum(self.changes.values())

    @property
    def shrink_ratio(self) -> float:
        """Fraction of static instructions removed."""
        if self.instructions_before == 0:
            return 0.0
        return 1.0 - self.instructions_after / self.instructions_before


def optimize(cfg: CFG, max_rounds: int = 5, validate: bool = True) -> PassResult:
    """Run constfold -> copyprop -> dce -> simplify until a fixpoint.

    Mutates the CFG in place and returns a :class:`PassResult`.  The CFG
    is re-validated afterwards (can be disabled for deliberately odd
    graphs in tests).
    """
    result = PassResult(instructions_before=cfg.instruction_count())
    for _ in range(max_rounds):
        round_changes = 0
        for name, pass_fn in _PASSES:
            count = pass_fn(cfg)
            result.changes[name] = result.changes.get(name, 0) + count
            round_changes += count
        result.rounds += 1
        if round_changes == 0:
            break
    result.instructions_after = cfg.instruction_count()
    if validate:
        validate_cfg(cfg)
    return result
