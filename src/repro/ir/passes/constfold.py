"""Local constant folding.

Within each basic block, registers assigned a known constant are tracked
and operations over constants are evaluated at compile time with the
reference interpreter's operator tables (so folding can never disagree
with execution — including C-style truncating division).  A conditional
branch whose condition folds to a constant becomes an unconditional
jump, exposing dead blocks to :mod:`repro.ir.passes.simplify`.

Division/modulo by a constant zero is *not* folded: the trap must stay a
runtime event, exactly where the program placed it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ir.cfg import CFG
from repro.ir.instructions import BinOp, Branch, Const, Instruction, Jump, Move, UnOp
from repro.ir.interp import apply_binop, apply_unop


def fold_constants(cfg: CFG) -> int:
    """Fold constant computations in place; returns instructions folded."""
    folded = 0
    for block in cfg:
        known: dict[str, float] = {}
        new_instructions: list[Instruction] = []
        for instr in block.instructions:
            replacement = instr
            if isinstance(instr, Const):
                known[instr.dst] = instr.value
            elif isinstance(instr, Move):
                if instr.src in known:
                    replacement = Const(instr.dst, known[instr.src])
                    known[instr.dst] = known[instr.src]
                    folded += 1
                else:
                    known.pop(instr.dst, None)
            elif isinstance(instr, BinOp):
                if instr.lhs in known and instr.rhs in known:
                    try:
                        value = apply_binop(instr.op, known[instr.lhs], known[instr.rhs])
                    except SimulationError:
                        value = None  # division by zero stays at runtime
                    if value is not None:
                        replacement = Const(instr.dst, value)
                        known[instr.dst] = value
                        folded += 1
                    else:
                        known.pop(instr.dst, None)
                else:
                    known.pop(instr.dst, None)
            elif isinstance(instr, UnOp):
                if instr.src in known:
                    try:
                        value = apply_unop(instr.op, known[instr.src])
                    except SimulationError:
                        value = None
                    if value is not None:
                        replacement = Const(instr.dst, value)
                        known[instr.dst] = value
                        folded += 1
                    else:
                        known.pop(instr.dst, None)
                else:
                    known.pop(instr.dst, None)
            elif isinstance(instr, Branch):
                if instr.cond in known:
                    target = instr.if_true if known[instr.cond] else instr.if_false
                    replacement = Jump(target)
                    folded += 1
            else:
                defined = instr.defs()
                if defined is not None:
                    known.pop(defined, None)
            new_instructions.append(replacement)
        block.instructions = new_instructions
    return folded
