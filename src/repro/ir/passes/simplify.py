"""CFG simplification: jump threading, unreachable-block removal, and
linear-chain merging.

* **Jump threading** — a block containing only ``jmp T`` is bypassed:
  every branch to it retargets T directly.  (The entry block is never
  threaded away; a branch whose two targets become equal stays a branch
  — constant folding is the pass that knows conditions.)
* **Unreachable removal** — blocks no longer reachable from the entry
  are deleted.
* **Chain merging** — a block whose single successor has it as its only
  predecessor absorbs that successor, shrinking the edge set the MILP
  must assign modes to.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.instructions import Branch, Jump


def _retarget(cfg: CFG, mapping: dict[str, str]) -> int:
    """Apply a label->label redirect map to every terminator."""

    def resolve(label: str) -> str:
        seen = set()
        while label in mapping and label not in seen:
            seen.add(label)
            label = mapping[label]
        return label

    changed = 0
    for block in cfg:
        term = block.instructions[-1] if block.instructions else None
        if isinstance(term, Jump):
            new = resolve(term.target)
            if new != term.target:
                term.target = new
                changed += 1
        elif isinstance(term, Branch):
            new_true, new_false = resolve(term.if_true), resolve(term.if_false)
            if (new_true, new_false) != (term.if_true, term.if_false):
                term.if_true, term.if_false = new_true, new_false
                changed += 1
    return changed


def _thread_jumps(cfg: CFG) -> int:
    mapping: dict[str, str] = {}
    for label, block in cfg.blocks.items():
        if label == cfg.entry:
            continue
        if len(block.instructions) == 1 and isinstance(block.instructions[0], Jump):
            target = block.instructions[0].target
            if target != label:
                mapping[label] = target
    if not mapping:
        return 0
    return _retarget(cfg, mapping)


def _remove_unreachable(cfg: CFG) -> int:
    reachable: set[str] = set()
    stack = [cfg.entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(cfg.blocks[label].successors())
    removed = 0
    for label in list(cfg.blocks):
        if label not in reachable:
            del cfg.blocks[label]
            removed += 1
    return removed


def _merge_chains(cfg: CFG) -> int:
    merged = 0
    changed = True
    while changed:
        changed = False
        preds = cfg.predecessor_map()
        for label in list(cfg.blocks):
            block = cfg.blocks.get(label)
            if block is None:
                continue
            term = block.instructions[-1]
            if not isinstance(term, Jump):
                continue
            succ_label = term.target
            if succ_label == label or succ_label == cfg.entry:
                continue
            if preds[succ_label] != [label]:
                continue
            successor = cfg.blocks[succ_label]
            block.instructions = block.instructions[:-1] + successor.instructions
            del cfg.blocks[succ_label]
            merged += 1
            changed = True
            break  # predecessor map is stale; recompute
    return merged


def simplify_cfg(cfg: CFG) -> int:
    """Run threading + unreachable removal + merging; returns changes."""
    changes = _thread_jumps(cfg)
    changes += _remove_unreachable(cfg)
    changes += _merge_chains(cfg)
    changes += _remove_unreachable(cfg)
    return changes
