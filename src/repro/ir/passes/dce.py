"""Dead-code elimination driven by global liveness.

A non-terminator instruction is removed when its destination register is
dead after it and it has no side effect.  Side-effecting (kept even when
their result is dead):

* stores and terminators (obviously);
* integer/float division and modulo — they can trap on a zero divisor,
  and optimization must not move or remove a trap;
* ``sqrt`` — traps on negative input.

Dead *loads* are removed: a well-formed program's loads cannot trap, and
deleting them is precisely the kind of memory-traffic optimization a DVS
compiler wants reflected in the profile.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.instructions import BinOp, Instruction, Store, UnOp
from repro.ir.passes.liveness import compute_liveness

_TRAPPING_BINOPS = {"div", "mod", "fdiv"}
_TRAPPING_UNOPS = {"sqrt"}


def _has_side_effect(instr: Instruction) -> bool:
    if instr.is_terminator or isinstance(instr, Store):
        return True
    if isinstance(instr, BinOp) and instr.op in _TRAPPING_BINOPS:
        return True
    if isinstance(instr, UnOp) and instr.op in _TRAPPING_UNOPS:
        return True
    return False


def eliminate_dead_code(cfg: CFG) -> int:
    """Remove dead instructions in place; returns instructions removed.

    One liveness solve covers the whole sweep: removing a dead
    instruction can only *shrink* live sets, so every instruction dead
    under the pre-pass solution stays dead.  (Cascading chains are
    collected by the local backward scan within each block, and the
    pipeline's fixpoint loop handles cross-block cascades.)
    """
    liveness = compute_liveness(cfg)
    removed = 0
    for label, block in cfg.blocks.items():
        live = set(liveness.live_out[label])
        kept_reversed: list[Instruction] = []
        for instr in reversed(block.instructions):
            defined = instr.defs()
            if (
                defined is not None
                and defined not in live
                and not _has_side_effect(instr)
            ):
                removed += 1
                continue
            kept_reversed.append(instr)
            if defined is not None:
                live.discard(defined)
            live.update(instr.uses())
        block.instructions = list(reversed(kept_reversed))
    return removed
