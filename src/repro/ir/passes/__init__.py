"""IR optimization passes.

The DVS scheduler is a compiler pass; these are the cleanup passes that
would surround it in a real compiler.  All passes preserve observable
semantics (return value, memory effects) — the test suite checks
optimized-vs-unoptimized equivalence on the whole workload suite and on
randomized programs.

* :mod:`.constfold`  — local constant folding + branch-on-constant
  simplification;
* :mod:`.copyprop`   — local copy propagation;
* :mod:`.liveness`   — global backwards liveness analysis;
* :mod:`.dce`        — dead-code elimination driven by liveness;
* :mod:`.simplify`   — CFG cleanup: jump threading through empty blocks,
  unreachable-block removal;
* :mod:`.pipeline`   — fixpoint driver running the above in order.

Run passes *before* profiling; the DVS formulation then sees the
optimized CFG's edges.
"""

from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.copyprop import propagate_copies
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.liveness import LivenessInfo, compute_liveness
from repro.ir.passes.simplify import simplify_cfg
from repro.ir.passes.pipeline import PassResult, optimize

__all__ = [
    "LivenessInfo",
    "PassResult",
    "compute_liveness",
    "eliminate_dead_code",
    "fold_constants",
    "optimize",
    "propagate_copies",
    "simplify_cfg",
]
