"""Local copy propagation.

Within a block, after ``dst = src`` every use of ``dst`` can read ``src``
directly until either register is redefined.  Propagation chains resolve
transitively (``b = a; c = b`` reads ``a`` for ``c``'s source), and the
now-bypassed moves become dead for DCE to collect.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    Branch,
    Instruction,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)


def propagate_copies(cfg: CFG) -> int:
    """Rewrite uses through local copies in place; returns uses rewritten."""
    rewritten = 0
    for block in cfg:
        copies: dict[str, str] = {}  # dst -> original source

        def resolve(reg: str) -> str:
            seen = set()
            while reg in copies and reg not in seen:
                seen.add(reg)
                reg = copies[reg]
            return reg

        def kill(reg: str) -> None:
            copies.pop(reg, None)
            for key in [k for k, v in copies.items() if v == reg]:
                del copies[key]

        for instr in block.instructions:
            rewritten += _rewrite_uses(instr, resolve)
            if isinstance(instr, Move):
                source = resolve(instr.src)
                kill(instr.dst)
                if source != instr.dst:
                    copies[instr.dst] = source
            else:
                defined = instr.defs()
                if defined is not None:
                    kill(defined)
    return rewritten


def _rewrite_uses(instr: Instruction, resolve) -> int:
    """Replace each used register with its resolved source; returns count."""
    changed = 0

    def swap(value: str) -> str:
        nonlocal changed
        resolved = resolve(value)
        if resolved != value:
            changed += 1
        return resolved

    if isinstance(instr, Move):
        instr.src = swap(instr.src)
    elif isinstance(instr, BinOp):
        instr.lhs = swap(instr.lhs)
        instr.rhs = swap(instr.rhs)
    elif isinstance(instr, UnOp):
        instr.src = swap(instr.src)
    elif isinstance(instr, Load):
        instr.base = swap(instr.base)
    elif isinstance(instr, Store):
        instr.src = swap(instr.src)
        instr.base = swap(instr.base)
    elif isinstance(instr, Branch):
        instr.cond = swap(instr.cond)
    elif isinstance(instr, Ret):
        if instr.value is not None:
            instr.value = swap(instr.value)
    return changed
