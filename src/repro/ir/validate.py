"""Structural validation of CFGs.

Run after the frontend lowers a program and before anything executes it, so
the simulator and formulation can assume a well-formed graph.
"""

from __future__ import annotations

from repro.errors import IRValidationError
from repro.ir.cfg import CFG
from repro.ir.instructions import Instruction


def validate_cfg(cfg: CFG) -> None:
    """Check all structural invariants; raises :class:`IRValidationError`.

    Invariants:

    * the CFG has an entry block that exists;
    * every block is terminated, and only its last instruction is a terminator;
    * every branch/jump target names an existing block;
    * at least one reachable block returns;
    * every block is reachable from the entry (dead blocks indicate a
      frontend bug and would skew profiles);
    * array regions do not overlap.
    """
    if not cfg.blocks:
        raise IRValidationError(f"{cfg.name}: CFG has no blocks")
    if cfg.entry not in cfg.blocks:
        raise IRValidationError(f"{cfg.name}: entry {cfg.entry!r} does not exist")

    for label, block in cfg.blocks.items():
        if label != block.label:
            raise IRValidationError(f"{cfg.name}: key {label!r} != block label {block.label!r}")
        if not block.is_terminated:
            raise IRValidationError(f"{cfg.name}: block {label!r} lacks a terminator")
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise IRValidationError(
                    f"{cfg.name}: block {label!r} has a terminator mid-block: {instr!r}"
                )
        for target in block.successors():
            if target not in cfg.blocks:
                raise IRValidationError(
                    f"{cfg.name}: block {label!r} branches to missing block {target!r}"
                )

    reachable = cfg.reachable()
    unreachable = set(cfg.blocks) - reachable
    if unreachable:
        raise IRValidationError(
            f"{cfg.name}: unreachable blocks: {sorted(unreachable)}"
        )
    if not any(not cfg.blocks[label].successors() for label in reachable):
        raise IRValidationError(f"{cfg.name}: no reachable return block")

    _validate_arrays(cfg)


def _validate_arrays(cfg: CFG) -> None:
    regions = sorted(
        (base, base + length * cfg.element_size, name)
        for name, (base, length) in cfg.arrays.items()
    )
    for (start_a, end_a, name_a), (start_b, _end_b, name_b) in zip(regions, regions[1:]):
        if start_b < end_a:
            raise IRValidationError(
                f"{cfg.name}: arrays {name_a!r} and {name_b!r} overlap"
            )


def count_op_classes(cfg: CFG) -> dict[str, int]:
    """Static instruction mix by op class (diagnostic helper)."""
    counts: dict[str, int] = {}
    for block in cfg:
        for instr in block.instructions:
            key = instr.op_class.name
            counts[key] = counts.get(key, 0) + 1
    return counts
