"""Intermediate representation substrate.

Workload programs are represented as a control-flow graph (CFG) of basic
blocks over a small RISC-like virtual instruction set.  This is the level
at which everything else operates:

* the frontend (:mod:`repro.lang`) lowers source programs to a CFG;
* the machine simulator (:mod:`repro.simulator`) executes CFGs with a
  timing/energy model;
* the profiler (:mod:`repro.profiling`) counts CFG edges and local paths;
* the MILP formulation (:mod:`repro.core.milp`) assigns a DVS mode to every
  CFG edge.

The ISA is deliberately simple — virtual registers, explicit loads/stores
against a flat byte-addressed data memory, and class-tagged operations so
the energy model can charge per-class activation energies (Wattch-style).
"""

from repro.ir.instructions import (
    BinOp,
    Branch,
    Const,
    Instruction,
    Jump,
    Load,
    Move,
    OpClass,
    Ret,
    Store,
    UnOp,
)
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import CFG, Edge
from repro.ir.builder import FunctionBuilder
from repro.ir.loops import LoopInfo, compute_dominators, find_natural_loops
from repro.ir.interp import InterpResult, interpret
from repro.ir.validate import validate_cfg

__all__ = [
    "BasicBlock",
    "BinOp",
    "Branch",
    "CFG",
    "Const",
    "Edge",
    "FunctionBuilder",
    "Instruction",
    "InterpResult",
    "Jump",
    "Load",
    "LoopInfo",
    "Move",
    "OpClass",
    "Ret",
    "Store",
    "UnOp",
    "compute_dominators",
    "find_natural_loops",
    "interpret",
    "validate_cfg",
]
