"""A fluent builder for constructing CFGs programmatically.

The frontend lowers source code through this builder; tests and synthetic
workloads also use it directly to assemble small graphs without writing
source text.
"""

from __future__ import annotations

import itertools

from repro.errors import IRError
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    Branch,
    Const,
    Jump,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)


class FunctionBuilder:
    """Builds a :class:`~repro.ir.cfg.CFG` block by block.

    Usage::

        fb = FunctionBuilder("dot")
        a = fb.add_array("a", 256)
        entry = fb.new_block("entry")
        fb.set_current(entry)
        zero = fb.const(0)
        ...
        fb.ret(total)
        cfg = fb.finish()
    """

    def __init__(self, name: str, element_size: int = 4) -> None:
        self.cfg = CFG(name=name, element_size=element_size)
        self.current: BasicBlock | None = None
        self._temp_counter = itertools.count()
        self._label_counter = itertools.count()

    # -- structure -------------------------------------------------------------

    def new_block(self, label: str | None = None) -> BasicBlock:
        """Create (but do not enter) a new block with a fresh/explicit label."""
        if label is None:
            label = f"bb{next(self._label_counter)}"
        block = BasicBlock(label)
        self.cfg.add_block(block)
        return block

    def set_current(self, block: BasicBlock) -> BasicBlock:
        """Make ``block`` the insertion point for subsequent instructions."""
        self.current = block
        return block

    def block(self, label: str | None = None) -> BasicBlock:
        """Create a new block and enter it."""
        return self.set_current(self.new_block(label))

    def fresh_temp(self) -> str:
        return f"%t{next(self._temp_counter)}"

    def add_array(self, name: str, length: int) -> int:
        """Declare a data array; returns its base address."""
        return self.cfg.add_array(name, length)

    def _emit(self, instruction):
        if self.current is None:
            raise IRError("no current block — call block()/set_current() first")
        return self.current.append(instruction)

    # -- instruction helpers -----------------------------------------------------

    def const(self, value: float, dst: str | None = None) -> str:
        dst = dst or self.fresh_temp()
        self._emit(Const(dst, value))
        return dst

    def move(self, src: str, dst: str | None = None) -> str:
        dst = dst or self.fresh_temp()
        self._emit(Move(dst, src))
        return dst

    def binop(self, op: str, lhs: str, rhs: str, dst: str | None = None) -> str:
        dst = dst or self.fresh_temp()
        self._emit(BinOp(op, dst, lhs, rhs))
        return dst

    def unop(self, op: str, src: str, dst: str | None = None) -> str:
        dst = dst or self.fresh_temp()
        self._emit(UnOp(op, dst, src))
        return dst

    def load(self, base: str, offset: int = 0, dst: str | None = None) -> str:
        dst = dst or self.fresh_temp()
        self._emit(Load(dst, base, offset))
        return dst

    def store(self, src: str, base: str, offset: int = 0) -> None:
        self._emit(Store(src, base, offset))

    def load_array(self, array: str, index_reg: str, dst: str | None = None) -> str:
        """Load ``array[index]``: computes the byte address then loads."""
        addr = self.array_address(array, index_reg)
        return self.load(addr, 0, dst)

    def store_array(self, array: str, index_reg: str, src: str) -> None:
        """Store ``array[index] = src``."""
        addr = self.array_address(array, index_reg)
        self.store(src, addr, 0)

    def array_address(self, array: str, index_reg: str) -> str:
        """Compute the byte address of ``array[index]`` into a temp."""
        base = self.cfg.array_base(array)
        size = self.const(self.cfg.element_size)
        scaled = self.binop("mul", index_reg, size)
        base_reg = self.const(base)
        return self.binop("add", scaled, base_reg)

    # -- terminators -------------------------------------------------------------

    def branch(self, cond: str, if_true: BasicBlock | str, if_false: BasicBlock | str) -> None:
        self._emit(Branch(cond, _label(if_true), _label(if_false)))
        self.current = None

    def jump(self, target: BasicBlock | str) -> None:
        self._emit(Jump(_label(target)))
        self.current = None

    def ret(self, value: str | None = None) -> None:
        self._emit(Ret(value))
        self.current = None

    # -- finalization ---------------------------------------------------------------

    def finish(self, validate: bool = True) -> CFG:
        """Return the built CFG, validating structure by default."""
        if validate:
            from repro.ir.validate import validate_cfg

            validate_cfg(self.cfg)
        return self.cfg


def _label(block_or_label: BasicBlock | str) -> str:
    if isinstance(block_or_label, BasicBlock):
        return block_or_label.label
    return block_or_label
