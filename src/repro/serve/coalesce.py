"""Single-flight request coalescing.

Identical requests — same canonical document, hence same request key —
must cost one DAG run no matter how many clients submit them:

* a duplicate of a **queued or running** job joins it (the in-flight
  single-flight map), and every subscriber gets the same response;
* a duplicate of a **recently finished** job replays the stored
  response from a bounded LRU without touching the queue at all;
* only a genuinely novel request creates a job and enters the queue.

This sits *above* the artifact cache: the cache dedupes stage artifacts
across time, the single-flight map dedupes whole in-flight runs across
concurrent clients.  Counters: ``serve.requests`` (all submissions),
``serve.requests.coalesced`` (joined in flight), ``serve.requests.replayed``
(LRU hits), ``serve.dag.runs`` (actual executions).
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro import observe
from repro.serve.protocol import ParsedRequest

#: Default byte budget for the finished-job LRU (canonical JSON bytes of
#: the stored response bodies).  Large sweep responses evict early so the
#: LRU cannot grow without bound even at a small entry count.
DEFAULT_DONE_MAX_BYTES = 64 * 1024 * 1024


def _result_bytes(result: dict[str, Any] | None) -> int:
    if result is None:
        return 0
    try:
        return len(json.dumps(result, sort_keys=True, separators=(",", ":")))
    except (TypeError, ValueError):
        return 0

#: Job lifecycle states.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States in which a job has a final answer.
TERMINAL = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One coalesced unit of work: a canonical request and its outcome."""

    request: ParsedRequest
    state: str = "queued"
    created: float = field(default_factory=observe.clock)
    started: float | None = None
    finished: float | None = None
    submissions: int = 1  # clients that asked for this job
    events: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] | None = None  # response body when done
    result_bytes: int = 0  # canonical JSON size of result, set on finish
    error: str | None = None
    http_status: int = 200
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    events_cond: asyncio.Condition = field(default_factory=asyncio.Condition)

    @property
    def job_id(self) -> str:
        return self.request.job_id

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    @property
    def queued_s(self) -> float | None:
        if self.started is None:
            return None
        return self.started - self.created

    @property
    def run_s(self) -> float | None:
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def describe(self) -> dict[str, Any]:
        """The ``job`` object embedded in every response."""
        record: dict[str, Any] = {
            "id": self.job_id,
            "state": self.state,
            "tenant": self.tenant,
            "submissions": self.submissions,
            "experiments": len(self.request.experiments),
            "events": len(self.events),
        }
        if self.queued_s is not None:
            record["queued_s"] = self.queued_s
        if self.run_s is not None:
            record["run_s"] = self.run_s
        if self.error is not None:
            record["error"] = self.error
        return record


class JobTable:
    """The single-flight map plus a bounded LRU of finished jobs.

    The LRU is bounded twice over: by entry count (``done_capacity``)
    and by the canonical JSON bytes of the stored response bodies
    (``done_max_bytes``), whichever bites first.  Evictions bump
    ``serve.coalesce.evictions``; the current payload total is the
    ``serve.coalesce.bytes`` gauge.
    """

    def __init__(self, done_capacity: int = 256,
                 done_max_bytes: int = DEFAULT_DONE_MAX_BYTES) -> None:
        self.inflight: dict[str, Job] = {}  # request key -> queued/running
        self.done: OrderedDict[str, Job] = OrderedDict()  # LRU, newest last
        self.done_capacity = done_capacity
        self.done_max_bytes = done_max_bytes
        self.done_bytes = 0

    def get(self, job_id: str) -> Job | None:
        """Look a job up by its public id (inflight first, then LRU)."""
        for job in self.inflight.values():
            if job.job_id == job_id:
                return job
        for job in self.done.values():
            if job.job_id == job_id:
                return job
        return None

    def submit(self, request: ParsedRequest) -> tuple[Job, str]:
        """Route one submission; returns ``(job, disposition)``.

        Disposition is ``"new"`` (caller must enqueue the job),
        ``"coalesced"`` (joined a queued/running job) or ``"replayed"``
        (served from the finished-job LRU).
        """
        observe.add("serve.requests")
        job = self.inflight.get(request.request_key)
        if job is not None:
            job.submissions += 1
            observe.add("serve.requests.coalesced")
            return job, "coalesced"
        job = self.done.get(request.request_key)
        if job is not None:
            self.done.move_to_end(request.request_key)
            job.submissions += 1
            observe.add("serve.requests.replayed")
            return job, "replayed"
        job = Job(request=request)
        self.inflight[request.request_key] = job
        return job, "new"

    def finish(self, job: Job) -> None:
        """Move a terminal job from the in-flight map into the LRU."""
        self.inflight.pop(job.request.request_key, None)
        # Cancelled jobs carry no reusable answer; do not replay them.
        if job.state == "cancelled":
            return
        self._admit_done(job)

    def rehydrate(self, job: Job) -> None:
        """Insert a terminal job recovered from the job store."""
        self._admit_done(job)

    def _admit_done(self, job: Job) -> None:
        key = job.request.request_key
        previous = self.done.pop(key, None)
        if previous is not None:
            self.done_bytes -= previous.result_bytes
        job.result_bytes = _result_bytes(job.result)
        self.done[key] = job
        self.done_bytes += job.result_bytes
        while self.done and (len(self.done) > self.done_capacity
                             or self.done_bytes > self.done_max_bytes):
            _, evicted = self.done.popitem(last=False)
            self.done_bytes -= evicted.result_bytes
            observe.add("serve.coalesce.evictions")
        observe.gauge("serve.coalesce.bytes", self.done_bytes)

    def counts(self) -> dict[str, int]:
        states = {"queued": 0, "running": 0}
        for job in self.inflight.values():
            states[job.state] = states.get(job.state, 0) + 1
        states["done"] = sum(1 for j in self.done.values()
                             if j.state == "done")
        states["failed"] = sum(1 for j in self.done.values()
                               if j.state == "failed")
        return states
