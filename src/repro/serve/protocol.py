"""Request validation and canonicalization for the optimization service.

Two endpoints accept work:

``POST /v1/optimize``
    One workload at one deadline::

        {"workload": "adpcm", "deadline_frac": 0.5}

``POST /v1/sweep``
    A grid, exactly like ``repro sweep``::

        {"workloads": ["adpcm", "gsm"], "deadline_fracs": [0.35, 0.7],
         "levels": ["xscale", 7]}

Both reduce to the same **canonical request**: a sorted, deduplicated,
default-filled grid description.  Its SHA-256 digest is the request
key — the single-flight identity used by :mod:`repro.serve.coalesce` —
so two clients submitting the same science (in any field order, with or
without explicit defaults) coalesce onto one DAG run, and the DAG's
tasks land on the same :mod:`repro.runtime.cache` artifact keys a CLI
sweep would use.

``POST /v1/taskgraph``
    A multi-core task-graph grid (:mod:`repro.taskgraph`)::

        {"shapes": ["fork-join"], "tasks": 6, "cores": [1, 2, 4],
         "deadline_fracs": [0.0, 0.5]}

    Canonicalizes to a document tagged ``"type": "taskgraph"`` (the
    single-stream endpoints carry no tag, keeping their stored request
    keys stable), with sorted/deduplicated shape, core and deadline
    axes — so a served taskgraph request lands on the same experiment
    ids (and artifact keys) as ``repro taskgraph sweep`` over the same
    axes.

Optional non-identity fields: ``tenant`` (fair-queueing bucket,
default ``"anon"``) and ``wait`` (block until the job finishes instead
of returning 202).  Neither enters the request key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError, ReproError
from repro.runtime.dag import ExperimentSpec, MachineSpec
from repro.workloads import get_workload

#: Request schema version (bumped with incompatible changes).
PROTOCOL_VERSION = 1

#: Hard ceiling on experiments per request regardless of server config.
ABSOLUTE_MAX_GRID = 256

_BACKENDS = ("auto", "scipy", "native", "continuous")


@dataclass(frozen=True)
class ParsedRequest:
    """A validated, canonicalized submission."""

    canonical: dict[str, Any]  # the identity-defining request document
    request_key: str  # sha256 over the canonical JSON
    tenant: str
    wait: bool
    experiments: tuple[ExperimentSpec, ...]
    solver_budget_s: float | None
    solver_backend: str

    @property
    def job_id(self) -> str:
        """Public job identifier (a prefix of the request key)."""
        return f"job-{self.request_key[:16]}"

    @property
    def cost(self) -> int:
        """Fair-queueing cost: the work this request will run.

        Single-stream experiments cost 1 each; taskgraph grid points
        cost their task count (``queue_cost``), so a submission
        sweeping a 12-task graph over 4 deadlines is billed 48, not 4 —
        big graphs cannot starve small tenants at equal priority.
        """
        return sum(getattr(spec, "queue_cost", 1)
                   for spec in self.experiments)


def _fail(message: str) -> None:
    raise ProtocolError(message)


def _as_list(value: Any, name: str) -> list[Any]:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _workloads(value: Any) -> list[str]:
    names = _as_list(value, "workloads")
    if not names:
        _fail("request selects no workloads")
    out = []
    for name in names:
        if not isinstance(name, str) or not name:
            _fail(f"workload names must be non-empty strings, got {name!r}")
        try:
            get_workload(name)
        except ReproError:
            _fail(f"unknown workload {name!r} (see `repro list`)")
        out.append(name)
    return sorted(set(out))


def _deadline_fracs(value: Any) -> list[float]:
    fracs = _as_list(value, "deadline_fracs")
    if not fracs:
        _fail("request selects no deadline fractions")
    out = []
    for frac in fracs:
        if isinstance(frac, bool) or not isinstance(frac, (int, float)):
            _fail(f"deadline fractions must be numbers, got {frac!r}")
        frac = float(frac)
        if not 0.0 <= frac <= 1.0:
            _fail(f"deadline fraction {frac} outside [0, 1]")
        out.append(frac)
    return sorted(set(out))


def _levels(value: Any) -> list[int | None]:
    if value is None:
        return [None]
    entries = _as_list(value, "levels")
    out: list[int | None] = []
    for entry in entries:
        if entry is None or entry in ("xscale", "xscale-3"):
            out.append(None)
            continue
        if isinstance(entry, bool) or not isinstance(entry, int):
            _fail(f"mode-table levels must be integers or 'xscale', "
                  f"got {entry!r}")
        if entry < 2:
            _fail(f"mode tables need at least 2 levels, got {entry}")
        out.append(entry)
    if not out:
        _fail("request selects no mode tables")
    # None (the XScale-3 table) sorts first; integer tables ascend.
    return sorted(set(out), key=lambda lv: (-1 if lv is None else lv))


def _seed(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(f"seed must be an integer, got {value!r}")
    return value


def _capacitance(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"capacitance_uf must be a number, got {value!r}")
    value = float(value)
    if not value > 0:
        _fail(f"capacitance_uf must be positive, got {value}")
    return value


def _budget(value: Any) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"solver_budget_s must be a number, got {value!r}")
    value = float(value)
    if not value > 0:
        _fail(f"solver_budget_s must be positive, got {value}")
    return value


def _backend(value: Any) -> str:
    if value not in _BACKENDS:
        _fail(f"solver_backend must be one of {_BACKENDS}, got {value!r}")
    return value


def _category(value: Any, workloads: list[str]) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        _fail(f"category must be a non-empty string, got {value!r}")
    for name in workloads:
        if value not in get_workload(name).categories:
            _fail(f"workload {name!r} has no input category {value!r}")
    return value


def _tenant(value: Any) -> str:
    if value is None:
        return "anon"
    if not isinstance(value, str) or not value or len(value) > 64:
        _fail(f"tenant must be a string of 1-64 characters, got {value!r}")
    return value


def _wait(value: Any) -> bool:
    if value is None:
        return False
    if not isinstance(value, bool):
        _fail(f"wait must be a boolean, got {value!r}")
    return value


def _shapes(value: Any) -> list[str]:
    from repro.taskgraph.model import GRAPH_SHAPES

    names = _as_list(value, "shapes")
    if not names:
        _fail("request selects no graph shapes")
    out = []
    for name in names:
        if name not in GRAPH_SHAPES:
            _fail(f"unknown task-graph shape {name!r} "
                  f"(want one of {', '.join(GRAPH_SHAPES)})")
        out.append(name)
    return sorted(set(out))


def _graph_tasks(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(f"tasks must be an integer, got {value!r}")
    if not 3 <= value <= 32:
        _fail(f"tasks must be in [3, 32], got {value}")
    return value


def _cores(value: Any) -> list[int]:
    counts = _as_list(value, "cores")
    if not counts:
        _fail("request selects no core counts")
    out = []
    for count in counts:
        if isinstance(count, bool) or not isinstance(count, int):
            _fail(f"core counts must be integers, got {count!r}")
        if not 1 <= count <= 64:
            _fail(f"core counts must be in [1, 64], got {count}")
        out.append(count)
    return sorted(set(out))


_KNOWN_FIELDS = {
    "workload", "workloads", "deadline_frac", "deadline_fracs", "levels",
    "category", "seed", "capacitance_uf", "solver_budget_s",
    "solver_backend", "tenant", "wait",
}

#: Fields the taskgraph endpoint accepts instead of workload selectors.
_TG_FIELDS = {
    "shape", "shapes", "tasks", "cores", "deadline_frac", "deadline_fracs",
    "levels", "seed", "capacitance_uf", "solver_budget_s",
    "solver_backend", "tenant", "wait",
}


def canonical_json(document: dict[str, Any]) -> str:
    """The canonical serialization the request key is computed over."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def parse_request(body: bytes | str | dict[str, Any],
                  endpoint: str = "sweep",
                  max_grid: int = 64) -> ParsedRequest:
    """Validate a submission body and canonicalize it into a grid.

    Args:
        body: raw JSON bytes/text, or an already-decoded document.
        endpoint: ``"optimize"`` (single workload/deadline fields) or
            ``"sweep"`` (plural fields).  Either endpoint accepts either
            spelling; the endpoint only picks the *required* fields.
        max_grid: server-configured ceiling on experiments per request.

    Raises:
        ProtocolError: any malformed field, unknown workload, or a grid
            larger than ``max_grid`` (status 400 in every case).
    """
    if isinstance(body, (bytes, str)):
        if not body:
            _fail("empty request body (expected a JSON object)")
        try:
            document = json.loads(body)
        except json.JSONDecodeError as exc:
            _fail(f"request body is not valid JSON: {exc}")
    else:
        document = body
    if not isinstance(document, dict):
        _fail(f"request body must be a JSON object, "
              f"got {type(document).__name__}")
    if endpoint == "taskgraph":
        return _parse_taskgraph(document, max_grid)
    unknown = sorted(set(document) - _KNOWN_FIELDS)
    if unknown:
        _fail(f"unknown request field(s): {', '.join(unknown)}")

    if endpoint == "optimize":
        if "workload" not in document and "workloads" not in document:
            _fail("optimize request needs a 'workload'")
        if ("deadline_frac" not in document
                and "deadline_fracs" not in document):
            _fail("optimize request needs a 'deadline_frac'")
    elif endpoint == "sweep":
        if "workloads" not in document and "workload" not in document:
            _fail("sweep request needs 'workloads'")
    else:  # pragma: no cover - internal misuse
        raise ProtocolError(f"unknown endpoint {endpoint!r}", status=404)

    workloads = _workloads(document.get("workloads",
                                        document.get("workload")))
    fracs = _deadline_fracs(document.get(
        "deadline_fracs", document.get("deadline_frac", [0.35, 0.7])))
    levels = _levels(document.get("levels"))
    category = _category(document.get("category"), workloads)
    seed = _seed(document.get("seed", 0))
    capacitance_uf = _capacitance(document.get("capacitance_uf", 10.0))
    solver_budget_s = _budget(document.get("solver_budget_s"))
    solver_backend = _backend(document.get("solver_backend", "auto"))
    tenant = _tenant(document.get("tenant"))
    wait = _wait(document.get("wait"))

    canonical: dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "workloads": workloads,
        "deadline_fracs": fracs,
        "levels": ["xscale-3" if lv is None else lv for lv in levels],
        "category": category,
        "seed": seed,
        "capacitance_uf": capacitance_uf,
        "solver_budget_s": solver_budget_s,
        "solver_backend": solver_backend,
    }

    experiments = build_experiments(canonical)
    limit = min(max_grid, ABSOLUTE_MAX_GRID)
    if len(experiments) > limit:
        _fail(f"request grid has {len(experiments)} experiments; "
              f"this server accepts at most {limit} per request")

    key = hashlib.sha256(
        canonical_json(canonical).encode("utf-8")).hexdigest()
    return ParsedRequest(
        canonical=canonical,
        request_key=key,
        tenant=tenant,
        wait=wait,
        experiments=tuple(experiments),
        solver_budget_s=solver_budget_s,
        solver_backend=solver_backend,
    )


def _parse_taskgraph(document: dict[str, Any], max_grid: int) -> ParsedRequest:
    """Validate and canonicalize a ``/v1/taskgraph`` submission."""
    unknown = sorted(set(document) - _TG_FIELDS)
    if unknown:
        _fail(f"unknown request field(s): {', '.join(unknown)}")
    if "shapes" not in document and "shape" not in document:
        _fail("taskgraph request needs 'shapes'")

    shapes = _shapes(document.get("shapes", document.get("shape")))
    tasks = _graph_tasks(document.get("tasks", 6))
    cores = _cores(document.get("cores", [1, 2]))
    fracs = _deadline_fracs(document.get(
        "deadline_fracs", document.get("deadline_frac", [0.35, 0.7])))
    levels = _levels(document.get("levels"))
    seed = _seed(document.get("seed", 0))
    capacitance_uf = _capacitance(document.get("capacitance_uf", 10.0))
    solver_budget_s = _budget(document.get("solver_budget_s"))
    solver_backend = _backend(document.get("solver_backend", "auto"))
    tenant = _tenant(document.get("tenant"))
    wait = _wait(document.get("wait"))

    canonical: dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "type": "taskgraph",
        "shapes": shapes,
        "tasks": tasks,
        "cores": cores,
        "deadline_fracs": fracs,
        "levels": ["xscale-3" if lv is None else lv for lv in levels],
        "seed": seed,
        "capacitance_uf": capacitance_uf,
        "solver_budget_s": solver_budget_s,
        "solver_backend": solver_backend,
    }

    experiments = build_experiments(canonical)
    limit = min(max_grid, ABSOLUTE_MAX_GRID)
    if len(experiments) > limit:
        _fail(f"request grid has {len(experiments)} experiments; "
              f"this server accepts at most {limit} per request")

    key = hashlib.sha256(
        canonical_json(canonical).encode("utf-8")).hexdigest()
    return ParsedRequest(
        canonical=canonical,
        request_key=key,
        tenant=tenant,
        wait=wait,
        experiments=tuple(experiments),
        solver_budget_s=solver_budget_s,
        solver_backend=solver_backend,
    )


def from_canonical(document: dict[str, Any], tenant: str = "anon",
                   wait: bool = False) -> ParsedRequest:
    """Re-parse a stored canonical document (job-store recovery).

    The canonical document embeds ``version``, which is not a request
    field, so recovery checks it and strips it before re-running
    :func:`parse_request` — against :data:`ABSOLUTE_MAX_GRID`, not the
    server's configured ceiling, so a job this server already admitted
    is never rejected on resume by a smaller ``max_grid``.  Round-trip
    invariant: the recovered request lands on exactly the key it was
    admitted under.

    Raises:
        ProtocolError: the document is not a dict, speaks a different
            protocol version, or no longer validates (e.g. a workload
            that this build does not ship).
    """
    if not isinstance(document, dict):
        raise ProtocolError(
            f"stored request must be a JSON object, "
            f"got {type(document).__name__}")
    version = document.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"stored request has protocol version {version!r}; "
            f"this build speaks {PROTOCOL_VERSION}")
    endpoint = "taskgraph" if document.get("type") == "taskgraph" else "sweep"
    body = {key: value for key, value in document.items()
            if key not in ("version", "type")}
    body["tenant"] = tenant
    body["wait"] = wait
    return parse_request(body, endpoint=endpoint, max_grid=ABSOLUTE_MAX_GRID)


def build_experiments(canonical: dict[str, Any]) -> list[ExperimentSpec]:
    """Expand a canonical request into its experiment grid.

    Mirrors :func:`repro.runtime.sweep.build_grid` (or, for documents
    tagged ``"type": "taskgraph"``,
    :func:`repro.taskgraph.pipeline.build_tg_grid`) so a served request
    and a CLI sweep over the same axes produce the same experiment ids
    (and therefore identical ``results`` rows).
    """
    if canonical.get("type") == "taskgraph":
        from repro.taskgraph.pipeline import build_tg_grid

        return build_tg_grid(
            shapes=tuple(canonical["shapes"]),
            tasks=canonical["tasks"],
            cores=tuple(canonical["cores"]),
            deadline_fracs=tuple(canonical["deadline_fracs"]),
            seed=canonical["seed"],
            levels=tuple(None if lv == "xscale-3" else lv
                         for lv in canonical["levels"]),
            capacitance_uf=canonical["capacitance_uf"],
        )
    experiments: list[ExperimentSpec] = []
    for workload in canonical["workloads"]:
        for level in canonical["levels"]:
            machine = MachineSpec(
                levels=None if level == "xscale-3" else level,
                capacitance_uf=canonical["capacitance_uf"],
            )
            for frac in canonical["deadline_fracs"]:
                experiments.append(ExperimentSpec(
                    workload=workload,
                    deadline_frac=frac,
                    category=canonical["category"],
                    seed=canonical["seed"],
                    machine=machine,
                ))
    return experiments
