"""The asyncio JSON-over-HTTP optimization server.

Zero new dependencies: hand-rolled HTTP/1.1 over ``asyncio`` streams
(request-line + headers + ``Content-Length`` bodies, keep-alive,
chunked transfer for the event stream).  Endpoints::

    POST /v1/optimize        one workload at one deadline
    POST /v1/sweep           a grid, like `repro sweep`
    POST /v1/taskgraph       a multi-core task-graph grid
    GET  /v1/jobs/<id>       job status document
    GET  /v1/jobs/<id>/events    chunked NDJSON progress stream
    GET  /v1/metrics         live observe counters + derived ratios
    GET  /healthz            liveness, queue depths, worker pids

Execution model: the event loop owns all bookkeeping (queue, job
table); each admitted job runs on a thread from a small run pool, and
that thread drives the existing DAG executor against the **shared**
:class:`~repro.runtime.executor.WorkerPool` — warm worker processes
that persist across requests, keeping solver warm-basis registries and
compiled-simulator caches alive.  Identical concurrent submissions
coalesce onto one DAG run (:mod:`repro.serve.coalesce`); admission is
bounded and tenant-fair (:mod:`repro.serve.queueing`).

Responses for finished work contain the *exact* rows ``repro sweep``
would write to ``results.jsonl`` (same record builder, same canonical
JSON), so a served answer is byte-comparable to a local run.  A job
whose verification fails — or whose worker died past its retry budget —
fails **closed**: a clean 5xx JSON error, never a partial or unverified
schedule.

Graceful drain (SIGTERM/SIGINT): new submissions get 503, queued jobs
are cancelled (their waiters get 503), in-flight jobs finish and answer
their clients, then the process exits — 0 for SIGTERM, 130 for SIGINT,
matching the CLI's documented ladder.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import sys
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro import observe
from repro.errors import ProtocolError, ServeError
from repro.resilience import EXIT_INTERRUPTED, EXIT_OK, faultplane
from repro.runtime import manifest as manifest_mod
from repro.runtime.cache import ArtifactStore
from repro.runtime.dag import build_task_graph
from repro.runtime.executor import ExecutorConfig, FaultSpec, WorkerPool, run_graph
from repro.serve import protocol
from repro.serve.coalesce import DEFAULT_DONE_MAX_BYTES, Job, JobTable
from repro.serve.jobstore import JobStore, StoredJob
from repro.serve.queueing import FairQueue, QueueFull

logger = logging.getLogger("repro.serve")

#: Maximum request head (request line + headers) the parser will read.
MAX_HEAD_BYTES = 16 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8787  # 0 -> ephemeral (the chosen port is printed)
    jobs: int = 2  # warm worker processes (the DAG execution pool)
    runs: int = 2  # DAG runs in flight at once
    max_queue: int = 64  # admission bound (queued jobs)
    max_grid: int = 64  # experiments per request
    max_body: int = 1 << 20  # request body ceiling (413 beyond)
    cache_dir: str | None = None  # artifact store; None disables caching
    store_dir: str | None = None  # job store; None disables durability
    resume: bool = False  # recover jobs from store_dir on start
    done_capacity: int = 256  # finished-job LRU entry bound
    done_max_bytes: int = DEFAULT_DONE_MAX_BYTES  # finished-job LRU byte bound
    task_timeout_s: float | None = 600.0
    retries: int = 1
    solver_backend: str = "auto"  # default when a request does not choose
    tenant_weights: dict[str, float] = field(default_factory=dict)
    retry_after_s: int = 1  # the 429 Retry-After hint
    fault: FaultSpec | None = None  # chaos: fault-inject executor tasks


def _dump(document: Any) -> bytes:
    """Canonical response JSON — the same form ``results.jsonl`` uses."""
    return (json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _head(status: int, extra: dict[str, str] | None = None,
          length: int | None = None, chunked: bool = False) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             "Content-Type: application/json"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class _HttpRequest:
    """One parsed request: method, path, headers, body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str,
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


class ReproServer:
    """The service: listener, queue, job table, warm pool, run threads."""

    def __init__(self, config: ServeConfig) -> None:
        if config.runs < 1:
            raise ServeError(f"runs must be >= 1, got {config.runs}")
        if config.resume and not config.store_dir:
            raise ServeError("resume requires a job store (store_dir)")
        self.config = config
        self.store = (ArtifactStore(config.cache_dir)
                      if config.cache_dir else None)
        self.jobstore = JobStore(config.store_dir) if config.store_dir else None
        self.pool = WorkerPool(config.jobs)
        self.table = JobTable(done_capacity=config.done_capacity,
                              done_max_bytes=config.done_max_bytes)
        self.queue = FairQueue(max_queue=config.max_queue,
                               weights=dict(config.tenant_weights))
        self._run_threads = ThreadPoolExecutor(
            max_workers=config.runs, thread_name_prefix="repro-serve-run")
        self._running = 0
        self._draining = False
        self._exit_code = EXIT_OK
        self._stop_requested = asyncio.Event()
        self._work_available = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._clients: set[asyncio.Task] = set()
        self._scheduler_task: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._started_at = observe.clock()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, warm the pool, start the scheduler."""
        self._loop = asyncio.get_running_loop()
        if not observe.enabled():
            observe.enable()
        recovered: dict[str, StoredJob] = {}
        if self.jobstore is not None:
            if self.config.resume:
                recovered = self.jobstore.load()
            self.jobstore.start(resume=self.config.resume,
                                recovered=recovered)
        self._server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        self._scheduler_task = asyncio.create_task(self._scheduler())
        for stored in recovered.values():
            self._restore_job(stored)
        # Fork the workers now so the first request finds them warm.
        await self._loop.run_in_executor(None, self.pool.warm_up)

    def _restore_job(self, stored: StoredJob) -> None:
        """Re-materialize one job recovered from the job store.

        Terminal jobs are rehydrated straight into the finished-job LRU
        so duplicate submissions replay the byte-identical stored
        response.  Queued and interrupted (``running``) jobs are
        re-admitted and re-run — their DAG tasks land on the same
        artifact-cache keys, so completed stages are not recomputed.
        """
        try:
            parsed = protocol.from_canonical(stored.request,
                                             tenant=stored.tenant)
        except ProtocolError as error:
            logger.warning("jobstore: dropping unrecoverable job %s…: %s",
                           stored.key[:12], error)
            return
        job = Job(request=parsed)
        if stored.terminal:
            job.state = stored.state
            job.result = stored.result
            job.error = stored.error
            job.http_status = stored.http_status
            job.finished = observe.clock()
            job.done_event.set()
            self.table.rehydrate(job)
            observe.add("serve.jobs.replayed")
            self._emit(job, {"event": "replayed", "from": "jobstore"})
            return
        self.table.inflight[parsed.request_key] = job
        try:
            self.queue.push(parsed.tenant, parsed.cost, job)
        except QueueFull:
            # Stays admitted in the compacted journal; the next resume
            # gets another chance once the queue has room.
            self.table.inflight.pop(parsed.request_key, None)
            logger.warning("jobstore: queue full, deferring recovered "
                           "job %s…", stored.key[:12])
            return
        observe.add("serve.jobs.recovered")
        self._emit(job, {"event": "recovered", "prior_state": stored.state})
        self._work_available.set()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum, code in ((signal.SIGTERM, EXIT_OK),
                             (signal.SIGINT, EXIT_INTERRUPTED)):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_stop, code)
            except (NotImplementedError, RuntimeError):
                # Non-main-thread loops (tests) and exotic platforms:
                # stop via request_stop() instead of a signal.
                break

    def request_stop(self, exit_code: int = EXIT_OK) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if not self._draining:
            self._draining = True
            self._exit_code = exit_code
            logger.info("drain requested (exit code %d)", exit_code)
        self._stop_requested.set()

    async def serve_until_stopped(self) -> int:
        """Run until a stop is requested, then drain; returns exit code."""
        await self._stop_requested.wait()
        return await self.drain()

    async def drain(self) -> int:
        """Cancel queued jobs, let running ones finish, close the listener."""
        self._draining = True
        for job in self.queue.clear():
            self._cancel_job(job)
        # In-flight jobs complete and answer their (possibly waiting)
        # clients; only then stop accepting and tear down.
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self._clients:
            await asyncio.wait(self._clients, timeout=5.0)
        self._run_threads.shutdown(wait=True)
        self.pool.close()
        if self.jobstore is not None:
            self.jobstore.close()
        return self._exit_code

    def abort(self) -> None:
        """Tear the server down *without* draining (crash simulation).

        Queued and running jobs are simply dropped — the state a SIGKILL
        leaves behind — so only the job store knows about them.  Every
        journal append is already fsynced, so there is nothing to flush;
        ``--resume`` on the same store directory recovers the jobs.
        """
        if self._server is not None:
            self._server.close()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        for task in list(self._clients):
            task.cancel()
        self._run_threads.shutdown(wait=False, cancel_futures=True)
        self.pool.close()
        if self.jobstore is not None:
            self.jobstore.close()

    def _cancel_job(self, job: Job) -> None:
        job.state = "cancelled"
        job.error = "server draining"
        job.http_status = 503
        job.finished = observe.clock()
        observe.add("serve.jobs.cancelled")
        self._emit(job, {"event": "cancelled", "reason": "server draining"})
        self.table.finish(job)
        job.done_event.set()

    # -- scheduling --------------------------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            await self._work_available.wait()
            self._work_available.clear()
            while (self._running < self.config.runs and len(self.queue)
                   and not self._draining):
                job = self.queue.pop()
                if job is None or job.terminal:
                    continue
                self._running += 1
                self._idle.clear()
                job.state = "running"
                job.started = observe.clock()
                if self.jobstore is not None:
                    self.jobstore.started(job.request.request_key)
                observe.record("serve.queue_wait_s", job.queued_s or 0.0)
                self._emit(job, {"event": "running"})
                assert self._loop is not None
                future = self._loop.run_in_executor(
                    self._run_threads, self._execute_job, job)
                future.add_done_callback(
                    lambda f, job=job: self._job_finished(job, f))
            observe.gauge("serve.queue.depth", len(self.queue))
            observe.gauge("serve.jobs.running", self._running)

    def _emit(self, job: Job, event: dict[str, Any]) -> None:
        """Append a progress event (loop thread only) and wake streams."""
        event = {"t": observe.clock(), "job": job.job_id, **event}
        job.events.append(event)

        async def _notify() -> None:
            async with job.events_cond:
                job.events_cond.notify_all()

        asyncio.ensure_future(_notify())

    def _emit_threadsafe(self, job: Job, event: dict[str, Any]) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._emit, job, event)

    # -- job execution (run-pool threads) ----------------------------------------

    def _execute_job(self, job: Job) -> dict[str, Any]:
        """Run one job's DAG on the shared warm pool; returns the outcome."""
        request = job.request
        observe.add("serve.dag.runs")
        with observe.span("serve.job", job=job.job_id, tenant=job.tenant,
                          experiments=len(request.experiments)):
            graph = build_task_graph(
                list(request.experiments),
                solver_budget_s=request.solver_budget_s,
                solver_backend=(request.solver_backend
                                if request.solver_backend != "auto"
                                else self.config.solver_backend),
            )

            def on_task(result) -> None:
                self._emit_threadsafe(job, {
                    "event": "task",
                    "task": result.task_id,
                    "status": result.status,
                    "cache": result.cache,
                })

            results = run_graph(
                graph,
                store=self.store,
                config=ExecutorConfig(
                    jobs=self.config.jobs,
                    task_timeout_s=self.config.task_timeout_s,
                    retries=self.config.retries,
                    fault=self.config.fault,
                ),
                on_task=on_task,
                pool=self.pool,
            )
        rows = [manifest_mod.experiment_record(spec, graph, results)
                for spec in sorted(graph.experiments,
                                   key=lambda s: s.experiment_id)]
        failures = sorted(r["experiment"] for r in rows
                          if r["status"] != "ok")
        degraded = sorted(
            r.task_id for r in results.values()
            if r.kind in ("optimize", "tg-solve") and r.ok
            and r.output is not None
            and r.output.get("solver", {}).get("degraded"))
        return {"rows": rows, "failures": failures, "degraded": degraded}

    def _job_finished(self, job: Job, future) -> None:
        """Loop-side completion: finalize state, wake waiters."""
        self._running -= 1
        if self._running == 0:
            self._idle.set()
        self._work_available.set()
        job.finished = observe.clock()
        try:
            outcome = future.result()
        except Exception as error:  # noqa: BLE001 - fails closed as a 5xx
            logger.warning("job %s failed: %s", job.job_id, error)
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            job.http_status = 500
            observe.add("serve.jobs.failed")
            self._emit(job, {"event": "failed", "error": job.error})
        else:
            if outcome["failures"]:
                # Fail closed: some experiment did not verify cleanly —
                # never serve a partial or unverified result set.
                job.state = "failed"
                job.error = (f"{len(outcome['failures'])} experiment(s) "
                             f"failed: {', '.join(outcome['failures'])}")
                job.http_status = 500
                observe.add("serve.jobs.failed")
                self._emit(job, {"event": "failed", "error": job.error})
            else:
                job.state = "done"
                # The response body is a pure function of the request
                # (rows are the deterministic results.jsonl records), so
                # every coalesced subscriber receives identical bytes.
                job.result = {
                    "request": job.request.canonical,
                    "results": outcome["rows"],
                    "degraded": outcome["degraded"],
                }
                observe.add("serve.jobs.done")
                self._emit(job, {"event": "done",
                                 "experiments": len(outcome["rows"]),
                                 "degraded": len(outcome["degraded"])})
        if job.queued_s is not None:
            observe.record("serve.request_latency_s",
                           job.finished - job.created)
        if self.jobstore is not None and job.state in ("done", "failed"):
            self.jobstore.finished(job.request.request_key, job.state,
                                   result=job.result, error=job.error,
                                   http_status=job.http_status)
        self.table.finish(job)
        job.done_event.set()

    # -- HTTP plumbing -----------------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            if faultplane.fire("serve.accept.drop"):
                return  # the finally clause closes the connection unread
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-conversation
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            if faultplane.fire("serve.read.drop"):
                return  # request parsed, then dropped without an answer
            span = observe.start_span("serve.request",
                                      method=request.method,
                                      path=request.path.split("?")[0])
            try:
                keep_alive = await self._dispatch(request, writer)
            except ProtocolError as error:
                self._write_error(writer, error.status, str(error))
                keep_alive = True
            except Exception as error:  # noqa: BLE001 - 500, never a stack dump
                logger.exception("request handler crashed")
                self._write_error(
                    writer, 500, f"{type(error).__name__}: {error}")
                keep_alive = False
            finally:
                observe.end_span(span)
            if faultplane.fire("serve.write.drop"):
                # The handler ran (the job may well be admitted and
                # running); the *response* is lost on the wire.  Abort
                # the transport so the client sees a reset, not a stall.
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return
            await writer.drain()
            if (not keep_alive
                    or request.headers.get("connection", "").lower() == "close"):
                return

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> _HttpRequest | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between requests
        except asyncio.LimitOverrunError:
            self._write_error(writer, 413, "request head too large")
            return None
        if len(head) > MAX_HEAD_BYTES:
            self._write_error(writer, 413, "request head too large")
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._write_error(writer, 400, f"malformed request line "
                                           f"{lines[0]!r}")
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                self._write_error(writer, 400,
                                  f"bad Content-Length {length!r}")
                return None
            if n > self.config.max_body:
                self._write_error(writer, 413,
                                  f"body of {n} bytes exceeds the "
                                  f"{self.config.max_body}-byte limit")
                # Swallow the oversized body (bounded) so the client can
                # read the rejection instead of hitting a broken pipe.
                remaining = min(n, 8 * self.config.max_body)
                while remaining > 0:
                    chunk = await reader.read(min(remaining, 1 << 16))
                    if not chunk:
                        break
                    remaining -= len(chunk)
                await writer.drain()
                return None
            body = await reader.readexactly(n)
        return _HttpRequest(method, path, headers, body)

    def _write(self, writer: asyncio.StreamWriter, status: int, body: bytes,
               extra: dict[str, str] | None = None) -> None:
        writer.write(_head(status, extra, length=len(body)) + body)

    def _write_error(self, writer: asyncio.StreamWriter, status: int,
                     message: str, extra: dict[str, str] | None = None) -> None:
        observe.add(f"serve.http.{status}")
        self._write(writer, status, _dump({"error": message}), extra)

    # -- routing -----------------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest,
                        writer: asyncio.StreamWriter) -> bool:
        path = request.path.split("?")[0].rstrip("/") or "/"
        if path == "/healthz" and request.method == "GET":
            self._write(writer, 200, _dump(self._health()))
            return True
        if path == "/v1/metrics" and request.method == "GET":
            self._write(writer, 200, _dump(self._metrics()))
            return True
        if path in ("/v1/optimize", "/v1/sweep", "/v1/taskgraph"):
            if request.method != "POST":
                self._write_error(writer, 405,
                                  f"{path} accepts POST only",
                                  {"Allow": "POST"})
                return True
            return await self._handle_submit(request, writer,
                                             path.rsplit("/", 1)[1])
        if path.startswith("/v1/jobs/") and request.method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                return await self._handle_events(rest[:-len("/events")],
                                                 writer)
            return self._handle_job(rest, writer)
        self._write_error(writer, 404, f"no route for "
                                       f"{request.method} {path}")
        return True

    def _health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "version": observe.repro_version(),
            "uptime_s": observe.clock() - self._started_at,
            "jobs": self.table.counts(),
            "running": self._running,
            "queue": {"depth": len(self.queue),
                      "max": self.config.max_queue,
                      "tenants": self.queue.depths()},
            "pool": {"jobs": self.config.jobs,
                     "pids": self.pool.worker_pids(),
                     "respawns": self.pool.respawns},
            "cache_dir": self.config.cache_dir,
        }

    def _metrics(self) -> dict[str, Any]:
        snap = observe.snapshot()
        counters = snap.get("counters", {})
        requests = counters.get("serve.requests", 0)
        deduped = (counters.get("serve.requests.coalesced", 0)
                   + counters.get("serve.requests.replayed", 0))
        hits = counters.get("cache.artifact.hits", 0)
        misses = counters.get("cache.artifact.misses", 0)
        derived = {
            "coalescing_ratio": (deduped / requests) if requests else 0.0,
            "inflight_coalesced": counters.get("serve.requests.coalesced", 0),
            "replayed": counters.get("serve.requests.replayed", 0),
            "dag_runs": counters.get("serve.dag.runs", 0),
            "cache_hit_rate": (hits / (hits + misses)
                               if (hits + misses) else None),
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(snap.get("gauges", {}).items())),
            "histograms": {
                name: observe.histogram_summary(hist)
                for name, hist in sorted(snap.get("histograms", {}).items())
            },
            "derived": derived,
        }

    async def _handle_submit(self, request: _HttpRequest,
                             writer: asyncio.StreamWriter,
                             endpoint: str) -> bool:
        parsed = protocol.parse_request(request.body, endpoint=endpoint,
                                        max_grid=self.config.max_grid)
        if self._draining:
            observe.add("serve.requests.drained")
            self._write_error(writer, 503, "server is draining",
                              {"Retry-After": str(self.config.retry_after_s)})
            return True
        job, disposition = self.table.submit(parsed)
        if disposition == "new":
            try:
                self.queue.push(parsed.tenant, parsed.cost, job)
            except QueueFull as error:
                # Undo the single-flight registration: the job never ran.
                self.table.inflight.pop(parsed.request_key, None)
                observe.add("serve.requests.rejected")
                self._write_error(
                    writer, 429, str(error),
                    {"Retry-After": str(self.config.retry_after_s)})
                return True
            if self.jobstore is not None:
                self.jobstore.admit(parsed.request_key, job.job_id,
                                    parsed.tenant, parsed.canonical)
            self._emit(job, {"event": "queued", "tenant": parsed.tenant})
            self._work_available.set()
        observe.gauge("serve.queue.depth", len(self.queue))

        if parsed.wait:
            await job.done_event.wait()
            self._write_job_outcome(writer, job)
            return True
        status = 200 if job.terminal else 202
        self._write(writer, status, _dump({
            "job": job.describe(),
            "disposition": disposition,
            "links": {"status": f"/v1/jobs/{job.job_id}",
                      "events": f"/v1/jobs/{job.job_id}/events"},
        }))
        return True

    def _write_job_outcome(self, writer: asyncio.StreamWriter,
                           job: Job) -> None:
        if job.state == "done":
            self._write(writer, 200, _dump(job.result))
        elif job.state == "cancelled":
            self._write_error(writer, job.http_status or 503,
                              job.error or "cancelled")
        else:
            self._write_error(writer, job.http_status or 500,
                              job.error or "job failed")

    def _handle_job(self, job_id: str, writer: asyncio.StreamWriter) -> bool:
        job = self.table.get(job_id)
        if job is None:
            self._write_error(writer, 404, f"unknown job {job_id!r}")
            return True
        document: dict[str, Any] = {"job": job.describe()}
        if job.state == "done":
            document["results"] = job.result["results"]
            document["degraded"] = job.result["degraded"]
        self._write(writer, 200, _dump(document))
        return True

    async def _handle_events(self, job_id: str,
                             writer: asyncio.StreamWriter) -> bool:
        job = self.table.get(job_id)
        if job is None:
            self._write_error(writer, 404, f"unknown job {job_id!r}")
            return True
        writer.write(_head(200, {"Connection": "close"}, chunked=True))
        sent = 0
        while True:
            while sent < len(job.events):
                data = _dump(job.events[sent])
                writer.write(f"{len(data):x}\r\n".encode("ascii")
                             + data + b"\r\n")
                sent += 1
            await writer.drain()
            if job.terminal:
                break
            async with job.events_cond:
                if sent >= len(job.events) and not job.terminal:
                    try:
                        await asyncio.wait_for(job.events_cond.wait(), 1.0)
                    except asyncio.TimeoutError:
                        pass  # re-check terminal state every second
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False  # chunked stream ends the connection


async def _amain(server: ReproServer) -> int:
    await server.start()
    assert server.port is not None
    print(f"repro serve listening on http://{server.config.host}:"
          f"{server.port} (workers={server.config.jobs}, "
          f"runs={server.config.runs}, queue={server.config.max_queue})",
          flush=True)
    return await server.serve_until_stopped()


def run_server(config: ServeConfig) -> int:
    """Run a server until drained; returns the process exit code."""
    server = ReproServer(config)
    try:
        return asyncio.run(_amain(server))
    except KeyboardInterrupt:  # signal handler unavailable: best effort
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        server.pool.close()
        if server.jobstore is not None:
            server.jobstore.close()
