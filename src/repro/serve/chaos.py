"""Serve-mode chaos: kill a warm worker mid-request, audit the fallout.

``repro chaos --serve`` extends the resilience battery from one-shot
sweeps (:mod:`repro.resilience.chaos`) to the long-lived service.  The
harness boots a real :class:`~repro.serve.server.ReproServer` in-process
(cache off, so every request genuinely executes), then:

1. serves a **control** request and checks it verified cleanly;
2. submits a **victim** request, waits until the server reports it
   running, and SIGKILLs every warm worker process under it;
3. serves a **probe** request on the respawned pool.

Invariants (any violation is a harness failure, exit 1):

* the server survives — ``/healthz`` answers afterwards and the crash
  was observed (``executor.pool.respawns`` / ``executor.worker_crashes``);
* the victim request either completes with fully verified rows (the
  executor out-retried the crash) or fails **closed** with a clean JSON
  5xx — a 200 carrying unverified or partial rows is the one
  unforgivable outcome;
* the probe completes verified on the respawned pool, and its result
  rows are byte-identical to a solo in-process ``run_graph`` of the
  same experiments — the crash must not poison warm state.

A run that merely absorbed its kill (victim recovered or failed closed)
exits :data:`~repro.resilience.EXIT_DEGRADED`, mirroring sweep chaos.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro import observe
from repro.resilience import EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK
from repro.runtime.dag import build_task_graph
from repro.runtime.executor import ExecutorConfig, run_graph
from repro.runtime import manifest as manifest_mod
from repro.serve.server import ReproServer, ServeConfig


def _canon(document: Any) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass
class ServeChaosReport:
    """What the harness killed and what the service did about it."""

    killed_pids: list[int] = field(default_factory=list)
    victim_state: str = "unknown"
    victim_status: int = 0
    crash_observed: bool = False
    respawns: int = 0
    probe_identical: bool = False
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        if self.violations:
            return EXIT_FAILURE
        if self.crash_observed:
            return EXIT_DEGRADED
        return EXIT_OK

    @property
    def summary(self) -> str:
        head = ("serve chaos: invariants held" if self.ok else
                f"serve chaos: {len(self.violations)} INVARIANT VIOLATION(S)")
        return (f"{head} — killed {len(self.killed_pids)} warm worker(s), "
                f"victim {self.victim_state} (HTTP {self.victim_status}), "
                f"{self.respawns} pool respawn(s), probe byte-identical "
                f"to solo run: {self.probe_identical} "
                f"(exit {self.exit_code})")


class _Client:
    """Tiny synchronous HTTP client against the in-process server."""

    def __init__(self, port: int, timeout_s: float) -> None:
        self.port = port
        self.timeout_s = timeout_s

    def request(self, method: str, path: str,
                body: dict[str, Any] | None = None) -> tuple[int, dict]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=self.timeout_s)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            try:
                document = json.loads(data)
            except json.JSONDecodeError:
                document = {"raw": data.decode("utf-8", "replace")}
            return response.status, document
        finally:
            conn.close()


def _solo_rows(request_document: dict[str, Any],
               jobs: int = 1) -> list[dict[str, Any]]:
    """The reference result rows from a plain in-process run."""
    from repro.serve.protocol import parse_request

    parsed = parse_request(dict(request_document), endpoint="optimize")
    graph = build_task_graph(list(parsed.experiments))
    results = run_graph(graph, store=None, config=ExecutorConfig(jobs=jobs))
    return [manifest_mod.experiment_record(spec, graph, results)
            for spec in sorted(graph.experiments,
                               key=lambda s: s.experiment_id)]


def run_serve_chaos(
    workload: str = "adpcm",
    deadline_frac: float = 0.5,
    seed: int = 0,
    jobs: int = 2,
    timeout_s: float = 120.0,
    on_progress=None,
) -> ServeChaosReport:
    """Boot a server, kill its warm workers mid-request, audit the rules.

    Args:
        workload / deadline_frac / seed: the grid point under test (the
            victim and probe use neighbouring deadline fractions so each
            is a genuine, uncached run).
        jobs: warm worker processes.
        timeout_s: overall per-request client budget.
        on_progress: optional callable taking one status string.
    """
    report = ServeChaosReport()

    def progress(message: str) -> None:
        if on_progress is not None:
            on_progress(message)

    if not observe.enabled():
        observe.enable()
    respawns_before = observe.counter_value("executor.pool.respawns")
    crashes_before = observe.counter_value("executor.worker_crashes")

    # Cache off: every request must actually execute on the warm pool.
    server = ReproServer(ServeConfig(port=0, jobs=jobs, runs=1,
                                     cache_dir=None))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=lambda: (asyncio.set_event_loop(loop), loop.run_forever()),
        name="serve-chaos-loop", daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(60)
        assert server.port is not None
        client = _Client(server.port, timeout_s)
        progress(f"server up on port {server.port}, "
                 f"workers {server.pool.worker_pids()}")

        base = {"workload": workload, "seed": seed}
        control_doc = dict(base, deadline_frac=deadline_frac, wait=True)
        status, control = client.request("POST", "/v1/optimize", control_doc)
        if status != 200 or any(r["status"] != "ok"
                                for r in control.get("results", [])):
            report.violations.append(
                f"control request failed before any fault "
                f"(HTTP {status}): {control.get('error', control)}")
            return report
        progress("control request verified ok")

        # The victim: a different grid point, so it really runs.
        victim_frac = round(min(1.0, deadline_frac + 0.1), 6)
        victim_doc = dict(base, deadline_frac=victim_frac)
        status, submitted = client.request("POST", "/v1/optimize", victim_doc)
        if status not in (200, 202):
            report.violations.append(
                f"victim submission rejected (HTTP {status}): {submitted}")
            return report
        job_id = submitted["job"]["id"]

        # Wait for it to start running, then murder the warm pool.
        deadline = time.monotonic() + timeout_s
        state = submitted["job"]["state"]
        while state == "queued" and time.monotonic() < deadline:
            time.sleep(0.01)
            status, job_doc = client.request("GET", f"/v1/jobs/{job_id}")
            state = job_doc["job"]["state"]
        report.killed_pids = list(server.pool.worker_pids())
        for pid in report.killed_pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        progress(f"killed workers {report.killed_pids} "
                 f"while victim was {state}")

        # The victim must reach a terminal state either way.
        while time.monotonic() < deadline:
            status, job_doc = client.request("GET", f"/v1/jobs/{job_id}")
            state = job_doc["job"]["state"]
            if state in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        report.victim_state = state
        report.victim_status = status
        if state == "done":
            rows = job_doc.get("results", [])
            bad = sorted(r["experiment"] for r in rows
                         if r["status"] != "ok")
            if bad:
                report.violations.append(
                    f"victim served unverified rows after the kill: {bad}")
        elif state == "failed":
            if not job_doc["job"].get("error"):
                report.violations.append(
                    "victim failed without a structured error message")
        else:
            report.violations.append(
                f"victim never reached a terminal state (stuck {state!r})")

        # The crash must have been seen and absorbed, not missed.
        report.respawns = int(
            observe.counter_value("executor.pool.respawns")
            - respawns_before)
        crashes = observe.counter_value("executor.worker_crashes")
        report.crash_observed = bool(
            report.respawns or crashes > crashes_before)
        if not report.crash_observed:
            report.violations.append(
                "killed every warm worker but no crash/respawn was "
                "recorded — the kill never landed")

        status, health = client.request("GET", "/healthz")
        if status != 200:
            report.violations.append(
                f"/healthz unreachable after the kill (HTTP {status})")

        # The probe: yet another grid point, on the respawned pool; its
        # rows must match a solo in-process run byte for byte.
        probe_frac = round(max(0.0, deadline_frac - 0.1), 6)
        probe_doc = dict(base, deadline_frac=probe_frac, wait=True)
        status, probe = client.request("POST", "/v1/optimize", probe_doc)
        if status != 200 or any(r["status"] != "ok"
                                for r in probe.get("results", [])):
            report.violations.append(
                f"probe request failed on the respawned pool "
                f"(HTTP {status}): {probe.get('error', probe)}")
            return report
        served = [_canon(r) for r in probe["results"]]
        reference = [_canon(r) for r in _solo_rows(
            dict(base, deadline_frac=probe_frac))]
        report.probe_identical = served == reference
        if not report.probe_identical:
            report.violations.append(
                "probe rows after the crash differ from a solo run — "
                "the respawned pool is serving drifted results")
        progress("probe verified on respawned pool")
        return report
    finally:
        try:
            future = asyncio.run_coroutine_threadsafe(server.drain(), loop)
            loop.call_soon_threadsafe(server.request_stop, 0)
            future.result(30)
        except Exception:  # noqa: BLE001 - teardown is best effort
            pass
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        if not loop.is_running():
            loop.close()
