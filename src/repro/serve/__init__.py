"""repro.serve — the optimization pipeline as a long-lived service.

The paper's compile→profile→optimize→simulate pipeline normally runs as
a one-shot script (``repro sweep``).  This package wraps it in a
zero-dependency asyncio JSON-over-HTTP server so many clients can share
one warm process pool and one artifact cache:

* :mod:`repro.serve.protocol` — request validation and
  canonicalization; identical requests from different clients reduce to
  the same content-addressed request key.
* :mod:`repro.serve.coalesce` — the single-flight job table: concurrent
  identical submissions coalesce onto one in-flight DAG run, and
  recently finished jobs are replayed from an LRU.
* :mod:`repro.serve.queueing` — bounded admission (full queue → 429)
  and per-tenant weighted fair queueing.
* :mod:`repro.serve.server` — the hand-rolled HTTP/1.1 server:
  ``POST /v1/optimize``, ``POST /v1/sweep``, ``GET /v1/jobs/<id>``, a
  chunked ``GET /v1/jobs/<id>/events`` stream, ``GET /healthz`` and
  ``GET /v1/metrics``; graceful drain on SIGINT/SIGTERM.
* :mod:`repro.serve.jobstore` — the crash-safe job journal behind
  ``repro serve --store-dir`` / ``--resume``: every admitted job is
  recorded with fsync'd appends, so a SIGKILL'd server resumes with
  finished jobs replaying byte-identically and interrupted ones
  re-running through the artifact cache.
* :mod:`repro.serve.client` — the resilient stdlib client (timeouts,
  capped jittered backoff, ``Retry-After`` honoring, idempotent
  resubmission by content hash, circuit breaker) shared by
  ``repro loadtest`` and the chaos campaign.
* :mod:`repro.serve.chaos` — the serve-mode chaos harness behind
  ``repro chaos --serve`` (kill a warm worker mid-request; the request
  must finish via retry or fail closed with a clean 5xx).

``repro loadtest`` (:mod:`repro.perf.loadtest`) replays thousands of
concurrent mixed requests against a server and writes
``BENCH_serve.json``.  See ``docs/serving.md``.
"""

from .protocol import ParsedRequest, parse_request
from .server import ReproServer, ServeConfig, run_server

__all__ = [
    "ParsedRequest",
    "parse_request",
    "ReproServer",
    "ServeConfig",
    "run_server",
]
