"""Admission control and per-tenant weighted fair queueing.

The service must stay predictable under overload, which needs two
mechanisms working together:

* **Bounded admission** — the queue holds at most ``max_queue`` jobs.
  A submission past that raises :class:`QueueFull`, which the server
  maps to ``429 Too Many Requests`` with a ``Retry-After`` header.
  Backpressure is explicit and early, never an unbounded memory ramp.

* **Weighted fair queueing** — jobs dequeue by *virtual finish time*
  (start-time fair queueing): each tenant accrues virtual work equal to
  ``cost / weight``, and the next job popped is the one with the
  smallest finish tag.  A tenant that dumps 50 sweeps therefore shares
  the pool with — instead of starving — a tenant submitting single
  optimizes; doubling a tenant's weight doubles its long-run share.

The queue is a plain single-threaded data structure.  The asyncio
server is its only caller (one event loop), so it needs no locking;
anything that touches it from a worker thread goes through
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ServeError


class QueueFull(ServeError):
    """Admission control rejected a submission (map to HTTP 429)."""


@dataclass
class _TenantState:
    weight: float
    virtual_finish: float = 0.0  # finish tag of the tenant's last job
    queued: int = 0
    admitted: int = 0


@dataclass(order=True)
class _Entry:
    finish_tag: float
    seq: int
    item: Any = field(compare=False)
    tenant: str = field(compare=False)


class FairQueue:
    """A bounded, weighted-fair priority queue of jobs.

    Args:
        max_queue: admission bound; ``push`` raises :class:`QueueFull`
            beyond it.
        weights: per-tenant weight overrides (higher = larger share).
        default_weight: weight for tenants not listed in ``weights``.
    """

    def __init__(self, max_queue: int = 64,
                 weights: dict[str, float] | None = None,
                 default_weight: float = 1.0) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        if default_weight <= 0:
            raise ServeError(
                f"default tenant weight must be positive, got {default_weight}")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ServeError(
                    f"tenant {tenant!r} weight must be positive, got {weight}")
        self.max_queue = max_queue
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._tenants: dict[str, _TenantState] = {}
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._virtual_time = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            weight = self._weights.get(tenant, self.default_weight)
            state = self._tenants[tenant] = _TenantState(weight=weight)
        return state

    def push(self, tenant: str, cost: float, item: Any) -> float:
        """Admit one job; returns its virtual finish tag.

        Args:
            tenant: fair-queueing bucket.
            cost: job size in arbitrary-but-consistent units (the server
                uses the experiment count).
            item: the queued object.

        Raises:
            QueueFull: the queue already holds ``max_queue`` jobs.
        """
        if len(self._heap) >= self.max_queue:
            raise QueueFull(
                f"queue full ({self.max_queue} jobs); retry later")
        state = self._tenant(tenant)
        start = max(self._virtual_time, state.virtual_finish)
        finish = start + max(cost, 1e-9) / state.weight
        state.virtual_finish = finish
        state.queued += 1
        state.admitted += 1
        heapq.heappush(self._heap,
                       _Entry(finish, next(self._seq), item, tenant))
        return finish

    def pop(self) -> Any | None:
        """The queued job with the smallest virtual finish tag, or None."""
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        # Advance virtual time to the served job's tag so newly arriving
        # tenants start "now" rather than back-filling ancient credit.
        self._virtual_time = max(self._virtual_time, entry.finish_tag)
        state = self._tenant(entry.tenant)
        state.queued = max(0, state.queued - 1)
        return entry.item

    def items(self) -> Iterator[Any]:
        """Queued items in heap (not service) order — for draining."""
        for entry in self._heap:
            yield entry.item

    def clear(self) -> list[Any]:
        """Remove and return every queued item (drain path)."""
        items = [entry.item for entry in self._heap]
        self._heap.clear()
        for state in self._tenants.values():
            state.queued = 0
        return items

    def depths(self) -> dict[str, int]:
        """Per-tenant queued-job counts (for /healthz)."""
        return {tenant: state.queued
                for tenant, state in sorted(self._tenants.items())
                if state.queued}
