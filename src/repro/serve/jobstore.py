"""Crash-safe job store: the serve-layer sibling of the sweep journal.

``repro serve`` (PR 7) kept every job in memory, so a server crash lost
queued and running work and forgot finished results.  The job store
records the life of every admitted job in an append-only JSONL journal
(``<store-dir>/jobs.jsonl``) with the same durability contract as
:mod:`repro.resilience.journal`:

* a **header** line pins the on-disk format version;
* an **admit** line carries the canonical request document (the exact
  bytes the request key was hashed from) plus a payload digest;
* a **start** line marks the job running; a **finish** line carries the
  terminal state and, for completed jobs, the full result body with its
  own digest;
* every append is flushed and ``fsync``\\ ed, so a record either exists
  completely or — for the final line of a crashed run — is **torn** and
  dropped by :meth:`JobStore.load`, never crashing recovery;
* a record whose digest does not verify is ignored: a dropped *finish*
  simply leaves the job queued, and re-running through the artifact
  cache is always safe.

On ``repro serve --resume`` the server loads the store, **compacts** it
(rewrites a fresh journal holding one admit per surviving job plus the
finish records of terminal ones, via tmpfile + ``os.replace``) so resume
chains do not grow the file without bound, then re-admits queued and
interrupted jobs and rehydrates finished ones for byte-identical replay.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from repro.errors import JournalError
from repro.resilience import faultplane
from repro.resilience.journal import payload_digest

logger = logging.getLogger(__name__)

#: On-disk job-store format version.
JOBSTORE_FORMAT = 1

#: Job states a finish record may carry.
_TERMINAL = ("done", "failed")


@dataclass
class StoredJob:
    """One job as reconstructed from the journal."""

    key: str
    job_id: str
    tenant: str
    request: dict[str, Any]
    state: str = "queued"  # queued | running | done | failed
    result: dict[str, Any] | None = None
    error: str | None = None
    http_status: int = 200

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL


def _admit_digest(job_id: str, tenant: str, request: dict[str, Any]) -> str:
    return payload_digest({"job": job_id, "tenant": tenant, "request": request})


def _finish_digest(state: str, http_status: int, error: str | None,
                   result: dict[str, Any] | None) -> str:
    return payload_digest({
        "state": state,
        "http_status": http_status,
        "error": error,
        "result": result,
    })


class JobStore:
    """Append-only admission/start/finish journal for one store directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / "jobs.jsonl"
        self._handle: TextIO | None = None
        self._broken = False

    # -- reading ---------------------------------------------------------------

    def load(self) -> dict[str, StoredJob]:
        """Every job the previous run durably admitted, keyed by request key.

        Torn-tail tolerant: reading stops at the first unparsable line.
        Records with a bad digest are skipped (for a finish record that
        means the job falls back to its pre-finish state and re-runs).

        Raises:
            JournalError: the journal was written by a different format
                version — resuming would silently misread records.
        """
        if not self.path.is_file():
            return {}
        jobs: dict[str, StoredJob] = {}
        with open(self.path) as handle:
            first = handle.readline()
            try:
                header = json.loads(first)
            except json.JSONDecodeError:
                return {}  # torn before the header ever landed
            if not isinstance(header, dict) or header.get("type") != "header":
                return {}
            if header.get("format") != JOBSTORE_FORMAT:
                raise JournalError(
                    f"job store {self.path} has format {header.get('format')!r}, "
                    f"this build writes {JOBSTORE_FORMAT}"
                )
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail of a crashed append; later bytes untrusted
                if not isinstance(record, dict):
                    continue
                self._apply(jobs, record)
        return jobs

    @staticmethod
    def _apply(jobs: dict[str, StoredJob], record: dict[str, Any]) -> None:
        kind = record.get("type")
        key = record.get("key")
        if not isinstance(key, str):
            return
        if kind == "admit":
            job_id = record.get("job")
            tenant = record.get("tenant")
            request = record.get("request")
            if not isinstance(job_id, str) or not isinstance(tenant, str):
                return
            if not isinstance(request, dict):
                return
            if record.get("digest") != _admit_digest(job_id, tenant, request):
                return  # bit rot in the admission record: unrecoverable job
            jobs[key] = StoredJob(key=key, job_id=job_id, tenant=tenant,
                                  request=request)
        elif kind == "start":
            job = jobs.get(key)
            if job is not None and job.state == "queued":
                job.state = "running"
        elif kind == "finish":
            job = jobs.get(key)
            state = record.get("state")
            if job is None or state not in _TERMINAL:
                return
            http_status = record.get("http_status")
            error = record.get("error")
            result = record.get("result")
            if not isinstance(http_status, int):
                return
            if error is not None and not isinstance(error, str):
                return
            if result is not None and not isinstance(result, dict):
                return
            if record.get("digest") != _finish_digest(state, http_status,
                                                      error, result):
                return  # drop the finish; the job re-runs through the cache
            job.state = state
            job.http_status = http_status
            job.error = error
            job.result = result

    # -- writing ---------------------------------------------------------------

    def start(self, resume: bool = False,
              recovered: dict[str, StoredJob] | None = None) -> None:
        """Open the journal for appending.

        A fresh run truncates and writes a new header.  A resume
        compacts: the surviving state (``recovered``, or a fresh
        :meth:`load` if not supplied) is rewritten as a new journal —
        one admit per job, plus a finish for terminal ones — atomically
        replacing the old file, then opened for appends.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        header = {"type": "header", "format": JOBSTORE_FORMAT}
        if resume:
            if recovered is None:
                recovered = self.load()
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".jobs-",
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(_dumps(header) + "\n")
                    for job in recovered.values():
                        handle.write(_dumps(self._admit_record(
                            job.key, job.job_id, job.tenant, job.request)) + "\n")
                        if job.terminal:
                            handle.write(_dumps(self._finish_record(
                                job.key, job.state, job.http_status,
                                job.error, job.result)) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._handle = open(self.path, "a")
        else:
            self._handle = open(self.path, "w")
            self._append(header)

    def admit(self, key: str, job_id: str, tenant: str,
              request: dict[str, Any]) -> None:
        """Durably record an admitted job (flush + fsync before return)."""
        self._append(self._admit_record(key, job_id, tenant, request))

    def started(self, key: str) -> None:
        self._append({"type": "start", "key": key})

    def finished(self, key: str, state: str, result: dict[str, Any] | None = None,
                 error: str | None = None, http_status: int = 200) -> None:
        if state not in _TERMINAL:
            raise JournalError(f"finish state must be one of {_TERMINAL}, "
                               f"got {state!r}")
        self._append(self._finish_record(key, state, http_status, error, result))

    @staticmethod
    def _admit_record(key: str, job_id: str, tenant: str,
                      request: dict[str, Any]) -> dict[str, Any]:
        return {
            "type": "admit",
            "key": key,
            "job": job_id,
            "tenant": tenant,
            "request": request,
            "digest": _admit_digest(job_id, tenant, request),
        }

    @staticmethod
    def _finish_record(key: str, state: str, http_status: int,
                       error: str | None,
                       result: dict[str, Any] | None) -> dict[str, Any]:
        return {
            "type": "finish",
            "key": key,
            "state": state,
            "http_status": http_status,
            "error": error,
            "result": result,
            "digest": _finish_digest(state, http_status, error, result),
        }

    def _append(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError("job store not started")
        if self._broken:
            return  # a torn write already poisoned the tail; see below
        text = _dumps(record) + "\n"
        torn = faultplane.torn_text(text)
        if torn is not None:
            # Simulated power loss mid-append: only a prefix reaches the
            # disk.  Appending after it would glue valid JSON onto the
            # torn line and silently lose everything that follows on
            # load, so the store fails safe: it stops journaling (resume
            # recomputes the lost tail) instead of corrupting history.
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._broken = True
            logger.warning(
                "job store %s: torn write injected; journaling disabled for "
                "this process (recovery will re-run the unrecorded tail)",
                self.path)
            return
        self._handle.write(text)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @property
    def broken(self) -> bool:
        """True once a torn write disabled further journaling."""
        return self._broken

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _dumps(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


__all__ = ["JOBSTORE_FORMAT", "JobStore", "StoredJob"]
