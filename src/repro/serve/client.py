"""Resilient stdlib client for the optimization service.

``repro loadtest`` (PR 7) talked to the server with a bare one-shot
HTTP requester, so a 429 admission rejection or a dropped connection
became a hard error even though both are *retryable by construction*:
the server keys every job by the canonical content hash, so resubmitting
the same document joins the in-flight run or replays the finished one —
idempotent resubmission is free.  This module supplies the client both
the loadtest and the chaos campaign use:

* per-request **timeouts** on connect, send and read;
* **capped exponential backoff with jitter** between attempts, honoring
  the server's ``Retry-After`` header on 429/503 answers;
* transport errors (refused/reset/timeout) retried the same way —
  safe because of the content-hash idempotency above;
* a **circuit breaker** that opens after consecutive transport failures
  and, rather than failing fast, *waits out* the cooldown and sends a
  half-open probe — the resilient-client behavior a batch harness wants;
* counters ``client.retries``, ``client.rejected`` and
  ``client.circuit.opened`` so reports can show how much resilience the
  run actually consumed.

Both a synchronous :class:`ReproClient` (``http.client``, used by the
campaign and tests) and an :class:`AsyncReproClient` (asyncio streams,
used by the loadtest's bounded-concurrency fire loop) are provided; they
share the policy and breaker objects.
"""

from __future__ import annotations

import asyncio
import datetime
import email.utils
import http.client
import json
import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro import observe
from repro.errors import ServeError


@dataclass(frozen=True)
class RetryPolicy:
    """When and how long to back off between attempts."""

    max_attempts: int = 6
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.5  # each delay is scaled by [1 - jitter, 1]
    timeout_s: float = 120.0
    retry_statuses: tuple[int, ...] = (429, 503)

    def backoff_s(self, attempt: int, retry_after_s: float | None,
                  rng: random.Random) -> float:
        """Delay before attempt ``attempt + 1`` (attempts are 1-based)."""
        base = min(self.max_backoff_s,
                   self.base_backoff_s * (2 ** max(0, attempt - 1)))
        delay = base * (1.0 - self.jitter * rng.random())
        if retry_after_s is not None:
            # The server knows its queue depth better than our schedule.
            delay = max(delay, min(retry_after_s, self.max_backoff_s * 4))
        return delay


class CircuitBreaker:
    """Consecutive-transport-failure breaker with half-open probing.

    closed -> (``failure_threshold`` consecutive failures) -> open ->
    (cooldown elapses) -> half-open: exactly one probe is let through;
    success closes the circuit, failure re-opens it for another
    cooldown.  Answered HTTP statuses (even 429/503) count as success —
    the breaker protects against a *dead* server, not a busy one.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 1.0,
                 clock=time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._lock = threading.Lock()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """May a request be sent right now?"""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def cooldown_remaining(self) -> float:
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            if self._opened_at is not None:
                self._opened_at = self._clock()  # failed probe: restart cooldown
            elif self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                observe.add("client.circuit.opened")


@dataclass
class ClientOutcome:
    """What one logical request (with retries) amounted to."""

    status: int  # final HTTP status; 0 = transport failure
    document: dict[str, Any] | None
    attempts: int
    retries: int
    rejected: int  # 429/503 answers absorbed along the way
    latency_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.error is None

    @property
    def rejected_then_completed(self) -> bool:
        """Was this request initially rejected but eventually served?"""
        return self.ok and self.rejected > 0


def _retry_after_seconds(value: str | None) -> float | None:
    """Seconds to wait from a ``Retry-After`` header, or None.

    Accepts both RFC 9110 forms — delay-seconds and HTTP-date.  A zero,
    negative or malformed value carries no scheduling information, so it
    is treated as an absent header (the caller falls back to its own
    exponential backoff) rather than as "retry immediately", which would
    defeat the backoff against a server that is already shedding load.
    Huge values are capped by :meth:`RetryPolicy.backoff_s`.
    """
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        try:
            when = email.utils.parsedate_to_datetime(value)
        except (TypeError, ValueError):
            return None
        if when is None:
            return None
        if when.tzinfo is None:
            when = when.replace(tzinfo=datetime.timezone.utc)
        seconds = (when - datetime.datetime.now(datetime.timezone.utc)
                   ).total_seconds()
    if not math.isfinite(seconds) or seconds <= 0:
        return None
    return seconds


def _parse_body(payload: bytes) -> dict[str, Any] | None:
    if not payload:
        return None
    try:
        document = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return document if isinstance(document, dict) else None


class _RetryLoop:
    """Shared bookkeeping for the sync and async retry loops."""

    def __init__(self, policy: RetryPolicy, breaker: CircuitBreaker,
                 rng: random.Random) -> None:
        self.policy = policy
        self.breaker = breaker
        self.rng = rng
        self.attempts = 0
        self.retries = 0
        self.rejected = 0
        self.status = 0
        self.document: dict[str, Any] | None = None
        self.error: str | None = None
        self.started = time.monotonic()

    def on_transport_error(self, error: BaseException) -> float | None:
        """Returns the backoff delay, or None when attempts are spent."""
        self.breaker.record_failure()
        self.status, self.document = 0, None
        self.error = f"{type(error).__name__}: {error}"
        if self.attempts >= self.policy.max_attempts:
            return None
        self.retries += 1
        observe.add("client.retries")
        return self.policy.backoff_s(self.attempts, None, self.rng)

    def on_response(self, status: int, document: dict[str, Any] | None,
                    retry_after_s: float | None) -> float | None:
        """Returns the backoff delay, or None when this answer is final."""
        self.breaker.record_success()
        self.status, self.document, self.error = status, document, None
        if status not in self.policy.retry_statuses:
            return None
        self.rejected += 1
        observe.add("client.rejected")
        if self.attempts >= self.policy.max_attempts:
            return None
        self.retries += 1
        observe.add("client.retries")
        return self.policy.backoff_s(self.attempts, retry_after_s, self.rng)

    def circuit_stuck(self) -> None:
        self.error = "circuit breaker open"

    def outcome(self) -> ClientOutcome:
        return ClientOutcome(
            status=self.status, document=self.document,
            attempts=self.attempts, retries=self.retries,
            rejected=self.rejected,
            latency_s=time.monotonic() - self.started, error=self.error)


class ReproClient:
    """Synchronous resilient client (one connection per attempt).

    Resubmitting a POST after an ambiguous failure is safe: the server
    keys jobs by the canonical content hash, so a duplicate submission
    coalesces onto the in-flight run or replays the finished result.
    """

    def __init__(self, host: str, port: int,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._rng = random.Random(seed)

    def submit(self, document: dict[str, Any],
               endpoint: str = "optimize") -> ClientOutcome:
        body = json.dumps(document).encode("utf-8")
        return self._request("POST", f"/v1/{endpoint}", body)

    def get_json(self, path: str) -> ClientOutcome:
        return self._request("GET", path, None)

    def _once(self, method: str, path: str,
              body: bytes | None) -> tuple[int, dict[str, Any] | None,
                                           float | None]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.policy.timeout_s)
        try:
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            retry_after = _retry_after_seconds(
                response.getheader("Retry-After"))
            return response.status, _parse_body(payload), retry_after
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: bytes | None) -> ClientOutcome:
        loop = _RetryLoop(self.policy, self.breaker, self._rng)
        while loop.attempts < self.policy.max_attempts:
            if not self.breaker.allow():
                # Resilient-client stance: wait out the cooldown and
                # probe, instead of failing the caller fast.
                remaining = self.breaker.cooldown_remaining()
                if remaining > 0:
                    time.sleep(remaining)
                if not self.breaker.allow():
                    loop.circuit_stuck()
                    break
            loop.attempts += 1
            try:
                status, document, retry_after = self._once(method, path, body)
            except (OSError, http.client.HTTPException) as error:
                delay = loop.on_transport_error(error)
            else:
                delay = loop.on_response(status, document, retry_after)
            if delay is None:
                break
            time.sleep(delay)
        return loop.outcome()


async def http_request(host: str, port: int, method: str, path: str,
                       body: bytes, timeout_s: float,
                       ) -> tuple[int, dict[str, str], bytes]:
    """One HTTP/1.1 exchange on a fresh asyncio connection.

    Returns ``(status, lower-cased headers, payload)``.  This is the
    raw requester underneath :class:`AsyncReproClient`; the loadtest
    also uses it directly for metrics scrapes.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s)
    try:
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        writer.write(head + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout_s)
        lines = raw.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            payload = await asyncio.wait_for(
                reader.readexactly(int(length)), timeout_s)
        else:
            payload = await asyncio.wait_for(reader.read(), timeout_s)
        return status, headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncReproClient:
    """Async twin of :class:`ReproClient` for concurrent fire loops."""

    def __init__(self, host: str, port: int,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._rng = random.Random(seed)

    async def submit(self, document: dict[str, Any],
                     endpoint: str = "optimize") -> ClientOutcome:
        body = json.dumps(document).encode("utf-8")
        return await self._request("POST", f"/v1/{endpoint}", body)

    async def get_json(self, path: str) -> ClientOutcome:
        return await self._request("GET", path, b"")

    async def _request(self, method: str, path: str,
                       body: bytes) -> ClientOutcome:
        loop = _RetryLoop(self.policy, self.breaker, self._rng)
        while loop.attempts < self.policy.max_attempts:
            if not self.breaker.allow():
                remaining = self.breaker.cooldown_remaining()
                if remaining > 0:
                    await asyncio.sleep(remaining)
                if not self.breaker.allow():
                    loop.circuit_stuck()
                    break
            loop.attempts += 1
            try:
                status, headers, payload = await http_request(
                    self.host, self.port, method, path, body,
                    self.policy.timeout_s)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, OSError, ValueError) as error:
                delay = loop.on_transport_error(error)
            else:
                delay = loop.on_response(
                    status, _parse_body(payload),
                    _retry_after_seconds(headers.get("retry-after")))
            if delay is None:
                break
            await asyncio.sleep(delay)
        return loop.outcome()


def request_outcome_or_raise(outcome: ClientOutcome, what: str) -> dict[str, Any]:
    """Unwrap an outcome that must have succeeded (campaign plumbing)."""
    if not outcome.ok or outcome.document is None:
        raise ServeError(
            f"{what} failed after {outcome.attempts} attempt(s): "
            f"status {outcome.status}, {outcome.error or 'no body'}")
    return outcome.document


__all__ = [
    "AsyncReproClient",
    "CircuitBreaker",
    "ClientOutcome",
    "ReproClient",
    "RetryPolicy",
    "http_request",
    "request_outcome_or_raise",
]
