"""repro — reproduction of *Compile-Time Dynamic Voltage Scaling Settings:
Opportunities and Limits* (Xie, Martonosi, Malik; PLDI 2003).

The package answers the paper's two questions end to end on a simulated
substrate:

1. **How much can compile-time intra-program DVS save, at best?**
   :mod:`repro.core.analytical` — the Section 3 model: continuous and
   discrete voltage scaling bounds from four program parameters.
2. **How much of that is achievable in practice?**
   :mod:`repro.core.milp` + :class:`repro.core.DVSOptimizer` — the
   Section 4 MILP that places mode-set instructions on CFG edges with
   real transition costs, edge filtering and multi-input-category
   support, verified by re-simulating the scheduled program.

Substrates (each usable on its own):

* :mod:`repro.lang` — a small C-like kernel language and compiler;
* :mod:`repro.ir` — CFG-of-basic-blocks IR with loops/dominators;
* :mod:`repro.simulator` — timing + energy machine simulator with
  caches, asynchronous memory and DVS mode switching;
* :mod:`repro.profiling` — per-mode block profiles, edge/path counts;
* :mod:`repro.solver` — from-scratch simplex + branch-and-bound MILP
  solver (with an optional scipy/HiGHS backend);
* :mod:`repro.workloads` — a MediaBench-like benchmark suite;
* :mod:`repro.analysis` — sweep and reporting helpers.

Quickstart::

    from repro.core import DVSOptimizer
    from repro.lang import compile_program
    from repro.simulator import Machine, XSCALE_3, TransitionCostModel
    from repro.workloads import get_workload

    spec = get_workload("adpcm")
    cfg = compile_program(spec.source, name=spec.name)
    machine = Machine(mode_table=XSCALE_3,
                      transition_model=TransitionCostModel())
    opt = DVSOptimizer(machine)
    profile = opt.profile(cfg, inputs=spec.inputs(),
                          registers=spec.registers())
    outcome = opt.optimize(cfg, deadline_s=profile.wall_time_s[1],
                           profile=profile)
    run = opt.verify(cfg, outcome.schedule, inputs=spec.inputs(),
                     registers=spec.registers())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
