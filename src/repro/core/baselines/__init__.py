"""Prior-work baselines the paper extends and compares against.

* :mod:`.block_milp` — the Saputra et al. (LCTES'02) style formulation:
  one mode per *region* (basic block) rather than per edge, optionally
  without transition costs (their original omits them — the gap the
  paper's Section 4 closes).
* :mod:`.greedy` — an Hsu-Kremer-flavoured heuristic: rank regions by
  how little wall-clock a slower mode costs them (memory-bound regions
  barely dilate) and greedily spend the deadline slack on the
  best-energy-per-second moves, repairing against predicted transition
  costs.
* :mod:`.wcet` — a Shin et al. (paper ref. [27]) style *hard-guarantee*
  scheduler: static worst-case execution-time analysis (longest path
  with loop bounds) picks the slowest provably safe mode.  Its ablation
  quantifies what the hard real-time guarantee costs relative to
  profile-driven optimization.

Both produce ordinary :class:`~repro.core.milp.schedule.DVSSchedule`
objects, so they run on the same simulator and verify the same way the
paper's edge-based MILP does.  The ablation benchmarks show the edge
formulation dominating both, as the paper argues.
"""

from repro.core.baselines.block_milp import BlockFormulation, build_block_formulation
from repro.core.baselines.greedy import GreedyOutcome, greedy_schedule
from repro.core.baselines.wcet import (
    WcetReport,
    loop_bounds_from_profile,
    program_wcet,
    wcet_schedule,
)

__all__ = [
    "BlockFormulation",
    "GreedyOutcome",
    "WcetReport",
    "build_block_formulation",
    "greedy_schedule",
    "loop_bounds_from_profile",
    "program_wcet",
    "wcet_schedule",
]
