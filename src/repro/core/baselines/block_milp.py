"""Block-grain MILP baseline (Saputra et al. style).

One binary per (block, mode): every execution of a block runs at the
block's single mode, regardless of the path that reached it.  This is
exactly the restriction the paper lifts with edge-based variables —
"blocks 2 or 5 may benefit from different mode settings depending on the
path by which the program arrives at them".

Two variants:

* ``include_transitions=False`` reproduces the original formulation,
  which ignores switching costs entirely (the paper's criticism: "it is
  unclear how much of these savings will hold up");
* ``include_transitions=True`` charges the paper's SE/ST on profiled
  edges whose endpoint blocks pick different modes, making the
  comparison against the edge formulation apples-to-apples.

The solution converts to an edge :class:`DVSSchedule` (each edge (i, j)
carries block j's mode) so it executes on the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError, ScheduleError
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, TransitionCostModel, ZERO_TRANSITION
from repro.solver.model import LinExpr, Model, Variable, lin_sum
from repro.solver.solution import Solution


@dataclass
class BlockFormulation:
    """A built block-grain model plus decoding bookkeeping."""

    model: Model
    mode_table: ModeTable
    block_vars: dict[str, list[Variable]]
    deadline_expr: LinExpr
    deadline_s: float

    def solve(self, backend: str = "auto", **options) -> Solution:
        return self.model.solve(backend=backend, **options)

    def extract_schedule(self, solution: Solution, profile: ProfileData) -> DVSSchedule:
        """Block modes -> an edge schedule (edge (i, j) sets block j's mode)."""
        if not solution.ok:
            raise ScheduleError(f"cannot extract schedule from status {solution.status}")
        block_mode: dict[str, int] = {}
        for label, variables in self.block_vars.items():
            chosen = [m for m, var in enumerate(variables) if solution.x[var.index] > 0.5]
            if len(chosen) != 1:
                raise ScheduleError(f"block {label!r} selected {len(chosen)} modes")
            block_mode[label] = chosen[0]
        assignment = {
            edge: block_mode[edge[1]] for edge in profile.edge_counts
        }
        return DVSSchedule(assignment=assignment, num_modes=len(self.mode_table))


def build_block_formulation(
    profile: ProfileData,
    mode_table: ModeTable,
    deadline_s: float,
    transition_model: TransitionCostModel = ZERO_TRANSITION,
    include_transitions: bool = False,
) -> BlockFormulation:
    """Build the Saputra-style block-grain MILP from a profile."""
    num_modes = len(mode_table)
    for m in range(num_modes):
        if m not in profile.per_mode:
            raise ModelError(f"profile lacks mode {m}")
    voltages = mode_table.voltages()
    v_squared = [v * v for v in voltages]
    costs = TransitionCosts.from_model(transition_model)

    model = Model(f"dvs-block-{profile.name}")
    block_vars: dict[str, list[Variable]] = {}
    for label, count in profile.block_counts.items():
        variables = [model.add_binary(f"k[{label}][{m}]") for m in range(num_modes)]
        model.add_constraint(lin_sum(variables) == 1, name=f"onemode[{label}]")
        block_vars[label] = variables

    energy_terms = LinExpr()
    time_terms = LinExpr()
    for label, count in profile.block_counts.items():
        for m in range(num_modes):
            energy_terms.add_term(block_vars[label][m], count * profile.energy(label, m))
            time_terms.add_term(block_vars[label][m], count * profile.time(label, m))

    if include_transitions and not costs.is_free:
        for (src, dst), count in profile.edge_counts.items():
            if src == ENTRY_EDGE_SOURCE or src == dst:
                continue
            in_vars = block_vars[src]
            out_vars = block_vars[dst]
            delta_v2 = LinExpr()
            delta_v = LinExpr()
            for m in range(num_modes):
                delta_v2.add_term(in_vars[m], v_squared[m])
                delta_v2.add_term(out_vars[m], -v_squared[m])
                delta_v.add_term(in_vars[m], voltages[m])
                delta_v.add_term(out_vars[m], -voltages[m])
            e_var = model.add_var(f"e[{src}->{dst}]", lb=0.0)
            t_var = model.add_var(f"t[{src}->{dst}]", lb=0.0)
            model.add_constraint(delta_v2 <= e_var)
            model.add_constraint(-1.0 * e_var <= delta_v2)
            model.add_constraint(delta_v <= t_var)
            model.add_constraint(-1.0 * t_var <= delta_v)
            energy_terms.add_term(e_var, count * costs.ce_nj_per_v2)
            time_terms.add_term(t_var, count * costs.ct_s_per_v)

    # Deadline-relative units (rhs = 1): see the same scaling in
    # core/milp/formulation.py.
    scale = 1.0 / deadline_s if deadline_s > 0 else 1.0
    model.add_constraint(time_terms * scale <= deadline_s * scale, name="deadline")
    model.minimize(energy_terms)
    return BlockFormulation(
        model=model,
        mode_table=mode_table,
        block_vars=block_vars,
        deadline_expr=time_terms,
        deadline_s=deadline_s,
    )
