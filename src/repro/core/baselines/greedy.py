"""Greedy memory-boundedness heuristic (Hsu-Kremer flavour).

Hsu and Kremer's compiler lowers voltage in memory-bound regions: the
execution time there is bound by memory latency, so the compute can slow
with little wall-clock cost.  This baseline generalizes that intuition
into a greedy knapsack over profiled blocks:

1. start from the best single mode meeting the deadline (every block at
   that mode);
2. for every (block, slower-mode) pair compute the energy saved and the
   wall-clock added — for memory-bound blocks the added time is small
   because miss service is frequency-invariant;
3. take moves in decreasing savings-per-second order while the
   *predicted* schedule time (including SE/ST transition costs over the
   profiled local paths) stays within the deadline;
4. moves that no longer fit are skipped; the result is repaired to
   feasibility by construction.

The output is a normal edge :class:`DVSSchedule` (all edges into a block
carry the block's mode), so it runs and verifies exactly like the MILP's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, TransitionCostModel, ZERO_TRANSITION


@dataclass
class GreedyOutcome:
    """Result of the heuristic: schedule plus predicted cost."""

    schedule: DVSSchedule
    predicted_energy_nj: float
    predicted_time_s: float
    moves_taken: int
    moves_considered: int


def _best_single_mode(profile: ProfileData, deadline_s: float, num_modes: int) -> int:
    for mode in range(num_modes):
        if profile.wall_time_s[mode] <= deadline_s * (1 + 1e-9):
            return mode
    raise ScheduleError(
        f"deadline {deadline_s:.6g}s infeasible even at the fastest mode"
    )


def _schedule_from_block_modes(
    block_mode: dict[str, int], profile: ProfileData, num_modes: int
) -> DVSSchedule:
    assignment = {edge: block_mode[edge[1]] for edge in profile.edge_counts}
    return DVSSchedule(assignment=assignment, num_modes=num_modes)


def greedy_schedule(
    profile: ProfileData,
    mode_table: ModeTable,
    deadline_s: float,
    transition_model: TransitionCostModel = ZERO_TRANSITION,
) -> GreedyOutcome:
    """Build a heuristic schedule for one profiled program.

    Raises:
        ScheduleError: when no single mode meets the deadline (the
            heuristic, unlike the MILP, cannot mix modes to squeeze under
            a deadline tighter than the fastest single mode's runtime —
            though such deadlines are infeasible anyway).
    """
    num_modes = len(mode_table)
    costs = TransitionCosts.from_model(transition_model)
    base_mode = _best_single_mode(profile, deadline_s, num_modes)
    block_mode = {label: base_mode for label in profile.block_counts}

    # Candidate moves: (block, slower mode), ranked by energy saved per
    # second of wall-clock added (move cost ignores transition terms; the
    # acceptance check below prices them exactly).
    candidates = []
    for label, count in profile.block_counts.items():
        if count == 0:
            continue
        base_t = count * profile.time(label, base_mode)
        base_e = count * profile.energy(label, base_mode)
        for mode in range(base_mode):
            delta_t = count * profile.time(label, mode) - base_t
            delta_e = base_e - count * profile.energy(label, mode)
            if delta_e <= 0:
                continue
            score = delta_e / max(delta_t, 1e-15)
            candidates.append((score, label, mode, delta_t))
    candidates.sort(key=lambda c: -c[0])

    schedule = _schedule_from_block_modes(block_mode, profile, num_modes)
    energy, duration = schedule.predict(profile, mode_table, costs)
    moves = 0
    for _score, label, mode, _delta_t in candidates:
        if block_mode[label] != base_mode:
            continue  # block already moved by a better-ranked candidate
        trial = dict(block_mode)
        trial[label] = mode
        trial_schedule = _schedule_from_block_modes(trial, profile, num_modes)
        trial_energy, trial_time = trial_schedule.predict(profile, mode_table, costs)
        if trial_time <= deadline_s * (1 + 1e-12) and trial_energy < energy:
            block_mode = trial
            schedule = trial_schedule
            energy, duration = trial_energy, trial_time
            moves += 1

    return GreedyOutcome(
        schedule=schedule,
        predicted_energy_nj=energy,
        predicted_time_s=duration,
        moves_taken=moves,
        moves_considered=len(candidates),
    )
