"""Worst-case-execution-time safe scheduling (Shin et al. flavour).

Shin, Kim and Lee's intra-task voltage scheduler (IEEE D&T 2001 — the
paper's reference [27]) assigns each basic block the lowest speed that
still meets the deadline under *worst-case* remaining execution time,
computed from static WCET analysis rather than profiles.  The guarantee
is hard: every path, not just the profiled ones, meets the deadline.
The price is conservatism — energy is left on the table whenever the
worst case is rare.

This module reproduces that approach on our substrate:

* :func:`block_wcet` — per-block worst-case time at each mode: all cache
  lookups charged synchronously (no overlap) plus a configurable
  fraction of accesses paying the DRAM fill — the knob standing in for
  the precision of a WCET tool's cache classification;
* :func:`program_wcet` — longest-path analysis over the CFG with loop
  iteration *bounds* (taken from a profile's observed trip counts, as an
  engineer would annotate them);
* :func:`wcet_schedule` — a single-mode-per-program safe schedule: the
  slowest mode whose program WCET meets the deadline.  (Shin et al.
  refine per-block along branches; the single-speed variant is already
  the honest comparison point for the *guarantee* trade-off, since our
  MILP's per-edge refinement has no WCET analogue without per-path
  bounds.)

The ablation benchmark shows the cost of the hard guarantee versus the
profile-driven MILP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError, ScheduleError
from repro.ir.cfg import CFG, ENTRY_EDGE_SOURCE
from repro.ir.instructions import Load, OpClass, Store
from repro.ir.loops import find_natural_loops
from repro.core.milp.schedule import DVSSchedule
from repro.profiling.profile_data import ProfileData
from repro.simulator.config import MachineConfig
from repro.simulator.dvs import ModeTable


@dataclass(frozen=True)
class WcetReport:
    """Program WCET per mode plus the derived loop bounds."""

    wcet_s_by_mode: tuple[float, ...]
    loop_bounds: dict[str, int]
    safe_mode: int | None = None


def block_wcet(
    block,
    config: MachineConfig,
    frequency_hz: float,
    miss_fraction: float = 0.15,
) -> float:
    """Worst-case wall-clock time of one block execution at a frequency.

    Every memory access is charged its full L1+L2 lookup synchronously
    (no overlap — worst case), and ``miss_fraction`` of data accesses and
    instruction-line fetches additionally pay the wall-clock DRAM fill.
    ``miss_fraction`` models the precision of the cache analysis a real
    WCET tool performs (persistence/first-miss classification): 1.0 is
    the naive all-miss bound, ~0.1–0.2 a competent analyzer.
    """
    cycles = 0
    memory_accesses = 0
    for instr in block.instructions:
        cycles += instr.op_class.latency
        if isinstance(instr, (Load, Store)):
            cycles += config.l1d.hit_latency_cycles + config.l2.hit_latency_cycles
            memory_accesses += 1
    lines = max(1, (len(block.instructions) * 4) // config.l1i.line_bytes + 1)
    cycles += lines * config.l1i.hit_latency_cycles
    memory_accesses += lines
    dram_time = memory_accesses * miss_fraction * config.memory_latency_s
    return cycles / frequency_hz + dram_time


def loop_bounds_from_profile(cfg: CFG, profile: ProfileData) -> dict[str, int]:
    """Per-loop-header iteration bounds observed in a profile.

    WCET analysis needs externally supplied loop bounds; using the
    profile's maximum observed header count over its entries (rounded
    up) mirrors how an engineer derives annotations from test runs.
    """
    bounds: dict[str, int] = {}
    for loop in find_natural_loops(cfg):
        header_count = profile.block_counts.get(loop.header, 0)
        entries = sum(
            profile.edge_counts.get(edge, 0) for edge in loop.entry_edges(cfg)
        )
        if entries <= 0:
            bounds[loop.header] = max(1, header_count)
        else:
            bounds[loop.header] = max(1, -(-header_count // entries))  # ceil
    return bounds


def program_wcet(
    cfg: CFG,
    config: MachineConfig,
    frequency_hz: float,
    loop_bounds: dict[str, int],
    miss_fraction: float = 0.15,
) -> float:
    """Longest-path execution time with bounded loops.

    The classic structural method: loops collapse innermost-first into
    super-nodes whose cost is ``bound × per-iteration-WCET`` (plus one
    final header execution for the exit test); each enclosing scope is
    then an acyclic graph over ordinary blocks and super-nodes, solved by
    memoized longest-path.  Irreducible cycles are rejected.
    """
    block_costs = {
        label: block_wcet(block, config, frequency_hz, miss_fraction)
        for label, block in cfg.blocks.items()
    }
    loops = find_natural_loops(cfg)
    loops.sort(key=lambda l: len(l.blocks))  # innermost first
    collapsed: dict[str, float] = {}

    for index, loop in enumerate(loops):
        inner = _maximal_inner_loops(loops[:index], loop.blocks - {loop.header})
        iteration = _scope_longest(
            cfg, loop.blocks, loop.header, block_costs, collapsed, inner,
            back_edge_header=loop.header,
        )
        bound = loop_bounds.get(loop.header, 1)
        collapsed[loop.header] = iteration * bound + block_costs[loop.header]

    top_inner = _maximal_inner_loops(loops, set(cfg.blocks))
    return _scope_longest(
        cfg, set(cfg.blocks), cfg.entry, block_costs, collapsed, top_inner,
        back_edge_header=None,
    )


def _maximal_inner_loops(candidates, scope_blocks: set[str]):
    """Loops fully inside ``scope_blocks`` not nested in another such loop."""
    inside = [l for l in candidates if l.blocks <= scope_blocks]
    maximal = []
    for loop in inside:
        if not any(
            other is not loop and loop.blocks < other.blocks for other in inside
        ):
            maximal.append(loop)
    return maximal


def _scope_longest(
    cfg: CFG,
    scope_blocks: set[str],
    start: str,
    block_costs: dict[str, float],
    collapsed: dict[str, float],
    inner_loops,
    back_edge_header: str | None,
) -> float:
    """Longest path from ``start`` through one acyclic scope.

    ``inner_loops`` are represented as super-nodes keyed by their header:
    entering any of their blocks routes to the header; leaving continues
    from the loop's exit edges.  Edges returning to ``back_edge_header``
    (the scope's own loop header) are ignored.
    """
    owner: dict[str, str] = {}
    exits: dict[str, set[str]] = {}
    for loop in inner_loops:
        for label in loop.blocks:
            owner[label] = loop.header
        exits[loop.header] = {
            succ
            for label in loop.blocks
            for succ in cfg.successors(label)
            if succ not in loop.blocks
        }

    def node_of(label: str) -> str:
        return owner.get(label, label)

    def successors(node: str) -> set[str]:
        raw = exits[node] if node in exits else set(cfg.successors(node))
        result = set()
        for succ in raw:
            if succ not in scope_blocks:
                continue
            if back_edge_header is not None and succ == back_edge_header:
                continue
            result.add(node_of(succ))
        result.discard(node)
        return result

    def node_cost(node: str) -> float:
        return collapsed[node] if node in exits else block_costs[node]

    memo: dict[str, float] = {}
    on_stack: set[str] = set()

    def visit(node: str) -> float:
        if node in memo:
            return memo[node]
        if node in on_stack:
            raise AnalysisError(
                f"irreducible or unbounded cycle through {node!r} in WCET analysis"
            )
        on_stack.add(node)
        best_tail = 0.0
        for succ in successors(node):
            best_tail = max(best_tail, visit(succ))
        on_stack.discard(node)
        memo[node] = node_cost(node) + best_tail
        return memo[node]

    return visit(node_of(start))


def wcet_schedule(
    cfg: CFG,
    profile: ProfileData,
    mode_table: ModeTable,
    config: MachineConfig,
    deadline_s: float,
    miss_fraction: float = 0.15,
) -> tuple[DVSSchedule, WcetReport]:
    """The slowest single mode whose WCET meets the deadline, as an edge
    schedule (so it runs on the same machinery as everything else).

    Raises:
        ScheduleError: when even the fastest mode's WCET misses the
            deadline — the hallmark of WCET conservatism: profiled
            runtimes may fit comfortably while the guarantee cannot be
            given.
    """
    bounds = loop_bounds_from_profile(cfg, profile)
    wcets = tuple(
        program_wcet(cfg, config, point.frequency_hz, bounds, miss_fraction)
        for point in mode_table
    )
    safe_mode = None
    for mode, wcet in enumerate(wcets):
        if wcet <= deadline_s * (1 + 1e-12):
            safe_mode = mode
            break
    report = WcetReport(wcet_s_by_mode=wcets, loop_bounds=bounds, safe_mode=safe_mode)
    if safe_mode is None:
        raise ScheduleError(
            f"no mode's WCET ({wcets[-1]:.6g}s at best) meets the deadline "
            f"{deadline_s:.6g}s — the hard guarantee is unavailable"
        )
    assignment = {edge: safe_mode for edge in profile.edge_counts}
    return DVSSchedule(assignment=assignment, num_modes=len(mode_table)), report
