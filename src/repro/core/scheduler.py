"""High-level compile-time DVS pipeline (the paper's Figure 13).

:class:`DVSOptimizer` ties the pieces together::

    profile  ->  filter edges  ->  build MILP  ->  solve  ->  schedule
                                                      |
                             verify: simulate the scheduled program

Typical use::

    from repro.core import DVSOptimizer
    from repro.simulator import Machine, XSCALE_3, TransitionCostModel

    machine = Machine(mode_table=XSCALE_3,
                      transition_model=TransitionCostModel())
    opt = DVSOptimizer(machine)
    outcome = opt.optimize(cfg, deadline_s=1e-3, inputs=..., registers=...)
    print(outcome.schedule, outcome.predicted_energy_nj)
    run = opt.verify(cfg, outcome.schedule, inputs=..., registers=...)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import observe
from repro.errors import ScheduleError
from repro.ir.cfg import CFG
from repro.solver.solution import SolveStatus
from repro.verify.certificate import CertificateReport, verify_certificate
from repro.core.milp.filtering import FilterResult, filter_edges, no_filtering
from repro.core.milp.formulation import (
    FormulationOptions,
    MilpFormulation,
    build_formulation,
)
from repro.core.milp.multidata import CategoryProfile, build_multidata_formulation
from repro.core.milp.schedule import DVSSchedule
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import profile_program
from repro.simulator.machine import Machine, RunResult
from repro.solver.solution import Solution


@dataclass
class OptimizationOutcome:
    """Everything one optimization run produced."""

    schedule: DVSSchedule
    solution: Solution
    formulation: MilpFormulation
    profile: ProfileData
    predicted_energy_nj: float
    predicted_time_s: float
    solve_time_s: float
    filter_result: FilterResult | None = None
    # Independent re-check of the solve (constraint residuals, bounds,
    # integrality, objective recomputation); always attached by the
    # optimizer, which refuses to ship an uncertified solution.  The
    # greedy fallback tier has no MILP point to certify; its outcome
    # carries a ``schedule_check`` replay report instead.
    certificate: CertificateReport | None = None
    # Which rung of the anytime fallback chain produced the schedule
    # ("milp-scipy", "milp-native" or "greedy"); exact solves record the
    # backend that ran.
    fallback_tier: str = "milp"
    # Relative gap between the emitted schedule's energy and the best
    # proven lower bound (0.0 for a proven optimum, None when no bound
    # could be established within budget).
    optimality_gap: float | None = 0.0
    # Every fallback rung tried, in order, with its verdict.
    tier_attempts: tuple = ()
    # Independent first-principles replay of the final schedule
    # (:func:`repro.verify.schedule_check.check_schedule`); attached by
    # the anytime path for every tier.
    schedule_check: object | None = None

    @property
    def num_independent_edges(self) -> int:
        return len(self.formulation.independent_edges)

    @property
    def degraded(self) -> bool:
        """True when the schedule is feasible but not proven optimal."""
        return not self.solution.ok


class DVSOptimizer:
    """Profile-driven MILP placement of DVS mode-set instructions.

    Args:
        machine: simulator whose mode table and transition model define
            the optimization target.
        filter_threshold: Section 5.2 energy-tail threshold (paper: 0.02);
            pass 0 to disable filtering.
        backend: solver backend ("auto", "scipy", "native", or
            "continuous" — the exact continuous-voltage engine of
            :mod:`repro.core.continuous`, whose rounded-up discrete
            schedule is feasible but not proven optimal).
        solver_options: extra keyword options forwarded to every solve
            (e.g. ``solver_engine`` to pick the native LP core, or
            ``warm_key`` so a sweep's consecutive deadlines hand their
            basis and pseudocosts to each other; ``continuous_prune``
            seeds the native branch-and-bound with the continuous
            round-up as a warm incumbent).  Execution hints only — they
            never change the optimum.
    """

    BACKENDS = ("auto", "scipy", "native", "continuous")

    def __init__(
        self,
        machine: Machine,
        filter_threshold: float = 0.02,
        backend: str = "auto",
        solver_options: dict | None = None,
    ) -> None:
        if backend not in self.BACKENDS:
            raise ScheduleError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.machine = machine
        self.filter_threshold = filter_threshold
        self.backend = backend
        self.solver_options = dict(solver_options or {})

    # -- pipeline stages ---------------------------------------------------------

    def profile(
        self,
        cfg: CFG,
        inputs: dict[str, list] | None = None,
        registers: dict[str, float] | None = None,
    ) -> ProfileData:
        """Profile the program under every mode of the machine."""
        return profile_program(self.machine, cfg, inputs=inputs, registers=registers)

    def build(
        self,
        profile: ProfileData,
        deadline_s: float,
        use_filtering: bool | None = None,
    ) -> tuple[MilpFormulation, FilterResult]:
        """Filter edges and build the MILP for a profile."""
        apply_filter = (
            use_filtering if use_filtering is not None else self.filter_threshold > 0
        )
        filter_result = (
            filter_edges(profile, threshold=self.filter_threshold)
            if apply_filter
            else no_filtering(profile)
        )
        formulation = build_formulation(
            profile,
            self.machine.mode_table,
            deadline_s,
            FormulationOptions(
                transition_model=self.machine.transition_model,
                filter_result=filter_result,
            ),
        )
        return formulation, filter_result

    def optimize(
        self,
        cfg: CFG,
        deadline_s: float,
        inputs: dict[str, list] | None = None,
        registers: dict[str, float] | None = None,
        profile: ProfileData | None = None,
        use_filtering: bool | None = None,
        hoist: bool = True,
        budget_s: float | None = None,
    ) -> OptimizationOutcome:
        """Run the full pipeline for one program and deadline.

        Args:
            cfg: the program.
            deadline_s: execution-time budget for the profiled input.
            inputs, registers: program input (ignored when ``profile``
                is supplied).
            profile: reuse an existing profile instead of re-simulating.
            use_filtering: override the constructor's filtering choice.
            hoist: apply the silent-mode-set hoisting post-pass.
            budget_s: wall-clock budget for the solve.  When set, the
                anytime fallback chain (HiGHS → native B&B incumbent →
                greedy heuristic) guarantees a feasible, independently
                checked schedule within roughly this budget instead of
                raising on solver limits; the outcome's
                ``fallback_tier``/``optimality_gap`` report how it was
                obtained.  When None (the default), the solve is exact
                and solver limits raise.

        Raises:
            ScheduleError: when the MILP is infeasible (deadline too tight
                even at the fastest mode); without ``budget_s``, also when
                the solver hits its limits.
        """
        if profile is None:
            profile = self.profile(cfg, inputs=inputs, registers=registers)
        if budget_s is not None:
            from repro.resilience.anytime import optimize_anytime

            return optimize_anytime(
                self, cfg, deadline_s, profile, budget_s,
                use_filtering=use_filtering, hoist=hoist,
            )
        if self.backend == "continuous":
            return self._optimize_continuous(
                cfg, deadline_s, profile, use_filtering, hoist
            )
        formulation, filter_result = self.build(profile, deadline_s, use_filtering)

        options = dict(self.solver_options)
        if options.pop("continuous_prune", False):
            incumbent = self.continuous_incumbent(
                profile, deadline_s, formulation, filter_result
            )
            if incumbent is not None:
                options["incumbent"] = incumbent
        with observe.span("optimizer.optimize", program=profile.name,
                          deadline_s=deadline_s) as sp:
            solution = formulation.solve(backend=self.backend, **options)
        solve_time = sp.elapsed_s
        if not solution.ok:
            raise ScheduleError(
                f"MILP for {profile.name!r} at deadline {deadline_s:.6g}s "
                f"finished with status {solution.status.value}"
            )
        certificate = verify_certificate(formulation, solution)
        certificate.raise_if_invalid()
        schedule = formulation.extract_schedule(solution)
        schedule.validate_against(cfg)
        if hoist:
            schedule = schedule.hoist_silent(profile)
        return OptimizationOutcome(
            schedule=schedule,
            solution=solution,
            formulation=formulation,
            profile=profile,
            predicted_energy_nj=solution.objective,
            predicted_time_s=formulation.predicted_time(solution),
            solve_time_s=solve_time,
            filter_result=filter_result,
            certificate=certificate,
            fallback_tier=f"milp-{solution.backend}",
            optimality_gap=solution.optimality_gap(),
        )

    # -- the exact continuous-voltage engine ---------------------------------------

    def continuous_bound(self, profile: ProfileData, deadline_s: float):
        """Exact continuous-voltage optimum (nJ lower bound) for a profile.

        See :func:`repro.core.continuous.continuous_bound`; this is the
        achievable-optimum upgrade of the paper's Section 3 analytical
        bound, computed by the Li-Yao-Yuan O(n^2) engine.
        """
        from repro.core.continuous import continuous_bound

        return continuous_bound(profile, self.machine.mode_table, deadline_s)

    def continuous_incumbent(
        self,
        profile: ProfileData,
        deadline_s: float,
        formulation: MilpFormulation,
        filter_result: FilterResult | None,
    ):
        """Warm B&B incumbent ``(x, objective)`` from the continuous round-up.

        Returns None when the bound or round-up is unavailable (e.g. a
        single-mode profile or an infeasible deadline) — pruning is an
        accelerator, never a prerequisite.  The vector is checked against
        the formulation's own deadline row before it is handed over, so
        an injected incumbent is always a feasible point of the exact
        model being solved.
        """
        from repro.core.continuous import continuous_bound, round_up_schedule

        try:
            bound = continuous_bound(profile, self.machine.mode_table, deadline_s)
            rounded = round_up_schedule(
                profile, self.machine.mode_table, deadline_s, bound.speeds,
                self.machine.transition_model, filter_result,
            )
        except ScheduleError:
            return None
        if rounded is None:
            return None
        x, objective, time_s = formulation.incumbent_vector(rounded.rep_modes)
        if time_s > deadline_s:
            return None
        observe.add("optimizer.continuous_incumbents")
        return x, objective

    def _optimize_continuous(
        self,
        cfg: CFG,
        deadline_s: float,
        profile: ProfileData,
        use_filtering: bool | None,
        hoist: bool,
    ) -> OptimizationOutcome:
        """The ``backend="continuous"`` path: exact continuous optimum,
        rounded up to a feasible discrete schedule.

        The outcome's ``predicted_energy_nj`` is the rounded schedule's
        exact model objective (a feasible point, not a proven optimum —
        the solution status is FEASIBLE and ``optimality_gap`` prices it
        against the continuous lower bound).  Never times out: the whole
        path is O(n^2) + a handful of profile replays.
        """
        from repro.core.continuous import continuous_bound, round_up_schedule
        from repro.verify.schedule_check import check_schedule

        formulation, filter_result = self.build(profile, deadline_s, use_filtering)
        with observe.span("optimizer.continuous", program=profile.name,
                          deadline_s=deadline_s) as sp:
            bound = continuous_bound(profile, self.machine.mode_table, deadline_s)
            rounded = round_up_schedule(
                profile, self.machine.mode_table, deadline_s, bound.speeds,
                self.machine.transition_model, filter_result,
            )
            if rounded is None:
                raise ScheduleError(
                    f"deadline {deadline_s:.6g}s infeasible for {profile.name!r}: "
                    "even the all-fastest schedule misses it"
                )
            x, objective, time_s = formulation.incumbent_vector(rounded.rep_modes)
        schedule = rounded.schedule
        schedule.validate_against(cfg)
        if hoist:
            schedule = schedule.hoist_silent(profile)
        feasibility = check_schedule(
            schedule, cfg, profile, self.machine.mode_table,
            self.machine.transition_model, deadline_s,
        )
        if not feasibility.ok:
            raise ScheduleError(
                f"continuous round-up failed its feasibility replay: "
                f"{feasibility.summary}"
            )
        solution = Solution(
            status=SolveStatus.FEASIBLE,
            objective=objective,
            x=x,
            backend="continuous",
            best_bound=bound.energy_nj,
        )
        gap = max(0.0, (objective - bound.energy_nj) / max(1.0, abs(objective)))
        return OptimizationOutcome(
            schedule=schedule,
            solution=solution,
            formulation=formulation,
            profile=profile,
            predicted_energy_nj=objective,
            predicted_time_s=time_s,
            solve_time_s=sp.elapsed_s,
            filter_result=filter_result,
            certificate=None,
            fallback_tier="continuous",
            optimality_gap=gap,
            schedule_check=feasibility,
        )

    def optimize_multi(
        self,
        cfg: CFG,
        categories: list[CategoryProfile],
        use_filtering: bool | None = None,
        hoist: bool = True,
    ) -> OptimizationOutcome:
        """Section 4.3: one schedule for several weighted input categories."""
        apply_filter = (
            use_filtering if use_filtering is not None else self.filter_threshold > 0
        )
        filter_result = (
            filter_edges(categories[0].profile, threshold=self.filter_threshold)
            if apply_filter
            else None
        )
        formulation = build_multidata_formulation(
            categories,
            self.machine.mode_table,
            transition_model=self.machine.transition_model,
            filter_result=filter_result,
        )
        options = dict(self.solver_options)
        options.pop("continuous_prune", None)  # single-profile hint only
        backend = self.backend if self.backend != "continuous" else "auto"
        with observe.span("optimizer.optimize_multi",
                          categories=len(categories)) as sp:
            solution = formulation.solve(backend=backend, **options)
        solve_time = sp.elapsed_s
        if not solution.ok:
            raise ScheduleError(
                f"multi-category MILP finished with status {solution.status.value}"
            )
        certificate = verify_certificate(formulation, solution)
        certificate.raise_if_invalid()
        schedule = formulation.extract_schedule(solution)
        schedule.validate_against(cfg)
        if hoist:
            # Removal is safe only when the mode-set is silent on every
            # category's profiled paths, so all profiles go in at once.
            schedule = schedule.hoist_silent(*[c.profile for c in categories])
        return OptimizationOutcome(
            schedule=schedule,
            solution=solution,
            formulation=formulation,
            profile=categories[0].profile,
            predicted_energy_nj=solution.objective,
            predicted_time_s=formulation.predicted_time(solution),
            solve_time_s=solve_time,
            filter_result=filter_result,
            certificate=certificate,
            fallback_tier=f"milp-{solution.backend}",
            optimality_gap=solution.optimality_gap(),
        )

    # -- verification ---------------------------------------------------------------

    def verify(
        self,
        cfg: CFG,
        schedule: DVSSchedule,
        inputs: dict[str, list] | None = None,
        registers: dict[str, float] | None = None,
    ) -> RunResult:
        """Execute the scheduled program on the simulator.

        Returns the measured run; callers compare its wall time against
        the deadline and its energy against the prediction.
        """
        initial = schedule.initial_mode
        return self.machine.run(
            cfg,
            inputs=inputs,
            registers=registers,
            schedule=schedule.assignment,
            initial_mode=initial if initial is not None else len(self.machine.mode_table) - 1,
        )

    # -- design-space exploration --------------------------------------------------

    def energy_deadline_curve(
        self,
        cfg: CFG,
        profile: ProfileData,
        fractions: list[float] | None = None,
    ) -> list[tuple[float, float]]:
        """The energy/deadline Pareto frontier for one profiled program.

        Args:
            cfg: the program.
            profile: its profile (all modes).
            fractions: deadline positions in the all-fast..all-slow range
                (default: 11 evenly spaced points from 0.0 to 1.0).

        Returns:
            [(deadline_s, optimal_energy_nj), ...] sorted by deadline.
            Energy is non-increasing along the curve (asserted cheap here;
            tested properly in the suite).
        """
        fractions = fractions if fractions is not None else [i / 10 for i in range(11)]
        modes = sorted(profile.wall_time_s)
        t_fast = profile.wall_time_s[modes[-1]]
        t_slow = profile.wall_time_s[modes[0]]
        curve: list[tuple[float, float]] = []
        for frac in sorted(fractions):
            deadline = t_fast + frac * (t_slow - t_fast)
            outcome = self.optimize(cfg, deadline, profile=profile)
            curve.append((deadline, outcome.predicted_energy_nj))
        return curve

    # -- baselines --------------------------------------------------------------------

    def best_single_mode(
        self,
        profile: ProfileData,
        deadline_s: float,
    ) -> tuple[int, float]:
        """Slowest single mode meeting the deadline and its energy (nJ).

        This is the baseline the paper normalizes against ("the best
        single frequency that meets the deadline").
        """
        num_modes = len(self.machine.mode_table)
        for mode in range(num_modes):
            if profile.wall_time_s[mode] <= deadline_s * (1 + 1e-9):
                return mode, profile.cpu_energy_nj[mode]
        raise ScheduleError(
            f"deadline {deadline_s:.6g}s infeasible for {profile.name!r}: "
            f"fastest mode needs {profile.wall_time_s[num_modes - 1]:.6g}s"
        )
