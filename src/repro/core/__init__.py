"""The paper's primary contribution.

* :mod:`repro.core.analytical` — the Section 3 analytical model: upper
  bounds on energy savings from compile-time intra-program DVS under
  continuous and discrete voltage scaling.
* :mod:`repro.core.milp` — the Section 4 MILP formulation: edge-grain
  mode-set placement with transition costs, edge filtering and multiple
  input-data categories.
* :mod:`repro.core.scheduler` — the high-level pipeline tying profiling,
  formulation, solving and schedule verification together.
"""

from repro.core.scheduler import DVSOptimizer, OptimizationOutcome

__all__ = ["DVSOptimizer", "OptimizationOutcome"]
