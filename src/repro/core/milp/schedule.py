"""Executable DVS schedules: edge -> mode assignments.

A :class:`DVSSchedule` is what the whole pipeline produces: the machine
simulator consumes it directly (mode-set instructions conceptually sit on
the scheduled edges).  The class also implements the silent-mode-set
hoisting post-pass sketched at the end of the paper's Section 4.2 —
dropping mode-sets that are provably redundant given the profiled paths —
and profile-based predictions of the scheduled run's time and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.ir.cfg import CFG, ENTRY_EDGE_SOURCE, Edge
from repro.core.milp.transition import TransitionCosts
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable


@dataclass
class DVSSchedule:
    """An edge -> mode-index assignment.

    Attributes:
        assignment: mode index per edge (the synthetic entry edge sets the
            starting mode).
        num_modes: size of the mode table it targets.
    """

    assignment: dict[Edge, int]
    num_modes: int

    def __post_init__(self) -> None:
        for edge, mode in self.assignment.items():
            if not 0 <= mode < self.num_modes:
                raise ScheduleError(f"edge {edge} assigned invalid mode {mode}")

    def mode_of(self, edge: Edge) -> int | None:
        return self.assignment.get(edge)

    @property
    def initial_mode(self) -> int | None:
        for edge, mode in self.assignment.items():
            if edge[0] == ENTRY_EDGE_SOURCE:
                return mode
        return None

    def modes_used(self) -> set[int]:
        return set(self.assignment.values())

    @property
    def static_modeset_count(self) -> int:
        """Static mode-set instructions the schedule implies (excluding the
        entry-edge initial setting, which costs nothing)."""
        return sum(1 for edge in self.assignment if edge[0] != ENTRY_EDGE_SOURCE)

    # -- validation -----------------------------------------------------------

    def validate_against(self, cfg: CFG) -> None:
        """Check every scheduled edge exists in the CFG."""
        edges = set(cfg.edges(include_entry=True))
        for edge in self.assignment:
            if edge not in edges:
                raise ScheduleError(f"scheduled edge {edge} is not a CFG edge")

    # -- predictions from a profile ----------------------------------------------

    def predict(
        self,
        profile: ProfileData,
        mode_table: ModeTable,
        costs: TransitionCosts,
    ) -> tuple[float, float]:
        """Profile-based (energy_nj, time_s) prediction for this schedule.

        Replays the profiled path counts under the assignment; used in
        tests to confirm the MILP objective equals the schedule's value.
        Unscheduled edges inherit no setting, so the mode on (i, j) is
        taken as the scheduled mode of (i, j) when present, else of the
        path's incoming edge (the machine's actual semantics).
        """
        energy = 0.0
        duration = 0.0
        for edge, count in profile.edge_counts.items():
            mode = self._effective_mode(edge, profile)
            energy += count * profile.energy(edge[1], mode)
            duration += count * profile.time(edge[1], mode)
        voltages = mode_table.voltages()
        for (h, i, j), count in profile.path_counts.items():
            m_in = self._effective_mode((h, i), profile)
            m_out = self._effective_mode((i, j), profile)
            if m_in == m_out:
                continue
            dv = abs(voltages[m_in] - voltages[m_out])
            dv2 = abs(voltages[m_in] ** 2 - voltages[m_out] ** 2)
            energy += count * costs.ce_nj_per_v2 * dv2
            duration += count * costs.ct_s_per_v * dv
        return energy, duration

    def _effective_mode(self, edge: Edge, profile: ProfileData) -> int:
        mode = self.assignment.get(edge)
        if mode is not None:
            return mode
        # No setting on this edge: the mode is whatever the dominant
        # predecessor path left behind; a full schedule (one mode per
        # profiled edge, as the MILP emits) never reaches this.
        raise ScheduleError(f"no mode scheduled for edge {edge}")

    # -- post-pass ----------------------------------------------------------------

    def hoist_silent(self, *profiles: ProfileData) -> "DVSSchedule":
        """Drop provably redundant mode-sets (Section 4.2's post-pass).

        A mode-set on edge (i, j) is redundant when every profiled local
        path (h, i, j) — across *all* supplied profiles — arrives with the
        same mode already in effect, i.e. every incoming edge (h, i) is
        scheduled to the same mode as (i, j).  Such mode-sets are
        dynamically silent on every profiled execution; removing them
        reduces static code size and dynamic mode-set executions without
        changing timing or energy.

        The entry-edge setting is always kept.  Pass every input
        category's profile at once when the schedule serves several
        categories: removals are safe only when silent for all of them.
        """
        incoming_by_edge: dict[Edge, set[int]] = {}
        for profile in profiles:
            for (h, i, j), count in profile.path_counts.items():
                if count <= 0:
                    continue
                out_edge = (i, j)
                in_mode = self.assignment.get((h, i))
                incoming_by_edge.setdefault(out_edge, set()).add(
                    in_mode if in_mode is not None else -1
                )
        kept: dict[Edge, int] = {}
        for edge, mode in self.assignment.items():
            if edge[0] == ENTRY_EDGE_SOURCE:
                kept[edge] = mode
                continue
            modes_arriving = incoming_by_edge.get(edge)
            if modes_arriving is not None and modes_arriving == {mode}:
                continue  # silent on every profiled path: hoisted away
            kept[edge] = mode
        return DVSSchedule(assignment=kept, num_modes=self.num_modes)

    def __len__(self) -> int:
        return len(self.assignment)

    def __repr__(self) -> str:
        return f"DVSSchedule({len(self.assignment)} edges, modes used={sorted(self.modes_used())})"
