"""Linearized transition-cost constants (paper Section 4.2).

The raw costs between voltages V1, V2 are::

    SE = (1 - u) * c * |V1² - V2²|        Joules
    ST = (2 c / Imax) * |V1 - V2|          seconds

After introducing the mode variables the absolute values apply to linear
expressions of constants times binaries, so each cost factors into a
constant (CE or CT) times an auxiliary variable bounded by ±the linear
expression::

    CE = (1 - u) * c          [J / V²]
    CT = 2 c / Imax           [s / V]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.dvs import TransitionCostModel


@dataclass(frozen=True)
class TransitionCosts:
    """The two linear-form constants, with unit helpers.

    Attributes:
        ce_j_per_v2: CE in Joules per squared volt.
        ct_s_per_v: CT in seconds per volt.
    """

    ce_j_per_v2: float
    ct_s_per_v: float

    @classmethod
    def from_model(cls, model: TransitionCostModel) -> "TransitionCosts":
        # Delegate to the model's canonical properties instead of
        # re-deriving (1-u)·c here: both the MILP constants and the
        # simulator's per-transition charges must come from one place.
        return cls(
            ce_j_per_v2=model.ce_j_per_v2,
            ct_s_per_v=model.ct_s_per_v,
        )

    @property
    def ce_nj_per_v2(self) -> float:
        """CE in nanojoules (the formulation's energy unit)."""
        return self.ce_j_per_v2 * 1e9

    @property
    def is_free(self) -> bool:
        """True when transitions cost nothing (the analytical model's
        optimistic assumption 6)."""
        return self.ce_j_per_v2 == 0.0 and self.ct_s_per_v == 0.0
