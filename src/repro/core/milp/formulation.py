"""The edge-based MILP of Section 4.2.

For every independent edge (i, j) and mode m there is a binary ``k_ijm``
with ``sum_m k_ijm == 1``.  For every profiled local path (h, i, j) two
auxiliary continuous variables ``e_hij``, ``t_hij`` bound the absolute
voltage(-squared) difference between the mode chosen on (h, i) and on
(i, j), linearizing the transition costs.

Objective (minimize, nanojoules)::

    sum_{i,j} G_ij * sum_m k_ijm * E_jm  +  sum_{h,i,j} D_hij * CE * e_hij

Deadline constraint (seconds)::

    sum_{i,j} G_ij * sum_m k_ijm * T_jm  +  sum_{h,i,j} D_hij * CT * t_hij
        <= deadline

Filtered edges reuse their representative's ``k`` variables, so they still
contribute their time and energy terms — deadlines remain exact, only
optimality can be affected (the paper's Table 3 result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe
from repro.errors import ModelError, ScheduleError
from repro.ir.cfg import Edge
from repro.core.milp.filtering import FilterResult, no_filtering
from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, TransitionCostModel, ZERO_TRANSITION
from repro.solver.model import LinExpr, Model, Variable, lin_sum
from repro.solver.solution import Solution


@dataclass(frozen=True)
class FormulationOptions:
    """Knobs for building the MILP."""

    transition_model: TransitionCostModel = ZERO_TRANSITION
    # When None, no filtering is applied (all edges independent).
    filter_result: FilterResult | None = None


@dataclass
class MilpFormulation:
    """A built model plus the bookkeeping to decode its solution."""

    model: Model
    mode_table: ModeTable
    # edge -> its representative's mode variables (one per mode).
    edge_vars: dict[Edge, list[Variable]]
    independent_edges: list[Edge]
    deadline_expr: LinExpr
    deadline_s: float = 0.0
    num_paths: int = 0
    build_time_s: float = 0.0
    # Per-path transition auxiliaries (in_vars, out_vars, e_var, t_var) —
    # kept so an external integral point can be lifted into the model's
    # variable space (see incumbent_vector).
    aux_paths: list = field(default_factory=list)

    def solve(self, backend: str = "auto", **options) -> Solution:
        """Solve and return the raw solver solution."""
        return self.model.solve(backend=backend, **options)

    def extract_schedule(
        self, solution: Solution, allow_incumbent: bool = False
    ) -> DVSSchedule:
        """Decode the chosen mode per edge from a solved model.

        Args:
            solution: the backend's solution.
            allow_incumbent: also accept a feasible-but-unproven point
                (a ``LIMIT`` incumbent from an anytime solve) instead of
                requiring proven optimality.
        """
        usable = solution.ok or (allow_incumbent and solution.has_incumbent)
        if not usable:
            raise ScheduleError(f"cannot extract a schedule from status {solution.status}")
        assignment: dict[Edge, int] = {}
        for edge, variables in self.edge_vars.items():
            chosen = [m for m, var in enumerate(variables) if solution.x[var.index] > 0.5]
            if len(chosen) != 1:
                raise ScheduleError(f"edge {edge} selected {len(chosen)} modes")
            assignment[edge] = chosen[0]
        return DVSSchedule(assignment=assignment, num_modes=len(self.mode_table))

    def predicted_time(self, solution: Solution) -> float:
        """Deadline-constraint LHS at the solution (seconds)."""
        return self.deadline_expr.value(solution.x)

    def incumbent_vector(self, rep_modes: dict[Edge, int]):
        """Lift a per-representative mode choice into model space.

        Returns ``(x, objective, time_s)`` — the full variable vector
        (binaries set, transition auxiliaries at their implied absolute
        values), the model objective at that point, and the deadline-row
        value.  The point is feasible by construction whenever
        ``time_s <= deadline_s``, which makes it a sound warm incumbent
        for branch and bound over this exact model.
        """
        import numpy as np

        x = np.zeros(len(self.model.variables))
        for rep in self.independent_edges:
            x[self.edge_vars[rep][rep_modes[rep]].index] = 1.0
        voltages = self.mode_table.voltages()
        v_squared = [v * v for v in voltages]
        for in_vars, out_vars, e_var, t_var in self.aux_paths:
            m_in = next(m for m, var in enumerate(in_vars) if x[var.index] > 0.5)
            m_out = next(m for m, var in enumerate(out_vars) if x[var.index] > 0.5)
            x[e_var.index] = abs(v_squared[m_in] - v_squared[m_out])
            x[t_var.index] = abs(voltages[m_in] - voltages[m_out])
        objective = self.model.objective.value(x)
        return x, float(objective), float(self.deadline_expr.value(x))


def build_formulation(
    profile: ProfileData,
    mode_table: ModeTable,
    deadline_s: float,
    options: FormulationOptions | None = None,
) -> MilpFormulation:
    """Build the Section 4.2 MILP for one profiled program.

    Args:
        profile: profiled counts and per-mode block time/energy.  Must
            cover every mode in ``mode_table``.
        mode_table: available operating points.
        deadline_s: execution-time budget.
        options: transition model and optional filtering.

    Raises:
        ModelError: when the profile does not cover all modes.
    """
    options = options or FormulationOptions()
    build_span = observe.start_span("milp.build", program=profile.name)
    num_modes = len(mode_table)
    for m in range(num_modes):
        if m not in profile.per_mode:
            raise ModelError(f"profile lacks mode {m}; profile all modes first")

    filter_result = options.filter_result or no_filtering(profile)
    costs = TransitionCosts.from_model(options.transition_model)
    voltages = mode_table.voltages()
    v_squared = [v * v for v in voltages]

    model = Model(f"dvs-{profile.name}")

    # Mode variables for independent (representative) edges only.
    rep_vars: dict[Edge, list[Variable]] = {}
    independent: list[Edge] = []
    for edge in profile.edge_counts:
        rep = filter_result.resolve(edge)
        if rep not in rep_vars:
            if rep not in profile.edge_counts:
                raise ModelError(f"representative edge {rep} was never profiled")
            variables = [
                model.add_binary(f"k[{rep[0]}->{rep[1]}][{m}]") for m in range(num_modes)
            ]
            model.add_constraint(lin_sum(variables) == 1, name=f"onemode[{rep[0]}->{rep[1]}]")
            rep_vars[rep] = variables
            independent.append(rep)
    edge_vars = {
        edge: rep_vars[filter_result.resolve(edge)] for edge in profile.edge_counts
    }

    energy_terms = LinExpr()
    time_terms = LinExpr()
    for edge, count in profile.edge_counts.items():
        variables = edge_vars[edge]
        dst = edge[1]
        for m in range(num_modes):
            energy_terms.add_term(variables[m], count * profile.energy(dst, m))
            time_terms.add_term(variables[m], count * profile.time(dst, m))

    # Transition auxiliaries over profiled local paths.
    num_paths = 0
    aux_paths: list = []
    if not costs.is_free:
        for (h, i, j), count in profile.path_counts.items():
            in_vars = edge_vars.get((h, i))
            out_vars = edge_vars.get((i, j))
            if in_vars is None or out_vars is None:
                continue  # path through an unprofiled edge cannot occur
            if in_vars is out_vars:
                continue  # tied edges can never switch: zero cost
            num_paths += 1
            delta_v2 = LinExpr()
            delta_v = LinExpr()
            for m in range(num_modes):
                delta_v2.add_term(in_vars[m], v_squared[m])
                delta_v2.add_term(out_vars[m], -v_squared[m])
                delta_v.add_term(in_vars[m], voltages[m])
                delta_v.add_term(out_vars[m], -voltages[m])
            e_var = model.add_var(f"e[{h}->{i}->{j}]", lb=0.0)
            t_var = model.add_var(f"t[{h}->{i}->{j}]", lb=0.0)
            model.add_constraint(delta_v2 <= e_var, name=f"abs_e+[{h}->{i}->{j}]")
            model.add_constraint(-1.0 * e_var <= delta_v2, name=f"abs_e-[{h}->{i}->{j}]")
            model.add_constraint(delta_v <= t_var, name=f"abs_t+[{h}->{i}->{j}]")
            model.add_constraint(-1.0 * t_var <= delta_v, name=f"abs_t-[{h}->{i}->{j}]")
            energy_terms.add_term(e_var, count * costs.ce_nj_per_v2)
            time_terms.add_term(t_var, count * costs.ct_s_per_v)
            aux_paths.append((in_vars, out_vars, e_var, t_var))

    # Emit the deadline row in deadline-relative units (rhs = 1).  Raw
    # per-edge times are ~1e-9..1e-5 s, far below solver feasibility
    # tolerances; an absolute 1e-6 slip on a seconds row is a multi-percent
    # deadline miss, while on the scaled row it is a 1e-6 relative one.
    scale = 1.0 / deadline_s if deadline_s > 0 else 1.0
    model.add_constraint(time_terms * scale <= deadline_s * scale, name="deadline")
    model.minimize(energy_terms)

    return MilpFormulation(
        model=model,
        mode_table=mode_table,
        edge_vars=edge_vars,
        independent_edges=independent,
        deadline_expr=time_terms,
        deadline_s=deadline_s,
        num_paths=num_paths,
        build_time_s=observe.end_span(build_span).elapsed_s,
        aux_paths=aux_paths,
    )
