"""Edge filtering to shrink the MILP (paper Section 5.2).

The rule: edges whose destination-block energy sits in the tail of the
energy distribution — cumulatively below a threshold (the paper uses 2 %)
of total program energy — give up their independent mode variable.  Each
filtered edge (i, j) is tied to the incoming edge (k, i) of its source
block with the largest profiled count, so traversing the dominant path
through i never switches modes at (i, j).

Filtered edges still appear in the deadline constraint and the objective
(through their representative's variables), so deadlines stay exact;
filtering can only cost optimality of the energy objective (Table 3 shows
it costs essentially nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import ENTRY_EDGE_SOURCE, Edge
from repro.profiling.profile_data import ProfileData


@dataclass
class FilterResult:
    """Outcome of the filtering pass.

    Attributes:
        representative: edge -> the edge whose mode variables it shares
            (itself when independent).
        filtered: edges that lost independence.
        energy_covered: fraction of total energy carried by independent
            edges (>= 1 - threshold by construction).
    """

    representative: dict[Edge, Edge]
    filtered: set[Edge] = field(default_factory=set)
    energy_covered: float = 1.0

    @property
    def num_independent(self) -> int:
        return sum(1 for edge, rep in self.representative.items() if edge == rep)

    def resolve(self, edge: Edge) -> Edge:
        """Final representative of an edge (chases tie chains)."""
        seen = set()
        current = edge
        while self.representative.get(current, current) != current:
            if current in seen:  # tie cycle: break it at this edge
                return current
            seen.add(current)
            current = self.representative[current]
        return current


def no_filtering(profile: ProfileData) -> FilterResult:
    """Identity filter: every profiled edge keeps its own variables."""
    return FilterResult(representative={edge: edge for edge in profile.edge_counts})


def filter_edges(
    profile: ProfileData,
    threshold: float = 0.02,
    mode: int | None = None,
) -> FilterResult:
    """Tie the low-energy tail of edges to their dominant incoming edge.

    Args:
        profile: profiled program.
        threshold: cumulative energy fraction to filter (paper: 0.02).
        mode: mode whose energy distribution ranks the edges ("an
            arbitrarily selected mode" in the paper); defaults to the
            highest profiled mode.

    Returns:
        a :class:`FilterResult`; entry-edge ties are never created (the
        initial mode must stay free).
    """
    if mode is None:
        mode = max(profile.per_mode)
    edges = list(profile.edge_counts)
    total_energy = sum(
        profile.edge_counts[edge] * profile.energy(edge[1], mode) for edge in edges
    )
    representative: dict[Edge, Edge] = {edge: edge for edge in edges}
    if total_energy <= 0 or threshold <= 0:
        return FilterResult(representative=representative)

    # Rank edges by the energy of executions entering through them.
    ranked = sorted(
        edges,
        key=lambda edge: profile.edge_counts[edge] * profile.energy(edge[1], mode),
    )
    # Predecessor edge with the largest count, per block.
    best_incoming: dict[str, Edge] = {}
    for (src, dst), count in profile.edge_counts.items():
        incumbent = best_incoming.get(dst)
        if incumbent is None or count > profile.edge_counts[incumbent]:
            best_incoming[dst] = (src, dst)

    filtered: set[Edge] = set()
    cumulative = 0.0
    budget = threshold * total_energy
    for edge in ranked:
        src, _dst = edge
        edge_energy = profile.edge_counts[edge] * profile.energy(edge[1], mode)
        if cumulative + edge_energy > budget:
            break
        if src == ENTRY_EDGE_SOURCE:
            continue  # the initial mode stays an optimization variable
        tie_target = best_incoming.get(src)
        if tie_target is None or tie_target == edge:
            continue
        representative[edge] = tie_target
        filtered.add(edge)
        cumulative += edge_energy

    covered = 1.0 - (cumulative / total_energy if total_energy else 0.0)
    result = FilterResult(
        representative=representative, filtered=filtered, energy_covered=covered
    )
    # Collapse chains/cycles now so the formulation sees a flat mapping.
    flat = {edge: result.resolve(edge) for edge in edges}
    result.representative = flat
    result.filtered = {edge for edge, rep in flat.items() if rep != edge}
    return result
