"""Multi-input-category optimization (paper Section 4.3).

Different input data sets exercise different paths; the paper sorts inputs
into categories (e.g. mpeg streams with and without B-frames), profiles a
representative of each, and minimizes the *weighted average* energy while
meeting the deadline **for every category** (or per-category deadlines).

The mode variables are shared across categories — there is one schedule —
but counts (G_ijg, D_hijg) and per-visit costs (E_jmg, T_jmg) are
per-category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import observe
from repro.errors import ModelError
from repro.ir.cfg import Edge
from repro.core.milp.filtering import FilterResult
from repro.core.milp.formulation import MilpFormulation
from repro.core.milp.transition import TransitionCosts
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, TransitionCostModel, ZERO_TRANSITION
from repro.solver.model import LinExpr, Model, Variable, lin_sum


@dataclass(frozen=True)
class CategoryProfile:
    """One input category: its profile, probability weight and deadline."""

    profile: ProfileData
    weight: float
    deadline_s: float


def build_multidata_formulation(
    categories: list[CategoryProfile],
    mode_table: ModeTable,
    transition_model: TransitionCostModel = ZERO_TRANSITION,
    filter_result: FilterResult | None = None,
) -> MilpFormulation:
    """Build the weighted multi-category MILP.

    Args:
        categories: profiled categories; weights are normalized to sum 1.
        mode_table: shared operating points.
        transition_model: regulator model.
        filter_result: optional edge filtering (computed on whichever
            profile it was derived from; ties apply to the union edge set).

    Returns:
        a :class:`~repro.core.milp.formulation.MilpFormulation` whose
        ``deadline_expr`` is the *first* category's time expression (each
        category has its own deadline constraint inside the model).
    """
    if not categories:
        raise ModelError("need at least one input category")
    build_span = observe.start_span("milp.build_multidata",
                                    categories=len(categories))
    total_weight = sum(c.weight for c in categories)
    if total_weight <= 0:
        raise ModelError("category weights must sum to a positive value")

    num_modes = len(mode_table)
    voltages = mode_table.voltages()
    v_squared = [v * v for v in voltages]
    costs = TransitionCosts.from_model(transition_model)

    # Union of profiled edges across categories.
    all_edges: dict[Edge, None] = {}
    for category in categories:
        for m in range(num_modes):
            if m not in category.profile.per_mode:
                raise ModelError(
                    f"category {category.profile.name!r} lacks mode {m} in its profile"
                )
        for edge in category.profile.edge_counts:
            all_edges.setdefault(edge)

    def resolve(edge: Edge) -> Edge:
        if filter_result is None:
            return edge
        rep = filter_result.resolve(edge)
        return rep if rep in all_edges else edge

    model = Model("dvs-multidata")
    rep_vars: dict[Edge, list[Variable]] = {}
    independent: list[Edge] = []
    for edge in all_edges:
        rep = resolve(edge)
        if rep not in rep_vars:
            variables = [
                model.add_binary(f"k[{rep[0]}->{rep[1]}][{m}]") for m in range(num_modes)
            ]
            model.add_constraint(
                lin_sum(variables) == 1, name=f"onemode[{rep[0]}->{rep[1]}]"
            )
            rep_vars[rep] = variables
            independent.append(rep)
    edge_vars = {edge: rep_vars[resolve(edge)] for edge in all_edges}

    # Shared transition auxiliaries per local path (they depend only on the
    # mode variables, not the category).
    aux: dict[tuple[str, str, str], tuple[Variable, Variable]] = {}

    def get_aux(h: str, i: str, j: str) -> tuple[Variable, Variable] | None:
        key = (h, i, j)
        if key in aux:
            return aux[key]
        in_vars = edge_vars.get((h, i))
        out_vars = edge_vars.get((i, j))
        if in_vars is None or out_vars is None or in_vars is out_vars:
            return None
        delta_v2 = LinExpr()
        delta_v = LinExpr()
        for m in range(num_modes):
            delta_v2.add_term(in_vars[m], v_squared[m])
            delta_v2.add_term(out_vars[m], -v_squared[m])
            delta_v.add_term(in_vars[m], voltages[m])
            delta_v.add_term(out_vars[m], -voltages[m])
        e_var = model.add_var(f"e[{h}->{i}->{j}]", lb=0.0)
        t_var = model.add_var(f"t[{h}->{i}->{j}]", lb=0.0)
        model.add_constraint(delta_v2 <= e_var, name=f"abs_e+[{h}->{i}->{j}]")
        model.add_constraint(-1.0 * e_var <= delta_v2, name=f"abs_e-[{h}->{i}->{j}]")
        model.add_constraint(delta_v <= t_var, name=f"abs_t+[{h}->{i}->{j}]")
        model.add_constraint(-1.0 * t_var <= delta_v, name=f"abs_t-[{h}->{i}->{j}]")
        aux[key] = (e_var, t_var)
        return aux[key]

    objective = LinExpr()
    first_time_expr: LinExpr | None = None
    num_paths = 0
    for category in categories:
        weight = category.weight / total_weight
        profile = category.profile
        time_terms = LinExpr()
        for edge, count in profile.edge_counts.items():
            variables = edge_vars[edge]
            dst = edge[1]
            for m in range(num_modes):
                objective.add_term(variables[m], weight * count * profile.energy(dst, m))
                time_terms.add_term(variables[m], count * profile.time(dst, m))
        if not costs.is_free:
            for (h, i, j), count in profile.path_counts.items():
                pair = get_aux(h, i, j)
                if pair is None:
                    continue
                num_paths += 1
                e_var, t_var = pair
                objective.add_term(e_var, weight * count * costs.ce_nj_per_v2)
                time_terms.add_term(t_var, count * costs.ct_s_per_v)
        # Deadline-relative units (rhs = 1): see the same scaling in
        # formulation.py — seconds-scale rows sit below solver tolerances.
        scale = 1.0 / category.deadline_s if category.deadline_s > 0 else 1.0
        model.add_constraint(
            time_terms * scale <= category.deadline_s * scale,
            name=f"deadline[{profile.name}]",
        )
        if first_time_expr is None:
            first_time_expr = time_terms

    model.minimize(objective)
    assert first_time_expr is not None
    return MilpFormulation(
        model=model,
        mode_table=mode_table,
        edge_vars=edge_vars,
        independent_edges=independent,
        deadline_expr=first_time_expr,
        deadline_s=categories[0].deadline_s,
        num_paths=num_paths,
        build_time_s=observe.end_span(build_span).elapsed_s,
    )
