"""The paper's Section 4 MILP formulation and its supporting passes.

* :mod:`.transition` — the regulator transition-cost constants
  (CE = c·(1−u), CT = 2c/Imax) in the linearized form of Section 4.2;
* :mod:`.formulation` — edge-based mode variables ``k_ijm``, linearized
  ``|ΔV²|``/``|ΔV|`` transition terms over profiled local paths, and the
  deadline constraint;
* :mod:`.filtering` — Section 5.2's energy-tail edge filtering, which
  ties low-energy edges' mode variables to their dominant incoming edge;
* :mod:`.multidata` — Section 4.3's weighted multi-input-category
  objective with per-category deadlines;
* :mod:`.schedule` — the executable result: an edge → mode map, plus the
  silent-mode-set hoisting post-pass sketched in Section 4.2.
"""

from repro.core.milp.formulation import FormulationOptions, MilpFormulation, build_formulation
from repro.core.milp.filtering import FilterResult, filter_edges
from repro.core.milp.multidata import CategoryProfile, build_multidata_formulation
from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts

__all__ = [
    "CategoryProfile",
    "DVSSchedule",
    "FilterResult",
    "FormulationOptions",
    "MilpFormulation",
    "TransitionCosts",
    "build_formulation",
    "build_multidata_formulation",
    "filter_edges",
]
