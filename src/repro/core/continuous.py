"""Exact continuous-voltage schedules (Li-Yao-Yuan, arXiv 1408.5995).

The paper's Section 3 "opportunities" analysis bounds the best possible
continuous-voltage energy with a closed-form two-voltage model.  This
module replaces the bound with the *achievable optimum*: the classic
critical-interval (YDS) construction, which Li, Yao and Yuan showed can
be computed in O(n^2) for n jobs.  Each profiled basic block becomes a
job; the exact continuous optimum is then

* a lower bound on every discrete-mode schedule's energy (the
  ``continuous >= milp >= greedy`` differential oracle in repro.verify),
* an instant upper-bound pruner for branch-and-bound (via the rounded-up
  discrete schedule it induces, see :func:`round_up_schedule`), and
* an always-feasible anytime tier that never times out.

Job mapping (soundness sketch, full argument in docs/continuous.md)
-------------------------------------------------------------------

For every block ``b`` with visit count ``N_b`` we fit the two-parameter
model ``T_b(m) ~= c_b / f_m + m_b`` from the profiled per-visit times:

* scalable cycles ``c_b = (T_slow - T_fast) / (1/f_slow - 1/f_fast)``
  (clamped at zero), and
* memory-invariant time ``m_b = max(0, min_m (T_b(m) - c_b / f_m))`` —
  the *minimum* residual over modes, so ``c_b/f_m + m_b <= T_b(m)`` for
  every mode: the fitted model never overstates profiled time.

Blocks are laid on a line in sorted-label order; job ``b`` releases after
the cumulative invariant time of its predecessors and must finish
``w_b = N_b * c_b`` cycles by the program deadline.  Any feasible
discrete schedule induces a feasible point of this continuous relaxation
(run each job's cycles at its discrete frequency inside its window), and
its modeled energy ``eps * w_b * V_m^2`` with the *uniform* support
coefficient ``eps = min_b min_m E_b(m) / (c_b * V_m^2)`` never exceeds
the profiled energy.  The speed-to-voltage law is the calibrated
alpha-power curve, flattened at the slowest mode's voltage (energy per
cycle is constant below the floor), with ``k`` chosen as the envelope
over the table's operating points so ``voltage(f_m) <= V_m`` holds for
every mode.  Energy is convex nondecreasing in speed, so the YDS
schedule is optimal for it and the resulting energy is a true lower
bound for every discrete schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.analytical.alpha_power import AlphaPowerLaw
from repro.core.milp.filtering import FilterResult, no_filtering
from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.errors import ScheduleError
from repro.ir.cfg import Edge
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, TransitionCostModel, ZERO_TRANSITION

# Relative slack when comparing float-accumulated interval lengths.
_REL_EPS = 1e-9


# ---------------------------------------------------------------------------
# Job model and the O(n^2) critical-interval engine.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContinuousJob:
    """One unit of scalable work with a release/deadline window."""

    label: str
    release_s: float
    deadline_s: float
    work_cycles: float

    @property
    def width_s(self) -> float:
        return self.deadline_s - self.release_s


@dataclass(frozen=True)
class SpeedPhase:
    """One critical interval peeled by the engine (compressed time)."""

    speed_hz: float
    length_s: float
    labels: tuple[str, ...]


@dataclass(frozen=True)
class SpeedProfile:
    """The optimal continuous speed per job plus engine diagnostics."""

    speeds: dict[str, float]
    phases: tuple[SpeedPhase, ...]
    intensity_evals: int

    @property
    def peak_speed_hz(self) -> float:
        return max((p.speed_hz for p in self.phases), default=0.0)


def _validate_jobs(jobs: list[ContinuousJob]) -> list[ContinuousJob]:
    active = []
    for job in jobs:
        if job.work_cycles < 0:
            raise ScheduleError(f"job {job.label!r} has negative work")
        if job.work_cycles == 0:
            continue
        if not job.deadline_s > job.release_s:
            raise ScheduleError(
                f"job {job.label!r} window [{job.release_s}, {job.deadline_s}] "
                "is empty but carries work"
            )
        active.append(job)
    return active


def optimal_speeds(jobs: list[ContinuousJob]) -> SpeedProfile:
    """Exact minimum-energy continuous speeds (any convex power function).

    Dispatches to a dedicated O(n^2)-total pass when every job shares one
    deadline (the shape :func:`jobs_from_profile` produces) and to the
    general critical-interval peeling otherwise.  Both return identical
    speeds; under exact intensity ties the phase *partition* may differ.
    """
    active = _validate_jobs(jobs)
    if not active:
        return SpeedProfile(speeds={}, phases=(), intensity_evals=0)
    if len({job.deadline_s for job in active}) == 1:
        return _peel_common_deadline(active)
    return _peel_general(active)


def _peel_general(jobs: list[ContinuousJob]) -> SpeedProfile:
    """Critical-interval peeling over arbitrary windows, O(n^2) per phase."""
    remaining: dict[str, list[float]] = {
        job.label: [job.release_s, job.deadline_s, job.work_cycles] for job in jobs
    }
    if len(remaining) != len(jobs):
        raise ScheduleError("job labels must be unique")
    speeds: dict[str, float] = {}
    phases: list[SpeedPhase] = []
    evals = 0

    while remaining:
        items = sorted(remaining.items())
        releases = sorted({window[0] for _, window in items})
        best_g = -1.0
        best_a = best_b = 0.0
        for a in releases:
            group = sorted(
                (window[1], window[2])
                for _, window in items
                if window[0] >= a
            )
            cumulative = 0.0
            for d, w in group:
                cumulative += w
                evals += 1
                g = cumulative / (d - a)
                # Strict > keeps the smallest (a, b) on exact ties.
                if g > best_g:
                    best_g, best_a, best_b = g, a, d
        if best_g <= 0:
            raise ScheduleError("no positive-intensity interval found")

        members = [
            label
            for label, window in items
            if window[0] >= best_a and window[1] <= best_b
        ]
        for label in members:
            speeds[label] = best_g
            del remaining[label]
        phases.append(
            SpeedPhase(
                speed_hz=best_g,
                length_s=best_b - best_a,
                labels=tuple(sorted(members)),
            )
        )
        # Excise [a, b]: map t -> t - |(a, b) ∩ (-inf, t)|.
        length = best_b - best_a
        for window in remaining.values():
            for idx in (0, 1):
                t = window[idx]
                if t <= best_a:
                    continue
                window[idx] = best_a if t <= best_b else t - length
    return SpeedProfile(speeds=speeds, phases=tuple(phases), intensity_evals=evals)


def _peel_common_deadline(jobs: list[ContinuousJob]) -> SpeedProfile:
    """O(n^2)-total staircase for jobs sharing a single deadline.

    The critical interval always ends at the current deadline, so each
    phase is a max over suffix intensities; peeling shrinks the deadline
    to the chosen interval's start and recurses on the prefix.
    """
    ordered = sorted(jobs, key=lambda job: (job.release_s, job.label))
    deadline = ordered[0].deadline_s
    speeds: dict[str, float] = {}
    phases: list[SpeedPhase] = []
    evals = 0
    hi = len(ordered)

    while hi > 0:
        best_g = -1.0
        best_idx = hi - 1
        cumulative = 0.0
        for idx in range(hi - 1, -1, -1):
            cumulative += ordered[idx].work_cycles
            if idx > 0 and ordered[idx - 1].release_s == ordered[idx].release_s:
                continue  # same release group: extend the suffix first
            evals += 1
            a = ordered[idx].release_s
            if not deadline > a:
                raise ScheduleError(
                    f"job {ordered[idx].label!r} window collapsed during peeling"
                )
            g = cumulative / (deadline - a)
            if g > best_g:
                best_g = g
                best_idx = idx
        start = ordered[best_idx].release_s
        members = ordered[best_idx:hi]
        for job in members:
            speeds[job.label] = best_g
        phases.append(
            SpeedPhase(
                speed_hz=best_g,
                length_s=deadline - start,
                labels=tuple(sorted(job.label for job in members)),
            )
        )
        deadline = start
        hi = best_idx
    return SpeedProfile(speeds=speeds, phases=tuple(phases), intensity_evals=evals)


def is_feasible_speed_assignment(
    jobs: list[ContinuousJob],
    speeds: dict[str, float],
    rel_tol: float = 1e-9,
) -> bool:
    """Hall's condition: per-job constant speeds admit a preemptive schedule
    iff, for every window [a, b] spanned by a release and a deadline, the
    processing time of the jobs contained in it fits: sum w/s <= b - a."""
    active = _validate_jobs(jobs)
    for job in active:
        if speeds.get(job.label, 0.0) <= 0:
            return False
    releases = sorted({job.release_s for job in active})
    deadlines = sorted({job.deadline_s for job in active})
    for a in releases:
        for b in deadlines:
            if b <= a:
                continue
            load = sum(
                job.work_cycles / speeds[job.label]
                for job in active
                if job.release_s >= a and job.deadline_s <= b
            )
            if load > (b - a) * (1.0 + rel_tol):
                return False
    return True


# ---------------------------------------------------------------------------
# Mapping a profiled program onto jobs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockJobModel:
    """Per-visit linear time model of one block plus its energy support."""

    label: str
    visits: int
    cycles_per_visit: float
    invariant_s_per_visit: float
    # nJ per (cycle * V^2); None when the block has no scalable cycles.
    epsilon_nj: float | None

    @property
    def work_cycles(self) -> float:
        return self.visits * self.cycles_per_visit

    @property
    def invariant_s(self) -> float:
        return self.visits * self.invariant_s_per_visit


def fit_block_models(
    profile: ProfileData, mode_table: ModeTable
) -> list[BlockJobModel]:
    """Fit ``T_b(m) ~= c_b / f_m + m_b`` per block from profiled times.

    The residual-minimum ``m_b`` guarantees the model never exceeds the
    profiled per-visit time at any mode, which the relaxation proof in
    the module docstring relies on.
    """
    modes = sorted(profile.per_mode)
    if len(modes) < 2:
        raise ScheduleError(
            f"profile {profile.name!r} has {len(modes)} mode(s); the "
            "continuous bound needs at least two to separate scalable "
            "cycles from memory-invariant time"
        )
    freqs = {m: mode_table[m].frequency_hz for m in modes}
    volts = {m: mode_table[m].voltage for m in modes}
    slow, fast = modes[0], modes[-1]
    inv_span = 1.0 / freqs[slow] - 1.0 / freqs[fast]
    if inv_span <= 0:
        raise ScheduleError("mode table is not ordered slowest to fastest")

    models = []
    for label in sorted(profile.block_counts):
        visits = profile.block_counts[label]
        times = {m: profile.time(label, m) for m in modes}
        cycles = max(0.0, (times[slow] - times[fast]) / inv_span)
        invariant = max(
            0.0, min(times[m] - cycles / freqs[m] for m in modes)
        )
        epsilon = None
        if cycles > 0:
            epsilon = min(
                profile.energy(label, m) / (cycles * volts[m] * volts[m])
                for m in modes
            )
        models.append(
            BlockJobModel(
                label=label,
                visits=visits,
                cycles_per_visit=cycles,
                invariant_s_per_visit=invariant,
                epsilon_nj=epsilon,
            )
        )
    return models


def envelope_law(mode_table: ModeTable) -> AlphaPowerLaw:
    """Alpha-power law whose curve dominates every table operating point.

    ``k`` is the max over modes of the value needed to reach that mode's
    frequency at its voltage, so ``law.voltage(f_m) <= V_m`` for every
    mode — modeled continuous energy at a mode's speed never exceeds the
    discrete energy at that mode, keeping the lower bound sound.
    """
    base = AlphaPowerLaw.calibrated()
    k = max(
        point.frequency_hz
        * point.voltage
        / (point.voltage - base.vt) ** base.alpha
        for point in mode_table.points
    )
    return AlphaPowerLaw(k=k, alpha=base.alpha, vt=base.vt)


def jobs_from_profile(
    profile: ProfileData, mode_table: ModeTable, deadline_s: float
) -> tuple[list[ContinuousJob], float, float]:
    """Lay the fitted blocks on a line: (jobs, epsilon_nj, invariant_s).

    Releases are the cumulative memory-invariant time of the preceding
    blocks (sorted-label order — the proof works for any fixed order);
    every job shares the program deadline.  ``epsilon_nj`` is the uniform
    energy-support coefficient (nJ per cycle*V^2); ``invariant_s`` the
    total unscalable time.
    """
    models = fit_block_models(profile, mode_table)
    invariant_total = sum(model.invariant_s for model in models)
    if invariant_total > deadline_s * (1.0 + _REL_EPS):
        raise ScheduleError(
            f"deadline {deadline_s:.6g}s is below the memory-invariant floor "
            f"{invariant_total:.6g}s of {profile.name!r}"
        )
    epsilons = [m.epsilon_nj for m in models if m.epsilon_nj is not None]
    epsilon = min(epsilons) if epsilons else 0.0

    jobs = []
    release = 0.0
    for model in models:
        if model.work_cycles > 0:
            jobs.append(
                ContinuousJob(
                    label=model.label,
                    release_s=release,
                    deadline_s=deadline_s,
                    work_cycles=model.work_cycles,
                )
            )
        release += model.invariant_s
    return jobs, epsilon, invariant_total


# ---------------------------------------------------------------------------
# The exact continuous bound.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContinuousOutcome:
    """Exact continuous-voltage optimum for one (profile, deadline)."""

    program: str
    deadline_s: float
    energy_nj: float
    peak_speed_hz: float
    invariant_s: float
    scalable_cycles: float
    epsilon_nj: float
    speeds: dict[str, float]
    phases: tuple[SpeedPhase, ...]
    intensity_evals: int
    # Peak speed reachable within the table's voltage range?  Always true
    # when any discrete schedule meets the deadline (YDS minimizes peak).
    within_mode_range: bool
    voltage_floor: float
    voltage_ceiling: float

    def savings_vs(self, baseline_energy_nj: float) -> float:
        """Fractional energy savings against a baseline (>= 0 clamp-free)."""
        if baseline_energy_nj <= 0:
            return 0.0
        return 1.0 - self.energy_nj / baseline_energy_nj


def continuous_bound(
    profile: ProfileData,
    mode_table: ModeTable,
    deadline_s: float,
    law: AlphaPowerLaw | None = None,
) -> ContinuousOutcome:
    """Exact continuous-voltage energy optimum (nJ lower bound).

    Runs the O(n^2) engine on the profile's job mapping and prices the
    optimal speeds on the envelope alpha-power curve flattened at the
    slowest mode's voltage.

    Raises:
        ScheduleError: single-mode profile, or deadline below the
            memory-invariant floor (no schedule at any speed fits).
    """
    if deadline_s <= 0:
        raise ScheduleError(f"deadline must be positive, got {deadline_s}")
    law = law or envelope_law(mode_table)
    jobs, epsilon, invariant_s = jobs_from_profile(profile, mode_table, deadline_s)
    result = optimal_speeds(jobs)

    v_low = mode_table.slowest.voltage
    v_high = mode_table.fastest.voltage
    f_floor = law.frequency(v_low)
    f_ceiling = law.frequency(v_high)

    energy = 0.0
    for job in jobs:
        speed = result.speeds[job.label]
        # Below the floor the voltage (hence energy/cycle) stops falling.
        voltage = v_low if speed <= f_floor else law.voltage(speed)
        energy += epsilon * job.work_cycles * voltage * voltage

    peak = result.peak_speed_hz
    return ContinuousOutcome(
        program=profile.name,
        deadline_s=deadline_s,
        energy_nj=energy,
        peak_speed_hz=peak,
        invariant_s=invariant_s,
        scalable_cycles=sum(job.work_cycles for job in jobs),
        epsilon_nj=epsilon,
        speeds=result.speeds,
        phases=result.phases,
        intensity_evals=result.intensity_evals,
        within_mode_range=peak <= f_ceiling * (1.0 + _REL_EPS),
        voltage_floor=v_low,
        voltage_ceiling=v_high,
    )


# ---------------------------------------------------------------------------
# Rounding the continuous optimum up to a discrete, MILP-feasible schedule.
# ---------------------------------------------------------------------------


class ModeChoiceEvaluator:
    """Exact MILP objective/deadline values for an integral mode choice.

    Mirrors the Section 4.2 formulation's accounting — including edge
    filtering, where tied edges share their representative's mode — so an
    evaluated energy is exactly the objective the solver would assign to
    that feasible point.  That makes it a *sound* incumbent upper bound
    for branch-and-bound over the same (possibly filtered) model.
    """

    def __init__(
        self,
        profile: ProfileData,
        mode_table: ModeTable,
        transition_model: TransitionCostModel = ZERO_TRANSITION,
        filter_result: FilterResult | None = None,
    ) -> None:
        self.profile = profile
        self.mode_table = mode_table
        self.filter_result = filter_result or no_filtering(profile)
        self.costs = TransitionCosts.from_model(transition_model)
        self.num_modes = len(mode_table)
        self.reps: list[Edge] = sorted(
            {self.filter_result.resolve(edge) for edge in profile.edge_counts}
        )
        self._edge_rep = {
            edge: self.filter_result.resolve(edge) for edge in profile.edge_counts
        }
        # Paths whose two edges resolve to distinct representatives are the
        # only ones that can ever pay a transition (same rep => same mode).
        self._paths = []
        if not self.costs.is_free:
            for (h, i, j), count in profile.path_counts.items():
                rep_in = self._edge_rep.get((h, i))
                rep_out = self._edge_rep.get((i, j))
                if rep_in is None or rep_out is None or rep_in == rep_out:
                    continue
                self._paths.append((rep_in, rep_out, count))
        self._voltages = mode_table.voltages()
        self._v2 = [v * v for v in self._voltages]

    def evaluate(self, rep_modes: dict[Edge, int]) -> tuple[float, float]:
        """(energy_nj, time_s) of the schedule induced by per-rep modes."""
        energy = 0.0
        time = 0.0
        for edge, count in self.profile.edge_counts.items():
            mode = rep_modes[self._edge_rep[edge]]
            dst = edge[1]
            energy += count * self.profile.energy(dst, mode)
            time += count * self.profile.time(dst, mode)
        for rep_in, rep_out, count in self._paths:
            m_in = rep_modes[rep_in]
            m_out = rep_modes[rep_out]
            energy += count * self.costs.ce_nj_per_v2 * abs(
                self._v2[m_in] - self._v2[m_out]
            )
            time += count * self.costs.ct_s_per_v * abs(
                self._voltages[m_in] - self._voltages[m_out]
            )
        return energy, time

    def schedule(self, rep_modes: dict[Edge, int]) -> DVSSchedule:
        """The full per-edge schedule induced by per-rep modes."""
        assignment = {
            edge: rep_modes[rep] for edge, rep in self._edge_rep.items()
        }
        return DVSSchedule(assignment=assignment, num_modes=self.num_modes)


@dataclass(frozen=True)
class RoundUpResult:
    """A deadline-feasible discrete schedule derived from continuous speeds."""

    schedule: DVSSchedule
    energy_nj: float
    time_s: float
    rep_modes: dict[Edge, int]
    bumps: int


def round_up_schedule(
    profile: ProfileData,
    mode_table: ModeTable,
    deadline_s: float,
    speeds: dict[str, float],
    transition_model: TransitionCostModel = ZERO_TRANSITION,
    filter_result: FilterResult | None = None,
) -> RoundUpResult | None:
    """Round continuous speeds up to modes and repair the deadline.

    Starts each representative edge at the slowest mode at least as fast
    as its destination block's continuous speed, then deterministically
    bumps the representative with the best time-recovered-per-energy
    ratio until the deadline holds.  Returns None when even all-fastest
    misses the deadline (the discrete instance is infeasible).
    """
    evaluator = ModeChoiceEvaluator(
        profile, mode_table, transition_model, filter_result
    )
    freqs = mode_table.frequencies()
    top = len(freqs) - 1

    def mode_for(label: str) -> int:
        speed = speeds.get(label)
        if speed is None or speed <= 0:
            return 0
        for m, f in enumerate(freqs):
            if f >= speed * (1.0 - _REL_EPS):
                return m
        return top

    rep_modes = {rep: mode_for(rep[1]) for rep in evaluator.reps}
    energy, time = evaluator.evaluate(rep_modes)
    bumps = 0
    while time > deadline_s:
        best = None  # (ratio, rep, energy, time)
        for rep in evaluator.reps:
            if rep_modes[rep] >= top:
                continue
            rep_modes[rep] += 1
            cand_energy, cand_time = evaluator.evaluate(rep_modes)
            rep_modes[rep] -= 1
            gain = time - cand_time
            if gain <= 0:
                continue
            cost = max(cand_energy - energy, 0.0)
            ratio = gain / (cost + 1e-30)
            if best is None or ratio > best[0]:
                best = (ratio, rep, cand_energy, cand_time)
        if best is None:
            # No single bump recovers time (transition-cost plateau):
            # fall back to the all-fastest schedule.
            if all(rep_modes[rep] >= top for rep in evaluator.reps):
                return None
            for rep in evaluator.reps:
                rep_modes[rep] = top
            energy, time = evaluator.evaluate(rep_modes)
            bumps += 1
            break
        _, rep, energy, time = best
        rep_modes[rep] += 1
        bumps += 1
    if time > deadline_s:
        return None
    # Improvement pass: walk modes back down wherever a single-step
    # lowering keeps the deadline and reduces energy.  Energy strictly
    # decreases each step, so this terminates; picking the largest
    # reduction (ties: first rep in sorted order) keeps it deterministic.
    improved = True
    while improved:
        improved = False
        best_down = None  # (saving, rep, energy, time)
        for rep in evaluator.reps:
            if rep_modes[rep] <= 0:
                continue
            rep_modes[rep] -= 1
            cand_energy, cand_time = evaluator.evaluate(rep_modes)
            rep_modes[rep] += 1
            if cand_time > deadline_s:
                continue
            saving = energy - cand_energy
            if saving <= 0:
                continue
            if best_down is None or saving > best_down[0]:
                best_down = (saving, rep, cand_energy, cand_time)
        if best_down is not None:
            _, rep, energy, time = best_down
            rep_modes[rep] -= 1
            improved = True
    return RoundUpResult(
        schedule=evaluator.schedule(rep_modes),
        energy_nj=energy,
        time_s=time,
        rep_modes=rep_modes,
        bumps=bumps,
    )
