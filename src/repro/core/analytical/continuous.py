"""Continuous-voltage optimum (paper Section 3.3).

With a continuously scalable supply the optimum uses at most two voltages:
``v1`` for the overlapped region, ``v2`` for the dependent computation.
Three regimes arise:

* **computation dominated** (``f_ideal ≤ f_invariant``): a single voltage
  ``v_ideal`` at ``f_ideal = (N_ov + N_dep)/t_deadline`` is optimal — no
  intra-program DVS benefit (Figure 2);
* **memory dominated** (``N_cache < N_overlap`` and
  ``f_invariant < f_ideal``): two voltages, found by a golden-section
  search over v1 with v2 pinned by the deadline constraint (Figure 3);
* **memory dominated with slack** (``N_cache ≥ N_overlap``): a single
  voltage at ``(N_cache + N_dep)/(t_deadline − t_invariant)`` (Figure 4).

Energy accounting follows the paper: the overlapped region charges
``max(N_overlap, N_cache) · v1²`` and the dependent region
``N_dependent · v2²`` (processor energy only; gated waits are free).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.core.analytical.alpha_power import DEFAULT_LAW, AlphaPowerLaw
from repro.core.analytical.params import ProgramParams

_REL_TOL = 1e-9


class ContinuousCase(enum.Enum):
    """Which Section 3.3 regime the optimum fell into."""

    COMPUTATION_DOMINATED = "computation-dominated"
    MEMORY_DOMINATED = "memory-dominated"
    MEMORY_DOMINATED_SLACK = "memory-dominated-with-slack"
    ALL_AT_FLOOR = "all-at-voltage-floor"


@dataclass(frozen=True)
class ContinuousSolution:
    """Optimal continuous-voltage assignment.

    ``energy`` is in cycle·V² units (relative; only ratios matter).
    ``v1``/``f1`` cover the overlapped region, ``v2``/``f2`` the dependent
    region; equal values mean a single setting suffices.
    """

    case: ContinuousCase
    v1: float
    f1: float
    v2: float
    f2: float
    energy: float

    @property
    def uses_two_settings(self) -> bool:
        return abs(self.v1 - self.v2) > 1e-9


def _energy(params: ProgramParams, v1: float, v2: float) -> float:
    return params.region1_active_cycles * v1 * v1 + params.n_dependent * v2 * v2


def _check_feasible(params: ProgramParams, deadline_s: float, law: AlphaPowerLaw, v_high: float) -> None:
    f_max = law.frequency(v_high)
    fastest = params.execution_time_s(f_max)
    if fastest > deadline_s * (1 + 1e-9):
        raise AnalysisError(
            f"deadline {deadline_s:.6g}s infeasible: needs {fastest:.6g}s even at "
            f"{f_max / 1e6:.0f} MHz"
        )


def single_frequency_baseline(
    params: ProgramParams,
    deadline_s: float,
    law: AlphaPowerLaw = DEFAULT_LAW,
    v_low: float = 0.70,
    v_high: float = 1.65,
) -> ContinuousSolution:
    """Best single continuously-chosen frequency meeting the deadline.

    The energy-minimal single setting is the slowest feasible one (energy
    is increasing in voltage), floored at ``v_low``.
    """
    _check_feasible(params, deadline_s, law, v_high)
    f_single = params.min_single_frequency(deadline_s)
    f_floor = law.frequency(v_low)
    case = ContinuousCase.COMPUTATION_DOMINATED
    if f_single <= f_floor:
        f_single = f_floor
        case = ContinuousCase.ALL_AT_FLOOR
    voltage = max(law.voltage(f_single), v_low)
    return ContinuousSolution(
        case=case,
        v1=voltage,
        f1=f_single,
        v2=voltage,
        f2=f_single,
        energy=_energy(params, voltage, voltage),
    )


def optimize_continuous(
    params: ProgramParams,
    deadline_s: float,
    law: AlphaPowerLaw = DEFAULT_LAW,
    v_low: float = 0.70,
    v_high: float = 1.65,
    grid: int = 400,
) -> ContinuousSolution:
    """Minimum-energy (v1, v2) under continuous scaling (Section 3.3).

    Args:
        params: program characterization.
        deadline_s: execution-time budget.
        law: alpha-power voltage/frequency model.
        v_low, v_high: available voltage range.
        grid: unused; retained for call compatibility.  The
            memory-dominated search is now an exact golden-section
            minimization over a proven feasibility bracket, which needs
            no sample count.

    Raises:
        AnalysisError: when even the fastest setting misses the deadline.
    """
    _check_feasible(params, deadline_s, law, v_high)
    f_floor = law.frequency(v_low)

    # Everything-at-the-floor: deadline so lax that V_low alone meets it.
    if params.execution_time_s(f_floor) <= deadline_s:
        return ContinuousSolution(
            case=ContinuousCase.ALL_AT_FLOOR,
            v1=v_low, f1=f_floor, v2=v_low, f2=f_floor,
            energy=_energy(params, v_low, v_low),
        )

    # Memory dominated with slack (Section 3.3.2): N_cache >= N_overlap.
    if params.n_cache >= params.n_overlap:
        f_ideal = params.f_ideal_slack(deadline_s)
        f_ideal = max(f_ideal, f_floor)
        v_ideal = max(law.voltage(f_ideal), v_low)
        return ContinuousSolution(
            case=ContinuousCase.MEMORY_DOMINATED_SLACK,
            v1=v_ideal, f1=f_ideal, v2=v_ideal, f2=f_ideal,
            energy=_energy(params, v_ideal, v_ideal),
        )

    f_ideal = params.f_ideal(deadline_s)
    f_invariant = params.f_invariant()

    # Computation dominated (Section 3.3.1): a single frequency is optimal.
    if f_invariant >= f_ideal * (1 - _REL_TOL):
        v_ideal = max(law.voltage(f_ideal), v_low)
        return ContinuousSolution(
            case=ContinuousCase.COMPUTATION_DOMINATED,
            v1=v_ideal, f1=f_ideal, v2=v_ideal, f2=f_ideal,
            energy=_energy(params, v_ideal, v_ideal),
        )

    # Memory dominated: sweep v1, v2 pinned by the deadline.
    best = _search_memory_dominated(params, deadline_s, law, v_low, v_high, grid)
    if best is None:
        # Numerically degenerate corner: fall back to the single-frequency
        # baseline, which is always feasible here.
        return single_frequency_baseline(params, deadline_s, law, v_low, v_high)
    return best


def _region2_requirement(
    params: ProgramParams, deadline_s: float, f1: float
) -> float:
    """Time left for the dependent region after region 1 runs at f1."""
    region1 = max(
        params.t_invariant_s + params.n_cache / f1,
        params.n_overlap / f1,
    )
    return deadline_s - region1


def _search_memory_dominated(
    params: ProgramParams,
    deadline_s: float,
    law: AlphaPowerLaw,
    v_low: float,
    v_high: float,
    grid: int,
) -> ContinuousSolution | None:
    f_cap = law.frequency(v_high)
    f_floor = law.frequency(v_low)

    def evaluate(v1: float) -> tuple[float, float, float, float] | None:
        f1 = law.frequency(v1)
        remaining = _region2_requirement(params, deadline_s, f1)
        if params.n_dependent <= 0:
            if remaining < -1e-15:
                return None
            return (_energy(params, v1, v_low), v_low, f1, f_floor)
        if remaining <= 0:
            return None
        f2 = params.n_dependent / remaining
        if f2 > f_cap * (1 + 1e-9):
            return None
        f2 = max(f2, f_floor)
        v2 = max(law.voltage(f2), v_low)
        return (_energy(params, v1, v2), v2, f1, f2)

    # The feasible v1 values form an up-set: raising v1 shrinks region 1,
    # which grows the time left for region 2 and lowers the f2 it needs.
    # So feasibility is a threshold v1_min, found by bisection, and the
    # search domain is the interval [v1_min, v_high].
    if evaluate(v_high) is None:
        return None
    lo, hi = v_low, v_high
    if evaluate(lo) is None:
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if evaluate(mid) is None:
                lo = mid
            else:
                hi = mid
        lo = hi  # smallest v1 proven feasible by the bisection

    # Golden-section search.  E(v1) is unimodal on the bracket: in the
    # time-split coordinate t1 the two region energies are convex
    # (decreasing resp. increasing), their sum is convex, and v1 -> t1
    # is strictly monotone — a monotone reparametrization preserves
    # unimodality, including through the v_low flooring of v2 (the
    # floored branch is the increasing tail R1*v1^2 + const).  Unlike the
    # old fixed grid this converges to the true minimizer, so the
    # reported optimum can only improve (lower energy, higher bound).
    invphi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, v_high
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc = evaluate(c)[0]
    fd = evaluate(d)[0]
    while b - a > 1e-12:
        if fc <= fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = evaluate(c)[0]
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = evaluate(d)[0]
    # The bracket has collapsed; pick the best point actually evaluated,
    # endpoints included (the minimum may sit on the feasibility edge).
    candidates = [(fc, c), (fd, d)]
    for v1 in (lo, v_high):
        entry = evaluate(v1)
        if entry is not None:
            candidates.append((entry[0], v1))
    _, best_v1 = min(candidates)
    best_entry = evaluate(best_v1)

    energy, v2, f1, f2 = best_entry
    return ContinuousSolution(
        case=ContinuousCase.MEMORY_DOMINATED,
        v1=best_v1, f1=f1, v2=v2, f2=f2, energy=energy,
    )


def energy_vs_v1_curve(
    params: ProgramParams,
    deadline_s: float,
    law: AlphaPowerLaw = DEFAULT_LAW,
    v_low: float = 0.70,
    v_high: float = 1.65,
    samples: int = 200,
) -> list[tuple[float, float]]:
    """(v1, minimal energy) samples — the data behind Figures 2–4.

    For each v1, v2 is chosen optimally from the deadline constraint;
    infeasible v1 values are omitted.
    """
    points: list[tuple[float, float]] = []
    for v1 in np.linspace(v_low, v_high, samples):
        f1 = law.frequency(float(v1))
        remaining = _region2_requirement(params, deadline_s, f1)
        if remaining <= 0:
            continue
        if params.n_dependent > 0:
            f2 = params.n_dependent / remaining
            if f2 > law.frequency(v_high) * (1 + 1e-12):
                continue
            v2 = max(law.voltage(f2), v_low)
        else:
            v2 = v_low
        points.append((float(v1), _energy(params, float(v1), v2)))
    return points
