"""Discrete-voltage optimum (paper Section 3.4).

With a discrete level set the optimum is built from the continuous one:

* **compute-bound** and **memory-bound-with-slack** programs use the two
  table levels neighbouring the continuous single optimum ``f_ideal``,
  splitting cycles so the deadline is met exactly (Ishihara-Yasuura);
* **memory-bound** programs need four frequencies: parameterize by ``y``,
  the execution time granted to the N_cache hit cycles; then ``f1* =
  N_cache / y`` and ``f2* = N_dep / (t_dl − t_inv − y)`` each take their
  two neighbours, the leftover overlap cycles (N_ov − N_cache) fill the
  miss window at the lower neighbour first, and ``Emin(y)`` is minimized
  numerically over a grid of ``y`` plus every staircase breakpoint
  (Figure 8).

All energies are in cycle·V² units, consistent with
:mod:`repro.core.analytical.continuous`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError
from repro.core.analytical.params import ProgramParams
from repro.simulator.dvs import ModeTable

_EPS = 1e-12


@dataclass(frozen=True)
class CycleAssignment:
    """``cycles`` executed at one table level within one region."""

    cycles: float
    frequency_hz: float
    voltage: float
    region: str  # "compute", "cache", "dependent", "overlap-leftover"

    @property
    def energy(self) -> float:
        return self.cycles * self.voltage * self.voltage

    @property
    def time_s(self) -> float:
        return self.cycles / self.frequency_hz


@dataclass(frozen=True)
class DiscreteSolution:
    """Optimal discrete-voltage schedule for the analytical model."""

    case: str
    assignments: tuple[CycleAssignment, ...]
    energy: float
    y_s: float | None = None  # chosen y in the memory-bound construction

    @property
    def num_levels_used(self) -> int:
        return len({a.voltage for a in self.assignments if a.cycles > _EPS})


def _neighbors(table: ModeTable, frequency: float) -> tuple[int, int]:
    """Indices (lo, hi) of the table levels bracketing a frequency.

    Exact matches return (i, i); below the slowest returns (0, 0); above
    the fastest raises (infeasible demand).
    """
    freqs = table.frequencies()
    if frequency > freqs[-1] * (1 + 1e-9):
        raise AnalysisError(
            f"required frequency {frequency / 1e6:.1f} MHz exceeds the fastest "
            f"level {freqs[-1] / 1e6:.1f} MHz"
        )
    if frequency <= freqs[0]:
        return 0, 0
    for i, f in enumerate(freqs):
        if abs(f - frequency) <= 1e-9 * f:
            return i, i
        if f > frequency:
            return i - 1, i
    return len(freqs) - 1, len(freqs) - 1


def two_level_split(
    cycles: float, budget_s: float, table: ModeTable, region: str
) -> list[CycleAssignment]:
    """Split ``cycles`` between the two levels neighbouring cycles/budget.

    Returns one or two assignments whose total time is ≤ budget (exactly
    == budget when two levels are needed).  Raises when even the fastest
    level cannot fit the cycles in the budget.
    """
    if cycles <= _EPS:
        return []
    if budget_s <= 0:
        raise AnalysisError(f"no time budget for {cycles:.3g} cycles")
    f_need = cycles / budget_s
    lo, hi = _neighbors(table, f_need)
    if lo == hi:
        point = table[lo]
        return [CycleAssignment(cycles, point.frequency_hz, point.voltage, region)]
    fa, fb = table[lo].frequency_hz, table[hi].frequency_hz
    va, vb = table[lo].voltage, table[hi].voltage
    # xa/fa + xb/fb = budget, xa + xb = cycles
    xa = fa * (fb * budget_s - cycles) / (fb - fa)
    xb = cycles - xa
    if xa < -1e-6 or xb < -1e-6:
        raise AnalysisError("two-level split produced negative cycle counts")
    result = []
    if xa > _EPS:
        result.append(CycleAssignment(xa, fa, va, region))
    if xb > _EPS:
        result.append(CycleAssignment(xb, fb, vb, region))
    return result


def _leftover_fill(
    leftover: float, window_s: float, lo_idx: int, hi_idx: int, table: ModeTable
) -> list[CycleAssignment]:
    """Run N_ov − N_cache leftover cycles inside the miss window.

    As many as fit go to the lower level ``fa``; the remainder runs at
    ``fb`` (the paper's ``max(..., 0)`` term allows the remainder to spill
    past the window — those cycles simply overlap the dependent region's
    start in the bound, keeping it optimistic).
    """
    if leftover <= _EPS:
        return []
    fa, va = table[lo_idx].frequency_hz, table[lo_idx].voltage
    fb, vb = table[hi_idx].frequency_hz, table[hi_idx].voltage
    at_lower = min(leftover, fa * window_s)
    remainder = leftover - at_lower
    result = []
    if at_lower > _EPS:
        result.append(CycleAssignment(at_lower, fa, va, "overlap-leftover"))
    if remainder > _EPS:
        result.append(CycleAssignment(remainder, fb, vb, "overlap-leftover"))
    return result


def discrete_single_baseline(
    params: ProgramParams, deadline_s: float, table: ModeTable
) -> DiscreteSolution:
    """Best *single* table level meeting the deadline (the comparison base
    of Table 1/Figures 9–11: 'best single-frequency setting that meets
    the deadline')."""
    for point in table:  # slowest first
        if params.execution_time_s(point.frequency_hz) <= deadline_s * (1 + 1e-9):
            cycles = params.region1_active_cycles + params.n_dependent
            assignment = CycleAssignment(cycles, point.frequency_hz, point.voltage, "compute")
            return DiscreteSolution("single-level", (assignment,), assignment.energy)
    raise AnalysisError(
        f"deadline {deadline_s:.6g}s infeasible even at "
        f"{table.fastest.frequency_hz / 1e6:.0f} MHz"
    )


def optimize_discrete(
    params: ProgramParams,
    deadline_s: float,
    table: ModeTable,
    y_samples: int = 300,
) -> DiscreteSolution:
    """Minimum-energy discrete schedule (Section 3.4).

    Evaluates every applicable construction (two-neighbour compute split,
    slack split, four-frequency y-sweep) plus the single-level baseline
    and returns the cheapest — so the result never regresses below the
    baseline the savings ratio compares against.
    """
    candidates: list[DiscreteSolution] = [
        discrete_single_baseline(params, deadline_s, table)
    ]

    if params.n_cache >= params.n_overlap:
        # Memory dominated with slack: single continuous optimum at
        # (N_cache + N_dep)/(t_dl − t_inv) -> two-neighbour split.
        budget = deadline_s - params.t_invariant_s
        if budget > 0:
            try:
                assignments = two_level_split(
                    params.n_cache + params.n_dependent, budget, table, "compute"
                )
                energy = sum(a.energy for a in assignments)
                candidates.append(
                    DiscreteSolution("memory-slack-split", tuple(assignments), energy)
                )
            except AnalysisError:
                pass
    else:
        # Compute-bound split over the whole deadline.
        try:
            assignments = two_level_split(
                params.total_compute_cycles, deadline_s, table, "compute"
            )
            energy = sum(a.energy for a in assignments)
            candidates.append(
                DiscreteSolution("compute-split", tuple(assignments), energy)
            )
        except AnalysisError:
            pass
        # Four-frequency memory-bound construction.
        best_y = _sweep_y(params, deadline_s, table, y_samples)
        if best_y is not None:
            candidates.append(best_y)

    best = min(candidates, key=lambda s: s.energy)
    return best


def _y_bounds(params: ProgramParams, deadline_s: float, table: ModeTable) -> tuple[float, float] | None:
    f_max = table.fastest.frequency_hz
    y_lo = params.n_cache / f_max  # region A must fit at the fastest level
    y_hi = deadline_s - params.t_invariant_s
    if params.n_dependent > 0:
        y_hi -= params.n_dependent / f_max  # leave room for region B
    f_inv = params.f_invariant()
    if f_inv > 0:
        # stay memory-dominated: f1 = N_cache / y >= f_invariant
        y_hi = min(y_hi, params.n_cache / f_inv)
    if y_hi <= y_lo or y_hi <= 0:
        return None
    return max(y_lo, _EPS), y_hi


def _emin_at_y(
    params: ProgramParams, deadline_s: float, table: ModeTable, y: float
) -> DiscreteSolution | None:
    try:
        cache_part = two_level_split(params.n_cache, y, table, "cache")
        dep_budget = deadline_s - params.t_invariant_s - y
        dep_part = two_level_split(params.n_dependent, dep_budget, table, "dependent")
    except AnalysisError:
        return None
    f1 = params.n_cache / y if y > 0 else table.fastest.frequency_hz
    lo, hi = _neighbors(table, min(f1, table.fastest.frequency_hz))
    leftover = _leftover_fill(
        params.n_overlap - params.n_cache, params.t_invariant_s, lo, hi, table
    )
    assignments = tuple(cache_part + dep_part + leftover)
    energy = sum(a.energy for a in assignments)
    return DiscreteSolution("memory-four-frequency", assignments, energy, y_s=y)


def _sweep_y(
    params: ProgramParams, deadline_s: float, table: ModeTable, y_samples: int
) -> DiscreteSolution | None:
    bounds = _y_bounds(params, deadline_s, table)
    if bounds is None:
        return None
    y_lo, y_hi = bounds
    ys = set(np.linspace(y_lo, y_hi, y_samples))
    # Staircase breakpoints: ys where f1 or f2 crosses a table frequency.
    for f in table.frequencies():
        if f > 0:
            y = params.n_cache / f
            if y_lo <= y <= y_hi:
                ys.add(y)
            y = deadline_s - params.t_invariant_s - params.n_dependent / f
            if y_lo <= y <= y_hi:
                ys.add(y)
    best: DiscreteSolution | None = None
    for y in sorted(ys):
        candidate = _emin_at_y(params, deadline_s, table, float(y))
        if candidate is not None and (best is None or candidate.energy < best.energy):
            best = candidate
    return best


def emin_y_curve(
    params: ProgramParams,
    deadline_s: float,
    table: ModeTable,
    samples: int = 200,
) -> list[tuple[float, float]]:
    """(y, Emin(y)) samples — the data behind Figure 8."""
    bounds = _y_bounds(params, deadline_s, table)
    if bounds is None:
        return []
    y_lo, y_hi = bounds
    curve: list[tuple[float, float]] = []
    for y in np.linspace(y_lo, y_hi, samples):
        candidate = _emin_at_y(params, deadline_s, table, float(y))
        if candidate is not None:
            curve.append((float(y), candidate.energy))
    return curve
