"""The alpha-power delay law and its numeric inverse.

``f = k (V - Vt)^a / V`` (Sakurai-Newton), with a = 1.5 and Vt = 0.45 V as
in the paper.  Frequency is strictly increasing in V above Vt, so the
inverse V(f) is found by bisection (Brent's method).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.errors import AnalysisError
from repro.simulator.dvs import ALPHA, V_THRESHOLD, calibrate_k


@dataclass(frozen=True)
class AlphaPowerLaw:
    """A calibrated V <-> f mapping.

    Attributes:
        k: technology constant (Hz·V^(1-a) scale).
        alpha: velocity-saturation exponent (paper: 1.5).
        vt: threshold voltage (paper: 0.45 V).
    """

    k: float
    alpha: float = ALPHA
    vt: float = V_THRESHOLD

    @classmethod
    def calibrated(
        cls,
        f_high: float = 800e6,
        v_high: float = 1.65,
        alpha: float = ALPHA,
        vt: float = V_THRESHOLD,
    ) -> "AlphaPowerLaw":
        """Law with k chosen so that frequency(v_high) == f_high."""
        return cls(k=calibrate_k(f_high, v_high, alpha, vt), alpha=alpha, vt=vt)

    def frequency(self, voltage: float) -> float:
        """Clock frequency at a supply voltage (Hz)."""
        if voltage <= self.vt:
            raise AnalysisError(f"voltage {voltage} V must exceed Vt={self.vt} V")
        return self.k * (voltage - self.vt) ** self.alpha / voltage

    def voltage(self, frequency: float, v_max: float = 20.0) -> float:
        """Supply voltage needed for a clock frequency (numeric inverse)."""
        if frequency <= 0:
            raise AnalysisError(f"frequency must be positive, got {frequency}")
        lo = self.vt * (1 + 1e-12)
        if self.frequency(v_max) < frequency:
            raise AnalysisError(
                f"frequency {frequency / 1e6:.1f} MHz unreachable below {v_max} V"
            )
        return float(brentq(lambda v: self.frequency(v) - frequency, lo, v_max, xtol=1e-12))

    def energy_per_cycle(self, voltage: float) -> float:
        """Relative dynamic energy of one cycle at a voltage (CV² with C=1)."""
        return voltage * voltage


DEFAULT_LAW = AlphaPowerLaw.calibrated()
