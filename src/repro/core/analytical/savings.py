"""Energy-savings ratios: the quantity Figures 5–11 and Table 1 plot.

``savings = 1 − E_optimal / E_baseline`` where the baseline is the best
*single* frequency that meets the deadline (continuous-valued for the
continuous model, the best single table level for the discrete model).
Infeasible points (deadline below the machine floor) report ``nan`` so
surface sweeps can mask them out.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError
from repro.core.analytical.alpha_power import DEFAULT_LAW, AlphaPowerLaw
from repro.core.analytical.continuous import (
    optimize_continuous,
    single_frequency_baseline,
)
from repro.core.analytical.discrete import discrete_single_baseline, optimize_discrete
from repro.core.analytical.params import ProgramParams
from repro.simulator.dvs import ModeTable


def savings_ratio_continuous(
    params: ProgramParams,
    deadline_s: float,
    law: AlphaPowerLaw = DEFAULT_LAW,
    v_low: float = 0.70,
    v_high: float = 1.65,
) -> float:
    """Continuous-model savings ratio in [0, 1]; nan when infeasible."""
    try:
        baseline = single_frequency_baseline(params, deadline_s, law, v_low, v_high)
        optimum = optimize_continuous(params, deadline_s, law, v_low, v_high)
    except AnalysisError:
        return math.nan
    if baseline.energy <= 0:
        return 0.0
    return max(0.0, 1.0 - optimum.energy / baseline.energy)


def savings_ratio_discrete(
    params: ProgramParams,
    deadline_s: float,
    table: ModeTable,
    y_samples: int = 300,
) -> float:
    """Discrete-model savings ratio in [0, 1]; nan when infeasible."""
    try:
        baseline = discrete_single_baseline(params, deadline_s, table)
        optimum = optimize_discrete(params, deadline_s, table, y_samples=y_samples)
    except AnalysisError:
        return math.nan
    if baseline.energy <= 0:
        return 0.0
    return max(0.0, 1.0 - optimum.energy / baseline.energy)
