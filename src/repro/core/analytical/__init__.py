"""Analytical model for compile-time DVS energy-savings bounds (Section 3).

Given four profiled program parameters —

* ``N_overlap`` — compute cycles that can run concurrently with memory,
* ``N_dependent`` — compute cycles that must wait for memory,
* ``N_cache`` — memory-operation cycles that hit in cache,
* ``t_invariant`` — wall-clock main-memory service time,

— a deadline and a voltage model, the module computes the minimum-energy
voltage assignment and the savings ratio relative to the best single
frequency that meets the deadline, for:

* continuously scalable supply voltage (:mod:`.continuous`), covering the
  computation-dominated, memory-dominated and memory-dominated-with-slack
  cases of Section 3.3;
* discrete voltage level sets (:mod:`.discrete`), including the
  two-neighbour split and the four-frequency memory-bound construction of
  Section 3.4 with its numeric ``Emin(y)`` sweep.
"""

from repro.core.analytical.alpha_power import AlphaPowerLaw
from repro.core.analytical.params import ProgramParams
from repro.core.analytical.continuous import (
    ContinuousCase,
    ContinuousSolution,
    optimize_continuous,
    single_frequency_baseline,
)
from repro.core.analytical.discrete import (
    DiscreteSolution,
    discrete_single_baseline,
    emin_y_curve,
    optimize_discrete,
)
from repro.core.analytical.savings import (
    savings_ratio_continuous,
    savings_ratio_discrete,
)

__all__ = [
    "AlphaPowerLaw",
    "ContinuousCase",
    "ContinuousSolution",
    "DiscreteSolution",
    "ProgramParams",
    "discrete_single_baseline",
    "emin_y_curve",
    "optimize_continuous",
    "optimize_discrete",
    "savings_ratio_continuous",
    "savings_ratio_discrete",
    "single_frequency_baseline",
]
