"""The four program parameters of the paper's Section 3.2 model."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import AnalysisError


@dataclass(frozen=True)
class ProgramParams:
    """Program characterization for the analytical model.

    Attributes:
        n_overlap: compute cycles that can run concurrently with memory
            operations (N_overlap).
        n_dependent: compute cycles dependent on memory results
            (N_dependent).
        n_cache: memory-operation cycles serviced by cache hits (N_cache).
        t_invariant_s: wall-clock main-memory (miss) service time in
            seconds; frequency-invariant by the asynchronous-memory
            assumption (t_invariant).
        name: optional program label for reports.
    """

    n_overlap: float
    n_dependent: float
    n_cache: float
    t_invariant_s: float
    name: str = ""

    def __post_init__(self) -> None:
        for field_name in ("n_overlap", "n_dependent", "n_cache", "t_invariant_s"):
            value = getattr(self, field_name)
            if value < 0:
                raise AnalysisError(f"{field_name} must be nonnegative, got {value}")

    @property
    def total_compute_cycles(self) -> float:
        return self.n_overlap + self.n_dependent

    @property
    def region1_active_cycles(self) -> float:
        """Active cycles in the overlapped region.

        The paper charges ``N_overlap · v1²`` when compute dominates the
        overlap region (Section 3.3) and ``N_cache · v1²`` when cache-hit
        memory cycles dominate it (Section 3.3.2); ``max`` expresses both
        at once, keeping the DVS-optimum and single-frequency baselines on
        the same accounting.
        """
        return max(self.n_overlap, self.n_cache)

    def f_invariant(self) -> float:
        """Frequency at which N_overlap − N_cache compute cycles exactly
        fill the miss service time (Section 3.3.1).  Infinite when the
        program has no miss time; zero when N_cache ≥ N_overlap."""
        if self.n_overlap <= self.n_cache:
            return 0.0
        if self.t_invariant_s <= 0:
            return float("inf")
        return (self.n_overlap - self.n_cache) / self.t_invariant_s

    def f_ideal(self, deadline_s: float) -> float:
        """Single frequency that finishes all compute exactly at the
        deadline, ignoring memory (Section 3.3.1)."""
        if deadline_s <= 0:
            raise AnalysisError(f"deadline must be positive, got {deadline_s}")
        return self.total_compute_cycles / deadline_s

    def f_ideal_slack(self, deadline_s: float) -> float:
        """Single frequency for the memory-dominated-with-slack case
        (Section 3.3.2): (N_cache + N_dependent) / (deadline − t_invariant)."""
        remaining = deadline_s - self.t_invariant_s
        if remaining <= 0:
            raise AnalysisError(
                f"deadline {deadline_s} does not exceed t_invariant {self.t_invariant_s}"
            )
        return (self.n_cache + self.n_dependent) / remaining

    def execution_time_s(self, frequency_hz: float) -> float:
        """Whole-program time at a single frequency:
        ``max(t_inv + N_cache/f, N_overlap/f) + N_dependent/f``."""
        if frequency_hz <= 0:
            raise AnalysisError("frequency must be positive")
        region1 = max(
            self.t_invariant_s + self.n_cache / frequency_hz,
            self.n_overlap / frequency_hz,
        )
        return region1 + self.n_dependent / frequency_hz

    def min_single_frequency(self, deadline_s: float) -> float:
        """Slowest single frequency meeting the deadline.

        Solves ``execution_time_s(f) == deadline`` in closed form; raises
        :class:`AnalysisError` when no frequency can meet the deadline
        (deadline ≤ t_invariant with memory work remaining).
        """
        f_compute = self.f_ideal(deadline_s)
        # At f_compute, does compute cover the memory time?
        if self.execution_time_s(f_compute) <= deadline_s * (1 + 1e-12):
            return f_compute
        remaining = deadline_s - self.t_invariant_s
        if remaining <= 0:
            raise AnalysisError(
                f"deadline {deadline_s}s is below the memory floor "
                f"t_invariant={self.t_invariant_s}s"
            )
        return (self.n_cache + self.n_dependent) / remaining

    def scaled(self, factor: float) -> "ProgramParams":
        """All cycle counts and miss time scaled by a factor (sweeps)."""
        return replace(
            self,
            n_overlap=self.n_overlap * factor,
            n_dependent=self.n_dependent * factor,
            n_cache=self.n_cache * factor,
            t_invariant_s=self.t_invariant_s * factor,
        )
