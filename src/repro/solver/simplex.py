"""A from-scratch dense two-phase simplex LP solver.

This is the reproduction's native LP engine (the paper used CPLEX).  It
solves::

    minimize    c @ x
    subject to  a_ub @ x <= b_ub
                a_eq @ x == b_eq
                bounds[i, 0] <= x[i] <= bounds[i, 1]

by converting to standard form (all variables nonnegative, all constraints
equalities with slacks), then running a classic two-phase tableau simplex:
phase 1 minimizes the sum of artificial variables to find a basic feasible
point, phase 2 minimizes the true objective.  Dantzig pricing is used by
default, switching to Bland's smallest-index rule after a stall budget to
guarantee termination without cycling.

The implementation is dense (NumPy tableau) and intended for the moderate
problem sizes produced by the DVS formulations (hundreds of rows/columns);
the scipy/HiGHS backend exists for anything larger.  It is validated against
HiGHS across randomized instances in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.solver.solution import SolveStatus

#: Pivots between deadline checks (keeps the clock off the hot path).
_DEADLINE_CHECK_EVERY = 32

_TOL = 1e-9
_INF = float("inf")


@dataclass
class SimplexResult:
    """Outcome of an LP solve in the original variable space."""

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    iterations: int = 0

    @property
    def ok(self) -> bool:
        return self.status.ok


@dataclass
class _StandardForm:
    """min c@z, A z = b, z >= 0, plus bookkeeping to map z back to x."""

    c: np.ndarray
    a: np.ndarray
    b: np.ndarray
    # For original variable i: kind 'shift' (x = lo + z[col]),
    # 'neg' (x = up - z[col]), 'free' (x = z[col] - z[col2]) or
    # 'fix' (x = const; the column was substituted away).
    recover: list[tuple[str, int, int, float]] = field(default_factory=list)
    offset: float = 0.0  # constant added to objective by substitutions


def _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, bounds) -> _StandardForm:
    """Rewrite the bounded-variable LP into equality standard form."""
    n = len(c)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.empty((0, n))
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.empty((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    b_eq = np.asarray(b_eq, dtype=float).ravel()
    bounds = np.asarray(bounds, dtype=float).reshape(n, 2) if n else np.empty((0, 2))

    columns: list[np.ndarray] = []  # columns over the stacked (ub; eq) rows
    costs: list[float] = []
    recover: list[tuple[str, int, int, float]] = []
    extra_upper: list[tuple[int, float]] = []  # (z column, upper bound) rows to add
    rhs_shift_ub = np.zeros(len(b_ub))
    rhs_shift_eq = np.zeros(len(b_eq))
    offset = 0.0

    stacked = np.vstack([a_ub, a_eq]) if n else np.empty((0, 0))

    for i in range(n):
        lo, up = bounds[i]
        col = stacked[:, i] if stacked.size else np.empty(0)
        if lo == -_INF and up == _INF:
            # x = z_pos - z_neg
            j = len(columns)
            columns.append(col.copy())
            costs.append(float(c[i]))
            columns.append(-col)
            costs.append(float(-c[i]))
            recover.append(("free", j, j + 1, 0.0))
        elif lo == -_INF:
            # x = up - z  (z >= 0)
            j = len(columns)
            columns.append(-col)
            costs.append(float(-c[i]))
            recover.append(("neg", j, -1, up))
            rhs_shift_ub += a_ub[:, i] * up if len(b_ub) else 0.0
            rhs_shift_eq += a_eq[:, i] * up if len(b_eq) else 0.0
            offset += c[i] * up
        elif lo == up:
            # Fixed variable (branch-and-bound pins binaries this way):
            # substitute the constant instead of carrying a column plus a
            # degenerate z + s = 0 row.  The degenerate rows are not just
            # wasteful — long runs of zero-level pivots on them accumulate
            # enough tableau error to corrupt the reduced-cost row.
            recover.append(("fix", -1, -1, lo))
            if lo != 0.0:
                rhs_shift_ub += a_ub[:, i] * lo if len(b_ub) else 0.0
                rhs_shift_eq += a_eq[:, i] * lo if len(b_eq) else 0.0
                offset += c[i] * lo
        else:
            # x = lo + z (z >= 0); finite upper bound becomes a new row
            j = len(columns)
            columns.append(col.copy())
            costs.append(float(c[i]))
            recover.append(("shift", j, -1, lo))
            if lo != 0.0:
                rhs_shift_ub += a_ub[:, i] * lo if len(b_ub) else 0.0
                rhs_shift_eq += a_eq[:, i] * lo if len(b_eq) else 0.0
                offset += c[i] * lo
            if up != _INF:
                extra_upper.append((j, up - lo))

    num_z = len(columns)
    body = np.column_stack(columns) if columns else np.empty((len(b_ub) + len(b_eq), 0))
    b_ub2 = b_ub - rhs_shift_ub if len(b_ub) else b_ub
    b_eq2 = b_eq - rhs_shift_eq if len(b_eq) else b_eq

    m_ub, m_eq, m_bnd = len(b_ub2), len(b_eq2), len(extra_upper)
    m = m_ub + m_eq + m_bnd
    num_slack = m_ub + m_bnd
    a = np.zeros((m, num_z + num_slack))
    b = np.zeros(m)
    cost = np.array(costs + [0.0] * num_slack)

    # a_ub rows with slack +1
    a[:m_ub, :num_z] = body[:m_ub]
    for r in range(m_ub):
        a[r, num_z + r] = 1.0
    b[:m_ub] = b_ub2
    # a_eq rows
    a[m_ub : m_ub + m_eq, :num_z] = body[m_ub:]
    b[m_ub : m_ub + m_eq] = b_eq2
    # bound rows z_j + s = ub
    for k, (j, ub_val) in enumerate(extra_upper):
        r = m_ub + m_eq + k
        a[r, j] = 1.0
        a[r, num_z + m_ub + k] = 1.0
        b[r] = ub_val

    return _StandardForm(c=cost, a=a, b=b, recover=recover, offset=offset)


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau on (row, col) and update the basis."""
    tableau[row] /= tableau[row, col]
    pivot_col = tableau[:, col].copy()
    pivot_col[row] = 0.0
    tableau -= np.outer(pivot_col, tableau[row])
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    allowed: np.ndarray,
    max_iter: int,
    bland_after: int = 2000,
    deadline: float | None = None,
) -> tuple[SolveStatus, int]:
    """Iterate the simplex on a tableau whose last row is reduced costs.

    Args:
        tableau: shape (m+1, n+1); last column is rhs, last row is the
            reduced-cost row with the negated objective in the corner.
        basis: length-m array of basic column indices.
        allowed: boolean mask of columns permitted to enter the basis.
        max_iter: hard iteration cap.
        bland_after: switch from Dantzig to Bland pricing after this many
            iterations (anti-cycling guarantee).
        deadline: absolute :data:`repro.observe.clock` instant after which
            the run stops with ``LIMIT`` (checked every few dozen pivots,
            so anytime budgets are honoured within milliseconds instead
            of only between whole LP solves).

    Returns:
        (status, iterations); status LIMIT when max_iter or the deadline
        was hit.
    """
    m = tableau.shape[0] - 1
    reduced = tableau[-1, :-1]
    degenerate = 0

    def finish(status: SolveStatus, iterations: int) -> tuple[SolveStatus, int]:
        # Counters are batched per phase, never per pivot, to keep the
        # pivot loop free of instrumentation cost.
        observe.add("solver.simplex.pivots", iterations)
        if degenerate:
            observe.add("solver.simplex.degenerate_pivots", degenerate)
        return status, iterations

    for iteration in range(max_iter):
        if (deadline is not None and iteration % _DEADLINE_CHECK_EVERY == 0
                and observe.clock() > deadline):
            return finish(SolveStatus.LIMIT, iteration)
        candidates = np.where(allowed & (reduced < -_TOL))[0]
        if candidates.size == 0:
            return finish(SolveStatus.OPTIMAL, iteration)
        if iteration < bland_after:
            col = candidates[np.argmin(reduced[candidates])]
        else:
            col = candidates[0]  # Bland: smallest index
        column = tableau[:m, col]
        positive = np.where(column > _TOL)[0]
        if positive.size == 0:
            return finish(SolveStatus.UNBOUNDED, iteration)
        ratios = tableau[positive, -1] / column[positive]
        best = np.min(ratios)
        if best <= _TOL:
            degenerate += 1
        # The tie window must scale with the ratio: an absolute 1e-9
        # window misses genuinely tied rows once ratios are ~1e8 or
        # larger (fp noise on the ratio itself exceeds the window), and
        # the stability tie-break below then never sees them — the exact
        # failure mode of the fixed-variable substitution rows under
        # huge coefficient ranges.
        ties = positive[ratios <= best + _TOL * (1.0 + abs(best))]
        if iteration < bland_after:
            # Stability tie-break: pivot on the largest eligible element.
            # Degenerate vertices tie many rows; repeatedly pivoting on
            # near-tolerance elements compounds tableau roundoff.
            row = ties[np.argmax(column[ties])]
        else:
            # Bland tie-break: leave the basic variable with smallest index.
            row = ties[np.argmin(basis[ties])]
        _pivot(tableau, basis, row, col)
    return finish(SolveStatus.LIMIT, max_iter)


def solve_lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None,
             max_iter: int = 20000, time_limit_s: float | None = None,
             engine: str | None = None) -> SimplexResult:
    """Solve a bounded-variable LP with the native solver.

    Dispatches to the selected LP core: the sparse revised simplex
    (default) or this module's dense two-phase tableau
    (``engine="dense"``, the kill switch).  See
    :mod:`repro.solver.engine` for the selection precedence.

    Args:
        c: objective coefficients, length n.
        a_ub, b_ub: inequality system ``a_ub @ x <= b_ub`` (may be None).
        a_eq, b_eq: equality system (may be None).
        bounds: (n, 2) array of [lb, ub]; defaults to x >= 0.
        max_iter: per-phase pivot limit.
        time_limit_s: optional wall-clock budget; an exhausted budget
            returns ``LIMIT`` mid-phase, so anytime callers never block
            on a single long LP.
        engine: explicit engine name, overriding the ambient selection.

    Returns:
        :class:`SimplexResult` with values in the original variable space.
    """
    from repro.solver import engine as engine_mod

    if engine_mod.resolve(engine) == "revised":
        from repro.solver.revised import solve_lp_revised

        result, _basis = solve_lp_revised(
            c, a_ub, b_ub, a_eq, b_eq, bounds,
            max_iter=max_iter, time_limit_s=time_limit_s)
        return result
    return solve_lp_dense(c, a_ub, b_ub, a_eq, b_eq, bounds,
                          max_iter=max_iter, time_limit_s=time_limit_s)


def solve_lp_dense(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None,
                   max_iter: int = 20000,
                   time_limit_s: float | None = None) -> SimplexResult:
    """The dense two-phase tableau core (``engine="dense"``).

    Also the canonical *polishing* solver: branch-and-bound re-solves its
    final incumbent with this engine regardless of which engine explored
    the tree, so serialized solutions are bit-identical across engines.
    """
    observe.add("solver.lp_solves")
    deadline = (observe.clock() + time_limit_s
                if time_limit_s is not None else None)
    c = np.asarray(c, dtype=float).ravel()
    n = len(c)
    if bounds is None:
        bounds = np.column_stack([np.zeros(n), np.full(n, _INF)])
    a_ub = np.empty((0, n)) if a_ub is None else a_ub
    b_ub = np.empty(0) if b_ub is None else b_ub
    a_eq = np.empty((0, n)) if a_eq is None else a_eq
    b_eq = np.empty(0) if b_eq is None else b_eq

    form = _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, bounds)
    a, b, cost = form.a, form.b, form.c
    m, total = a.shape

    # Flip rows so b >= 0 (artificials need nonnegative rhs).
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    if m == 0:
        # No constraints: optimum at z = 0 (all costs apply to z >= 0; any
        # negative cost would be unbounded).
        if np.any(cost < -_TOL):
            return SimplexResult(SolveStatus.UNBOUNDED, -_INF)
        x = _recover_x(np.zeros(total), form, n)
        return SimplexResult(SolveStatus.OPTIMAL, form.offset, x, 0)

    # ---- Phase 1: artificial basis ----------------------------------------
    num_art = m
    tableau = np.zeros((m + 1, total + num_art + 1))
    tableau[:m, :total] = a
    tableau[:m, total : total + num_art] = np.eye(m)
    tableau[:m, -1] = b
    basis = np.arange(total, total + num_art)
    # Phase-1 reduced costs: r = c1 - 1^T A (artificial costs are 1).
    tableau[-1, :total] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()

    allowed = np.ones(total + num_art, dtype=bool)
    status, iters1 = _run_simplex(tableau, basis, allowed, max_iter, deadline=deadline)
    if status is SolveStatus.LIMIT:
        return SimplexResult(SolveStatus.LIMIT, iterations=iters1)
    phase1_obj = -tableau[-1, -1]
    if phase1_obj > 1e-7:
        return SimplexResult(SolveStatus.INFEASIBLE, iterations=iters1)

    # Drive any zero-level artificials out of the basis.
    rows_to_drop: list[int] = []
    for row in range(m):
        if basis[row] >= total:
            pivot_candidates = np.where(np.abs(tableau[row, :total]) > _TOL)[0]
            if pivot_candidates.size:
                _pivot(tableau, basis, row, pivot_candidates[0])
            else:
                rows_to_drop.append(row)  # redundant constraint
    if rows_to_drop:
        keep = [r for r in range(m) if r not in rows_to_drop]
        tableau = np.vstack([tableau[keep], tableau[-1:]])
        basis = basis[keep]
        m = len(keep)

    # ---- Phase 2: true objective -------------------------------------------
    tableau = np.hstack([tableau[:, :total], tableau[:, -1:]])  # drop artificials
    tableau[-1, :] = 0.0
    tableau[-1, :total] = cost
    # Price out the basic columns: r = c - c_B B^-1 A.
    for row in range(m):
        coef = tableau[-1, basis[row]]
        if coef != 0.0:
            tableau[-1] -= coef * tableau[row]

    allowed = np.ones(total, dtype=bool)
    status, iters2 = _run_simplex(tableau, basis, allowed, max_iter, deadline=deadline)
    iterations = iters1 + iters2
    if status is SolveStatus.UNBOUNDED:
        return SimplexResult(SolveStatus.UNBOUNDED, -_INF, iterations=iterations)
    if status is SolveStatus.LIMIT:
        return SimplexResult(SolveStatus.LIMIT, iterations=iterations)

    z = np.zeros(total)
    z[basis] = tableau[:m, -1]
    x = _recover_x(z, form, n)
    objective = float(cost @ z) + form.offset
    return SimplexResult(SolveStatus.OPTIMAL, objective, x, iterations)


def _recover_x(z: np.ndarray, form: _StandardForm, n: int) -> np.ndarray:
    """Map standard-form values z back to the original variables x."""
    x = np.zeros(n)
    for i, (kind, j, j2, const) in enumerate(form.recover):
        if kind == "shift":
            x[i] = const + z[j]
        elif kind == "neg":
            x[i] = const - z[j]
        elif kind == "fix":
            x[i] = const
        else:  # free
            x[i] = z[j] - z[j2]
    return x
