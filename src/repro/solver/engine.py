"""Native LP engine selection.

The native solver ships two interchangeable LP cores:

* ``"revised"`` — the sparse revised simplex (:mod:`repro.solver.revised`):
  CSC columns, factorized basis with eta-file updates, dual-simplex warm
  starts.  The default.
* ``"dense"`` — the original two-phase dense tableau
  (:mod:`repro.solver.simplex`).  Retained as a kill switch and as the
  canonical engine for incumbent polishing, so both engines emit
  bit-identical final solutions.

Selection precedence: an explicit ``engine=`` argument, then
:func:`set_engine` (process-local override), then the
``$REPRO_SOLVER_ENGINE`` environment variable, then the default.  The
environment variable is what ``repro sweep --solver-engine`` sets, so the
choice propagates into pool worker processes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import SolverError, SolverLimitError

ENGINE_ENV = "REPRO_SOLVER_ENGINE"
ENGINES = ("revised", "dense")
DEFAULT_ENGINE = "revised"

_override: str | None = None


def check_fault_budget() -> None:
    """Fault-plane hook: deterministic solver budget exhaustion.

    Called by :meth:`repro.solver.model.Model.solve` before backend
    dispatch, so the ``solver.limit`` point fires for the scipy and
    native backends alike.  Downstream this looks exactly like a real
    exhausted iteration/node budget: the anytime chain falls through to
    its next tier, and an unbudgeted solve fails the task and is
    retried by the executor (the hit count has advanced, so the retry
    proceeds).
    """
    from repro.resilience import faultplane

    if faultplane.fire("solver.limit"):
        raise SolverLimitError(
            "injected solver budget exhaustion (fault point solver.limit)")


def _validate(name: str) -> str:
    if name not in ENGINES:
        raise SolverError(
            f"unknown solver engine {name!r} (choose from {', '.join(ENGINES)})"
        )
    return name


def resolve(explicit: str | None = None) -> str:
    """The engine to use, honouring the selection precedence."""
    if explicit is not None:
        return _validate(explicit)
    if _override is not None:
        return _override
    env = os.environ.get(ENGINE_ENV)
    if env:
        return _validate(env)
    return DEFAULT_ENGINE


def set_engine(name: str | None) -> None:
    """Set (or with None clear) the process-local engine override."""
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_engine(name: str | None):
    """Temporarily select an engine (tests and A/B comparisons)."""
    global _override
    previous = _override
    set_engine(name)
    try:
        yield
    finally:
        _override = previous
