"""Mathematical-programming substrate (the reproduction's CPLEX stand-in).

The paper solves its DVS mode-assignment problem with AMPL + CPLEX.  This
subpackage provides the equivalent functionality:

* :mod:`repro.solver.model` — an AMPL-like modelling layer (variables,
  linear expressions, constraints, objective) that compiles to matrix form.
* :mod:`repro.solver.simplex` — a from-scratch dense two-phase simplex LP
  solver with Bland anti-cycling.
* :mod:`repro.solver.branch_bound` — a best-first branch-and-bound MILP
  solver built on the simplex solver.
* :mod:`repro.solver.scipy_backend` — an optional accelerated backend that
  delegates to ``scipy.optimize`` (HiGHS).  The native solver is validated
  against it in the test suite.

Typical use::

    from repro.solver import Model

    m = Model("example")
    x = m.add_binary("x")
    y = m.add_var("y", lb=0.0, ub=4.0)
    m.add_constraint(2 * x + y <= 5, name="cap")
    m.minimize(-3 * x - y)
    sol = m.solve()            # scipy backend when available, else native
    sol = m.solve(backend="native")
"""

from repro.solver.model import Constraint, LinExpr, Model, Sense, Variable
from repro.solver.simplex import SimplexResult, solve_lp
from repro.solver.branch_bound import BranchBoundOptions, solve_milp
from repro.solver.solution import Solution, SolveStatus

__all__ = [
    "BranchBoundOptions",
    "Constraint",
    "LinExpr",
    "Model",
    "Sense",
    "SimplexResult",
    "Solution",
    "SolveStatus",
    "Variable",
    "solve_lp",
    "solve_milp",
]
