"""Accelerated solver backend delegating to scipy.optimize (HiGHS).

The native simplex/branch-and-bound in this package is exact but pure
Python; for the larger MILPs produced by the unfiltered DVS formulations
this backend hands the compiled matrices to HiGHS instead.  Results are
interchangeable with the native backend (the test suite asserts agreement),
so formulation code never needs to know which backend ran.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.solver.solution import Solution, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.LIMIT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.LIMIT,  # numerical trouble; treat as limit
}


def solve_model(
    model, time_limit: float | None = None, relax: bool = False, **_ignored
) -> Solution:
    """Solve a :class:`repro.solver.model.Model` with HiGHS.

    Extra keyword options accepted by the native backend (node limits,
    ``solver_engine``, ``warm_key`` — the warm-start plumbing) are
    ignored so callers can pass one option set to either backend; HiGHS
    manages its own basis reuse internally, so warm-start hints are a
    native-only concern.
    ``relax=True`` drops all integrality restrictions (the LP relaxation),
    which the verification oracles compare across backends.
    """
    c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, c0 = model.to_arrays()
    if relax:
        integrality = np.zeros_like(integrality)
    n = len(c)
    if n == 0:
        return Solution(SolveStatus.OPTIMAL, objective=c0, x=np.empty(0), backend="scipy")

    rows = []
    lowers = []
    uppers = []
    if a_ub.size:
        rows.append(a_ub)
        lowers.append(np.full(len(b_ub), -np.inf))
        uppers.append(b_ub)
    if a_eq.size:
        rows.append(a_eq)
        lowers.append(b_eq)
        uppers.append(b_eq)

    constraints = []
    if rows:
        a_all = sparse.csc_matrix(np.vstack(rows))
        constraints = [optimize.LinearConstraint(a_all, np.concatenate(lowers), np.concatenate(uppers))]

    variable_bounds = optimize.Bounds(bounds[:, 0], bounds[:, 1])
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit

    result = optimize.milp(
        c,
        constraints=constraints,
        bounds=variable_bounds,
        integrality=integrality.astype(int),
        options=options,
    )

    status = _STATUS_MAP.get(result.status, SolveStatus.LIMIT)
    x = np.asarray(result.x) if result.x is not None else np.empty(0)
    if x.size and integrality.any():
        x = x.copy()
        idx = np.where(integrality)[0]
        x[idx] = np.round(x[idx])
    objective = float(result.fun) + c0 if result.fun is not None else float("nan")
    dual_bound = getattr(result, "mip_dual_bound", None)
    if dual_bound is not None and np.isfinite(dual_bound):
        best_bound = float(dual_bound) + c0
    elif status is SolveStatus.OPTIMAL:
        best_bound = objective
    else:
        best_bound = None
    return Solution(
        status=status,
        objective=objective,
        x=x,
        backend="scipy",
        iterations=int(getattr(result, "mip_node_count", 0) or 0),
        nodes=int(getattr(result, "mip_node_count", 0) or 0),
        best_bound=best_bound,
    )
