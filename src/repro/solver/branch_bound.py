"""Best-first branch-and-bound MILP solver over the native simplex.

Together with :mod:`repro.solver.simplex` and
:mod:`repro.solver.revised` this forms the from-scratch replacement for
CPLEX used by the paper's DVS formulation.  The search is classic
LP-based branch and bound:

* each node is an LP relaxation with tightened variable bounds;
* nodes are explored best-bound-first (a heap keyed on the parent
  relaxation value), which keeps the global lower bound tight;
* branching picks the integer variable whose relaxation value is most
  fractional ("maximum infeasibility" rule), or — when the caller hands
  in a shared :class:`~repro.solver.warmstart.PseudocostStore` — the
  variable with the best pseudocost score, so branching history learned
  on one §5.3 multidata category transfers to its siblings;
* a node is pruned when its relaxation is infeasible or its bound cannot
  beat the incumbent.

Under the revised engine each node's LP is warm-started from its
parent's optimal basis (a bound change on one branched variable is a
couple of dual pivots), and the root can be warm-started from a related
earlier solve (the previous deadline in a sweep).

Engine independence of the output: whatever engine explored the tree,
the final incumbent is *polished* — the integer variables are fixed to
their rounded values and the continuous remainder is re-solved with the
dense tableau.  The reported floats therefore depend only on the integer
assignment, not on the pivot path, which is what keeps ``results.jsonl``
byte-identical between ``--solver-engine=revised`` and ``=dense`` and
between warm and cold sweeps.

The solver is exact: when it returns ``OPTIMAL`` the incumbent is a proven
optimum (within ``int_tol``/``gap_tol``).  A ``node_limit``/``time_limit``
exhaustion returns ``LIMIT`` with the best incumbent found, mirroring how
commercial solvers degrade.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import observe
from repro.solver import engine as engine_mod
from repro.solver.simplex import solve_lp_dense
from repro.solver.solution import SolveStatus

if TYPE_CHECKING:
    from repro.solver.revised import Basis
    from repro.solver.warmstart import PseudocostStore

_INF = float("inf")


@dataclass
class BranchBoundOptions:
    """Tuning knobs for the native MILP search."""

    int_tol: float = 1e-6
    gap_tol: float = 1e-9
    node_limit: int = 100000
    time_limit: float = 600.0
    max_lp_iter: int = 20000


@dataclass
class MilpResult:
    """Outcome of a branch-and-bound run (original variable space)."""

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    iterations: int = 0
    nodes: int = 0
    best_bound: float = float("-inf")
    #: Optimal basis of the root relaxation (revised engine only) — the
    #: warm-start hand-off for the next related solve in a sweep.
    root_basis: "Basis | None" = None
    #: Prunes attributable to an injected external incumbent (the
    #: continuous-relaxation upper bound) before the search found any
    #: incumbent of its own.
    continuous_prunes: int = 0
    #: Nodes pushed onto the open heap (root included).  ``nodes`` counts
    #: LP solves, which an external incumbent cannot reduce in a
    #: run-to-optimality best-first search (every child LP must be solved
    #: to know its bound); enqueued nodes — and the final-drain pops they
    #: imply — are the work the incumbent does save.
    nodes_enqueued: int = 0

    @property
    def ok(self) -> bool:
        return self.status.ok


def _most_fractional(x: np.ndarray, integer_idx: np.ndarray, tol: float) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    if integer_idx.size == 0:
        return None
    values = x[integer_idx]
    frac = np.abs(values - np.round(values))
    worst = int(np.argmax(frac))
    if frac[worst] <= tol:
        return None
    return int(integer_idx[worst])


def _pseudocost_branch(x: np.ndarray, integer_idx: np.ndarray, tol: float,
                       store: "PseudocostStore") -> int | None:
    """Fractional variable with the best pseudocost score, or None."""
    if integer_idx.size == 0:
        return None
    values = x[integer_idx]
    frac = values - np.floor(values)
    dist = np.minimum(frac, 1.0 - frac)
    candidates = np.nonzero(dist > tol)[0]
    if candidates.size == 0:
        return None
    scores = [store.score(int(integer_idx[k]), float(frac[k]))
              for k in candidates]
    return int(integer_idx[candidates[int(np.argmax(scores))]])


def solve_milp(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    bounds=None,
    integrality=None,
    options: BranchBoundOptions | None = None,
    engine: str | None = None,
    warm_start: "Basis | None" = None,
    pseudocosts: "PseudocostStore | None" = None,
    incumbent: "tuple[np.ndarray, float] | None" = None,
) -> MilpResult:
    """Solve a mixed-integer LP by branch and bound on the native simplex.

    Arguments mirror :func:`repro.solver.simplex.solve_lp`, plus
    ``integrality``: a boolean mask marking the integer variables.

    Args:
        engine: LP core for node relaxations ("revised"/"dense"); None
            follows the ambient :mod:`repro.solver.engine` selection.
        warm_start: basis to warm-start the *root* relaxation from
            (revised engine only; ignored otherwise).  The returned
            ``root_basis`` closes the loop for the next solve.
        pseudocosts: shared branching-history store; when given, branch
            variables are chosen by pseudocost score instead of maximum
            fractionality, and the store is updated in place.
        incumbent: an externally constructed feasible integral point
            ``(x0, objective)`` — here, the schedule rounded up from the
            exact continuous-voltage optimum.  The search starts with it
            as the incumbent, so subtrees that cannot beat it are pruned
            immediately (counted in ``continuous_prunes`` and the
            ``solver.bnb.continuous_prunes`` observe counter until the
            search finds an incumbent of its own).  Soundness: a subtree
            is pruned only when its bound is ``>= objective - gap_tol``,
            so the returned point is always within ``gap_tol`` of the
            true optimum — the solver's existing exactness contract.

    Returns:
        :class:`MilpResult`.  ``status == LIMIT`` means a limit was hit;
        the incumbent (if any) is still returned in ``x``/``objective``.
    """
    options = options or BranchBoundOptions()
    c = np.asarray(c, dtype=float).ravel()
    n = len(c)
    if bounds is None:
        bounds = np.column_stack([np.zeros(n), np.full(n, _INF)])
    bounds = np.asarray(bounds, dtype=float).reshape(n, 2)
    integrality = (
        np.zeros(n, dtype=bool) if integrality is None else np.asarray(integrality, dtype=bool)
    )
    integer_idx = np.where(integrality)[0]

    start = observe.clock()
    total_lp_iters = 0
    nodes_explored = 0
    nodes_pruned = 0
    continuous_prunes = 0
    nodes_enqueued = 0

    def lp_budget() -> float:
        """Wall-clock left for the next LP solve (floored so a nearly
        exhausted budget still lets the LP fail fast rather than hang)."""
        return max(1e-3, options.time_limit - (observe.clock() - start))

    def flush_counters() -> None:
        observe.add("solver.bnb.nodes_explored", nodes_explored)
        if nodes_pruned:
            observe.add("solver.bnb.nodes_pruned", nodes_pruned)
        if continuous_prunes:
            observe.add("solver.bnb.continuous_prunes", continuous_prunes)
        if nodes_enqueued:
            observe.add("solver.bnb.nodes_enqueued", nodes_enqueued)

    engine_name = engine_mod.resolve(engine)
    if engine_name == "revised":
        from repro.solver.revised import RevisedProblem

        # One compiled problem for the whole tree: nodes only override
        # bounds, so the sparse columns and cost vector are shared.
        problem = RevisedProblem(c, a_ub, b_ub, a_eq, b_eq, bounds)

        def node_solve(node_bounds, warm_basis):
            outcome = problem.solve(
                warm=warm_basis, bounds=node_bounds,
                max_iter=options.max_lp_iter, time_limit_s=lp_budget())
            return outcome.result, outcome.basis
    else:
        def node_solve(node_bounds, warm_basis):
            result = solve_lp_dense(
                c, a_ub, b_ub, a_eq, b_eq, node_bounds,
                max_iter=options.max_lp_iter, time_limit_s=lp_budget())
            return result, None

    def pick_branch(x: np.ndarray) -> int | None:
        if pseudocosts is not None:
            return _pseudocost_branch(x, integer_idx, options.int_tol,
                                      pseudocosts)
        return _most_fractional(x, integer_idx, options.int_tol)

    def polish(snapped: np.ndarray, obj: float) -> tuple[np.ndarray, float]:
        """Canonicalize the incumbent: fix integers, re-solve the
        continuous remainder with the dense engine (no deadline, so the
        output is deterministic even when the budget is exhausted)."""
        fixed = bounds.copy()
        fixed[integer_idx, 0] = snapped[integer_idx]
        fixed[integer_idx, 1] = snapped[integer_idx]
        res = solve_lp_dense(c, a_ub, b_ub, a_eq, b_eq, fixed,
                             max_iter=options.max_lp_iter)
        if (res.status is SolveStatus.OPTIMAL
                and abs(res.objective - obj) <= 1e-6 * (1.0 + abs(obj))):
            return res.x, res.objective
        return snapped, obj  # polish disagreed: keep the proven incumbent

    root, root_basis = node_solve(bounds, warm_start)
    total_lp_iters += root.iterations
    nodes_explored += 1
    if root.status is SolveStatus.INFEASIBLE:
        flush_counters()
        return MilpResult(SolveStatus.INFEASIBLE, nodes=1, iterations=total_lp_iters)
    if root.status is SolveStatus.UNBOUNDED:
        flush_counters()
        return MilpResult(SolveStatus.UNBOUNDED, nodes=1, iterations=total_lp_iters)
    if root.status is SolveStatus.LIMIT:
        flush_counters()
        return MilpResult(SolveStatus.LIMIT, nodes=1, iterations=total_lp_iters)

    incumbent_x: np.ndarray | None = None
    incumbent_obj = _INF
    # An injected incumbent primes the pruning threshold before the
    # search has found any integral point of its own; once the search
    # improves on it, further prunes are ordinary ones.
    injected = False
    if incumbent is not None:
        x0, obj0 = incumbent
        x0 = np.asarray(x0, dtype=float).ravel()
        if x0.size == n and np.isfinite(obj0):
            incumbent_x = x0.copy()
            incumbent_obj = float(obj0)
            injected = True

    counter = itertools.count()  # heap tie-breaker
    # Heap entries: (relaxation bound, seq, bounds array, relaxation
    # solution, relaxation objective, optimal basis for warm-starting
    # the children).
    heap: list[tuple] = []
    heapq.heappush(heap, (root.objective, next(counter), bounds.copy(),
                          root.x, root.objective, root_basis))
    nodes_enqueued += 1

    limit_hit = False
    while heap:
        bound, _, node_bounds, node_x, node_obj, node_basis = heapq.heappop(heap)
        if bound >= incumbent_obj - options.gap_tol:
            nodes_pruned += 1
            if injected:
                continuous_prunes += 1
            continue  # cannot improve on incumbent
        if nodes_explored >= options.node_limit or observe.clock() - start > options.time_limit:
            limit_hit = True
            # Reinstate the popped node so the final best-bound report
            # still covers its (unexplored) subtree.
            heapq.heappush(heap, (bound, next(counter), node_bounds,
                                  node_x, node_obj, node_basis))
            break

        branch_var = pick_branch(node_x)
        if branch_var is None:
            # Integral relaxation: new incumbent.
            if node_obj < incumbent_obj - options.gap_tol:
                incumbent_obj = node_obj
                incumbent_x = node_x.copy()
                injected = False
                observe.add("solver.bnb.incumbents")
                # Best-first pop order makes this node's bound the global
                # lower bound, so the event carries the gap over time.
                observe.event("bnb.incumbent", objective=incumbent_obj,
                              lower_bound=bound, nodes=nodes_explored)
            continue

        value = node_x[branch_var]
        floor_val = np.floor(value)
        frac_down = float(value - floor_val)
        for is_down in (True, False):
            child_bounds = node_bounds.copy()
            if is_down:
                child_bounds[branch_var, 1] = min(child_bounds[branch_var, 1], floor_val)
            else:
                child_bounds[branch_var, 0] = max(child_bounds[branch_var, 0], floor_val + 1.0)
            if child_bounds[branch_var, 0] > child_bounds[branch_var, 1]:
                continue
            child, child_basis = node_solve(child_bounds, node_basis)
            total_lp_iters += child.iterations
            nodes_explored += 1
            if child.status is SolveStatus.LIMIT:
                # An unsolved child cannot be pruned soundly: its subtree
                # may hold the optimum.  Degrade the whole run to LIMIT.
                limit_hit = True
                continue
            if child.status is not SolveStatus.OPTIMAL:
                nodes_pruned += 1
                continue  # infeasible child is pruned
            if pseudocosts is not None:
                pseudocosts.update(
                    branch_var, 0 if is_down else 1,
                    child.objective - node_obj,
                    frac_down if is_down else 1.0 - frac_down)
            if child.objective >= incumbent_obj - options.gap_tol:
                nodes_pruned += 1
                if injected:
                    continuous_prunes += 1
                continue
            frac = pick_branch(child.x)
            if frac is None:
                if child.objective < incumbent_obj - options.gap_tol:
                    incumbent_obj = child.objective
                    incumbent_x = child.x.copy()
                    injected = False
                    observe.add("solver.bnb.incumbents")
                    observe.event("bnb.incumbent", objective=incumbent_obj,
                                  lower_bound=bound, nodes=nodes_explored)
            else:
                heapq.heappush(
                    heap,
                    (child.objective, next(counter), child_bounds, child.x,
                     child.objective, child_basis),
                )
                nodes_enqueued += 1

    flush_counters()
    if incumbent_x is None:
        status = SolveStatus.LIMIT if limit_hit else SolveStatus.INFEASIBLE
        bound = min([b for b, *_ in heap], default=root.objective)
        return MilpResult(
            status, nodes=nodes_explored, iterations=total_lp_iters,
            best_bound=bound, root_basis=root_basis,
            continuous_prunes=continuous_prunes,
            nodes_enqueued=nodes_enqueued,
        )

    # Snap near-integer values exactly to integers for downstream
    # consumers, then canonicalize the continuous part.
    snapped = incumbent_x.copy()
    snapped[integer_idx] = np.round(snapped[integer_idx])
    snapped, incumbent_obj = polish(snapped, incumbent_obj)
    status = SolveStatus.LIMIT if limit_hit else SolveStatus.OPTIMAL
    best_bound = min([bound for bound, *_ in heap], default=incumbent_obj)
    return MilpResult(
        status,
        objective=incumbent_obj,
        x=snapped,
        iterations=total_lp_iters,
        nodes=nodes_explored,
        best_bound=best_bound,
        root_basis=root_basis,
        continuous_prunes=continuous_prunes,
        nodes_enqueued=nodes_enqueued,
    )
