"""Sparse revised simplex with bounded variables and dual warm starts.

This is the default native LP core (``engine="revised"``; the dense
tableau in :mod:`repro.solver.simplex` remains as the kill switch).  The
problem is held in bounded-variable form::

    minimize    c @ x
    subject to  A x (+ slack) = b
                lower <= x <= upper

so variable bounds — including the fixed variables branch-and-bound
creates by pinning binaries — never become rows.  Columns keep a stable
identity across solves of the same shape, which is what makes a basis
from one deadline (or one branch-and-bound node) a valid warm start for
the next.

Key pieces:

* :class:`SparseColumns` — CSC-style column storage in plain NumPy
  (``indptr``/``indices``/``data``); pricing is a vectorized
  ``A^T y`` over all columns at once.
* the basis is factorized to a dense inverse at refactorization points
  and advanced between them with product-form eta updates; FTRAN applies
  the factor then the etas in order, BTRAN the transposed etas in
  reverse.  Every ~64 pivots the factor is rebuilt and the basic values
  recomputed, bounding drift.
* primal simplex with Dantzig or devex (steepest-edge flavoured)
  pricing, falling back to Bland's rule after a stall budget so
  termination is guaranteed; bound flips handle boxed variables without
  pivoting.
* a dual simplex entry point: a warm basis that is primal-infeasible
  after a bounds/rhs change (the deadline moved, a branch pinned a
  binary) is repaired with a handful of dual pivots instead of a cold
  two-phase solve.  A warm start that goes numerically bad is abandoned
  and the solve falls back to the cold path — warm starting is an
  optimization, never a correctness dependency.

Feasibility is found with per-row artificials whose bounds are locked to
``[0, 0]`` after phase 1, so redundant rows never have to be dropped and
the column count stays stable for warm starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.solver.simplex import SimplexResult
from repro.solver.solution import SolveStatus

_INF = float("inf")
_TOL = 1e-9
_PIVOT_TOL = 1e-9
_DEADLINE_CHECK_EVERY = 32
#: Pivots between refactorizations (eta-file length cap).
REFACTOR_EVERY = 64
#: Iterations before pricing falls back to Bland's anti-cycling rule.
BLAND_AFTER = 2000

#: Column states.  FIXED columns (``lower == upper``) are excluded from
#: pricing entirely: their reduced cost carries no sign information, and
#: letting them enter only causes zero-length churn (see
#: ``tests/solver/test_revised_simplex.py::TestFixedColumnInvariant``).
BASIC, AT_LB, AT_UB, FREE_NB, FIXED = 0, 1, 2, 3, 4


class SparseColumns:
    """CSC-style column storage over the stacked (ub; eq) rows."""

    __slots__ = ("indptr", "indices", "data", "nrows")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, nrows: int) -> None:
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.nrows = nrows

    @classmethod
    def from_dense(cls, dense: np.ndarray,
                   extra_unit_columns: list[int] | None = None) -> "SparseColumns":
        """Build from a dense (m, n) matrix, optionally appending unit
        columns ``e_row`` for each listed row (slacks/artificials)."""
        nrows = dense.shape[0]
        indptr = [0]
        indices: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for j in range(dense.shape[1]):
            nz = np.nonzero(dense[:, j])[0]
            indices.append(nz)
            data.append(dense[nz, j])
            indptr.append(indptr[-1] + len(nz))
        for row in extra_unit_columns or []:
            indices.append(np.array([row], dtype=np.int64))
            data.append(np.array([1.0]))
            indptr.append(indptr[-1] + 1)
        return cls(
            np.asarray(indptr, dtype=np.int64),
            (np.concatenate(indices) if indices
             else np.empty(0, dtype=np.int64)).astype(np.int64),
            np.concatenate(data) if data else np.empty(0),
            nrows,
        )

    @property
    def ncols(self) -> int:
        return len(self.indptr) - 1

    def t_dot(self, y: np.ndarray) -> np.ndarray:
        """``A^T y`` for every column at once (vectorized pricing)."""
        vals = self.data * y[self.indices]
        csum = np.concatenate(([0.0], np.cumsum(vals)))
        return csum[self.indptr[1:]] - csum[self.indptr[:-1]]

    def dense_column(self, j: int) -> np.ndarray:
        out = np.zeros(self.nrows)
        lo, hi = self.indptr[j], self.indptr[j + 1]
        out[self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def dense_submatrix(self, cols: np.ndarray) -> np.ndarray:
        """Dense (m, k) gather of the listed columns (refactorization)."""
        out = np.zeros((self.nrows, len(cols)))
        for k, j in enumerate(cols):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            out[self.indices[lo:hi], k] = self.data[lo:hi]
        return out

    def dot(self, x: np.ndarray) -> np.ndarray:
        """``A x`` exploiting sparsity of ``x`` (few nonbasic nonzeros)."""
        out = np.zeros(self.nrows)
        for j in np.nonzero(x)[0]:
            lo, hi = self.indptr[j], self.indptr[j + 1]
            out[self.indices[lo:hi]] += self.data[lo:hi] * x[j]
        return out


@dataclass
class Basis:
    """A restartable snapshot of the simplex basis.

    ``status`` holds one of BASIC/AT_LB/AT_UB/FREE_NB/FIXED per column
    (structural + slack + artificial); ``order`` maps each row to its
    basic column.  The snapshot carries no factorization — a warm start
    refactorizes against the *current* matrix, which is what makes a
    basis transferable across deadlines whose constraint coefficients
    differ (row scaling preserves which basis is optimal, not the
    numbers).  Ephemeral by design: per-sweep state, never cached.
    """

    status: np.ndarray
    order: np.ndarray
    signature: tuple[int, int]  # (ncols, nrows) shape guard

    def copy(self) -> "Basis":
        return Basis(self.status.copy(), self.order.copy(), self.signature)

    def compatible(self, ncols: int, nrows: int) -> bool:
        return (self.signature == (ncols, nrows)
                and len(self.status) == ncols and len(self.order) == nrows)


@dataclass
class RevisedOutcome:
    """A revised-simplex solve plus its warm-start handover state."""

    result: SimplexResult
    basis: Basis
    warm_used: bool = False
    #: Reduced costs over all columns at termination (OPTIMAL only);
    #: exposed so tests can pin the pricing sign invariants.
    reduced_costs: np.ndarray | None = None


class _State:
    """Mutable solve state: statuses, basic values, factor + eta file."""

    def __init__(self, problem: "RevisedProblem", status: np.ndarray,
                 order: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> None:
        self.problem = problem
        self.status = status
        self.order = order
        self.lower = lower
        self.upper = upper
        self.x_b = np.zeros(len(order))
        self.binv: np.ndarray | None = None
        self.etas: list[tuple[int, np.ndarray]] = []
        self.ftran_count = 0
        self.btran_count = 0
        self.refactor_count = 0

    # -- factorization -----------------------------------------------------

    def refactor(self, check: bool = False) -> bool:
        """Rebuild the dense basis inverse; returns False on a singular
        (or, with ``check``, numerically unusable) basis."""
        self.refactor_count += 1
        basis_matrix = self.problem.columns.dense_submatrix(self.order)
        try:
            self.binv = np.linalg.inv(basis_matrix)
        except np.linalg.LinAlgError:
            return False
        if not np.all(np.isfinite(self.binv)):
            return False
        if check:
            residual = basis_matrix @ self.binv
            residual[np.arange(len(self.order)), np.arange(len(self.order))] -= 1.0
            if not np.all(np.abs(residual) < 1e-6):
                return False
        self.etas = []
        return True

    def compute_xb(self) -> None:
        """Recompute basic values from scratch (fresh factor, no etas)."""
        x_n = self.nonbasic_values()
        resid = self.problem.b - self.problem.columns.dot(x_n)
        self.x_b = self.binv @ resid

    def nonbasic_values(self) -> np.ndarray:
        x = np.where(
            self.status == AT_UB, self.upper,
            np.where((self.status == AT_LB) | (self.status == FIXED),
                     self.lower, 0.0),
        )
        x[self.order] = 0.0
        return x

    def full_x(self) -> np.ndarray:
        x = self.nonbasic_values()
        x[self.order] = self.x_b
        return x

    # -- FTRAN / BTRAN -----------------------------------------------------

    def ftran(self, column: np.ndarray) -> np.ndarray:
        """``B^-1 a``: factor solve, then eta updates in pivot order."""
        self.ftran_count += 1
        v = self.binv @ column
        for r, d in self.etas:
            piv = v[r] / d[r]
            v -= d * piv
            v[r] = piv
        return v

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        """``B^-T y``: transposed etas in reverse, then the factor."""
        self.btran_count += 1
        y = rhs.copy()
        for r, d in reversed(self.etas):
            y[r] = (y[r] - (d @ y - d[r] * y[r])) / d[r]
        return self.binv.T @ y

    def push_eta(self, row: int, alpha: np.ndarray) -> None:
        self.etas.append((row, alpha.copy()))
        if len(self.etas) >= REFACTOR_EVERY:
            if not self.refactor():
                # A basis the simplex itself built should never be
                # singular; if roundoff made it so, rebuilding from the
                # statuses is impossible here, so keep the eta file and
                # let the next refactorization try again.
                self.etas.append((row, alpha.copy()))
                self.etas.pop()
                return
            self.compute_xb()


class RevisedProblem:
    """A bounded-variable LP compiled for the revised simplex.

    Construction is per *shape*: branch-and-bound re-solves the same
    problem object with per-node ``bounds`` overrides, and a sweep builds
    one problem per deadline but hands the previous deadline's
    :class:`Basis` to :meth:`solve`.
    """

    def __init__(self, c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
                 bounds=None) -> None:
        c = np.asarray(c, dtype=float).ravel()
        n = len(c)
        a_ub = (np.asarray(a_ub, dtype=float).reshape(-1, n)
                if a_ub is not None and np.size(a_ub) else np.empty((0, n)))
        a_eq = (np.asarray(a_eq, dtype=float).reshape(-1, n)
                if a_eq is not None and np.size(a_eq) else np.empty((0, n)))
        b_ub = (np.asarray(b_ub, dtype=float).ravel()
                if b_ub is not None else np.empty(0))
        b_eq = (np.asarray(b_eq, dtype=float).ravel()
                if b_eq is not None else np.empty(0))
        if bounds is None:
            bounds = np.column_stack([np.zeros(n), np.full(n, _INF)])
        bounds = np.asarray(bounds, dtype=float).reshape(n, 2)

        self.n = n
        self.m_ub = len(b_ub)
        self.m = self.m_ub + len(b_eq)
        self.b = np.concatenate([b_ub, b_eq])
        stacked = np.vstack([a_ub, a_eq]) if self.m else np.empty((0, n))
        # Columns: structural, then one slack per <= row, then one
        # artificial per row.  Slacks and artificials are unit columns.
        self.columns = SparseColumns.from_dense(
            stacked,
            extra_unit_columns=list(range(self.m_ub)) + list(range(self.m)),
        )
        self.ncols = self.columns.ncols
        self.art_start = n + self.m_ub
        self.cost = np.concatenate([c, np.zeros(self.ncols - n)])
        self.base_bounds = bounds
        # Tolerances scale with the data so huge/tiny-coefficient
        # instances (the torture generators) are judged relatively.  The
        # dual tolerance is per-column: a single max|c| scalar would let
        # a 1e4-range cost mask genuinely profitable reduced costs on
        # columns whose own scale is 1e-5 (the wide_range profile).
        self.feas_tol = _TOL * max(1.0, float(np.max(np.abs(self.b)))
                                   if self.m else 1.0)
        colmax = np.concatenate([
            np.max(np.abs(stacked), axis=0) if self.m else np.zeros(n),
            np.ones(self.ncols - n),
        ])
        self.dj_tol = _TOL * np.maximum(
            1e-3, np.maximum(np.abs(self.cost), colmax))

    # -- bound handling ----------------------------------------------------

    def _working_bounds(self, bounds) -> tuple[np.ndarray, np.ndarray]:
        structural = (self.base_bounds if bounds is None
                      else np.asarray(bounds, dtype=float).reshape(self.n, 2))
        lower = np.concatenate([
            structural[:, 0], np.zeros(self.m_ub), np.zeros(self.m)])
        upper = np.concatenate([
            structural[:, 1], np.full(self.m_ub, _INF), np.zeros(self.m)])
        return lower, upper

    def _normalize_statuses(self, status: np.ndarray, lower: np.ndarray,
                            upper: np.ndarray) -> None:
        """Make nonbasic statuses consistent with the current bounds
        (branching may have pinned or tightened since the basis was
        taken; artificials are always locked)."""
        nonbasic = status != BASIC
        fixed = nonbasic & (lower == upper)
        status[fixed] = FIXED
        unfixed = nonbasic & ~fixed
        # AT_LB needs a finite lower bound, AT_UB a finite upper one.
        bad_lb = unfixed & (status == AT_LB) & ~np.isfinite(lower)
        status[bad_lb & np.isfinite(upper)] = AT_UB
        status[bad_lb & ~np.isfinite(upper)] = FREE_NB
        bad_ub = unfixed & (status == AT_UB) & ~np.isfinite(upper)
        status[bad_ub & np.isfinite(lower)] = AT_LB
        status[bad_ub & ~np.isfinite(lower)] = FREE_NB
        was_fixed = unfixed & (status == FIXED)
        status[was_fixed & np.isfinite(lower)] = AT_LB
        status[was_fixed & ~np.isfinite(lower) & np.isfinite(upper)] = AT_UB
        status[was_fixed & ~np.isfinite(lower) & ~np.isfinite(upper)] = FREE_NB

    # -- simplex loops -----------------------------------------------------

    def _ratio_test(self, state: _State, delta: np.ndarray,
                    bland: bool) -> tuple[float, int | None]:
        """Max step before a basic variable hits a bound; (t, row)."""
        lb_b = state.lower[state.order]
        ub_b = state.upper[state.order]
        limits = np.full(self.m, _INF)
        dec = delta > _PIVOT_TOL
        inc = delta < -_PIVOT_TOL
        with np.errstate(invalid="ignore"):
            limits[dec] = (state.x_b[dec] - lb_b[dec]) / delta[dec]
            limits[inc] = (state.x_b[inc] - ub_b[inc]) / delta[inc]
        limits = np.maximum(limits, 0.0)  # roundoff below a bound
        limits[~(dec | inc)] = _INF
        best = float(np.min(limits)) if self.m else _INF
        if not np.isfinite(best):
            return _INF, None
        # Relative tie window: an absolute 1e-9 window misses genuinely
        # tied rows once ratios are large (see the dense engine's fix).
        window = best + _TOL * (1.0 + abs(best))
        ties = np.nonzero((limits <= window) & (dec | inc))[0]
        if bland:
            row = ties[np.argmin(state.order[ties])]
        else:
            row = ties[np.argmax(np.abs(delta[ties]))]
        return best, int(row)

    def _primal(self, state: _State, cost: np.ndarray, max_iter: int,
                deadline: float | None, dj_tol: float | np.ndarray,
                pricing: str = "dantzig") -> tuple[SolveStatus, int]:
        """Primal simplex from a primal-feasible basis."""
        columns = self.columns
        weights = np.ones(self.ncols) if pricing == "devex" else None
        iters = 0
        while iters < max_iter:
            if (deadline is not None and iters % _DEADLINE_CHECK_EVERY == 0
                    and observe.clock() > deadline):
                return SolveStatus.LIMIT, iters
            y = state.btran(cost[state.order])
            d = cost - columns.t_dot(y)
            status = state.status
            eligible = np.nonzero(
                ((status == AT_LB) & (d < -dj_tol))
                | ((status == AT_UB) & (d > dj_tol))
                | ((status == FREE_NB) & (np.abs(d) > dj_tol))
            )[0]
            if eligible.size == 0:
                return SolveStatus.OPTIMAL, iters
            bland = iters >= BLAND_AFTER
            if bland:
                q = int(eligible[0])
            elif weights is not None:
                score = d[eligible] ** 2 / weights[eligible]
                q = int(eligible[np.argmax(score)])
            else:
                q = int(eligible[np.argmax(np.abs(d[eligible]))])
            direction = (1.0 if status[q] == AT_LB
                         or (status[q] == FREE_NB and d[q] < 0.0) else -1.0)
            alpha = state.ftran(columns.dense_column(q))
            t_rows, row = self._ratio_test(state, direction * alpha, bland)
            own = state.upper[q] - state.lower[q]
            if own <= t_rows and np.isfinite(own):
                # Bound flip: the entering variable crosses its box
                # before any basic variable blocks; no basis change.
                state.x_b -= direction * own * alpha
                state.status[q] = AT_UB if status[q] == AT_LB else AT_LB
                iters += 1
                continue
            if row is None or not np.isfinite(t_rows):
                return SolveStatus.UNBOUNDED, iters
            xq_start = (state.lower[q] if status[q] == AT_LB
                        else state.upper[q] if status[q] == AT_UB else 0.0)
            state.x_b -= direction * t_rows * alpha
            leaving = int(state.order[row])
            if state.lower[leaving] == state.upper[leaving]:
                state.status[leaving] = FIXED
            else:
                state.status[leaving] = (AT_LB if direction * alpha[row] > 0
                                         else AT_UB)
            state.order[row] = q
            state.status[q] = BASIC
            state.x_b[row] = xq_start + direction * t_rows
            if weights is not None and abs(alpha[row]) > _PIVOT_TOL:
                # Devex reference-weight update (Forrest-Goldfarb).
                rho = state.btran(_unit(self.m, row))
                arow = columns.t_dot(rho)
                ratio_sq = (arow / alpha[row]) ** 2 * weights[q]
                weights = np.maximum(weights, ratio_sq)
                weights[leaving] = max(weights[q] / alpha[row] ** 2, 1.0)
                if weights.max() > 1e8:
                    weights[:] = 1.0  # reset the reference framework
            state.push_eta(row, alpha)
            iters += 1
        return SolveStatus.LIMIT, iters

    def _dual(self, state: _State, cost: np.ndarray, max_iter: int,
              deadline: float | None) -> tuple[SolveStatus | None, int]:
        """Dual simplex: repair primal feasibility while keeping the
        basis (approximately) dual feasible.  Returns ``None`` status to
        signal the warm start should be abandoned for a cold solve."""
        columns = self.columns
        iters = 0
        while iters < max_iter:
            if (deadline is not None and iters % _DEADLINE_CHECK_EVERY == 0
                    and observe.clock() > deadline):
                return SolveStatus.LIMIT, iters
            lb_b = state.lower[state.order]
            ub_b = state.upper[state.order]
            low_viol = lb_b - state.x_b
            up_viol = state.x_b - ub_b
            viol = np.maximum(low_viol, up_viol)
            viol[~np.isfinite(viol)] = -_INF  # free basics never violate
            row = int(np.argmax(viol)) if self.m else 0
            if self.m == 0 or viol[row] <= self.feas_tol:
                return SolveStatus.OPTIMAL, iters
            at_lb = low_viol[row] >= up_viol[row]
            target = lb_b[row] if at_lb else ub_b[row]
            rho = state.btran(_unit(self.m, row))
            arow = columns.t_dot(rho)
            y = state.btran(cost[state.order])
            d = cost - columns.t_dot(y)
            status = state.status
            if at_lb:  # x_b[row] must increase
                can = (((status == AT_LB) & (arow < -_PIVOT_TOL))
                       | ((status == AT_UB) & (arow > _PIVOT_TOL))
                       | ((status == FREE_NB) & (np.abs(arow) > _PIVOT_TOL)))
            else:  # x_b[row] must decrease
                can = (((status == AT_LB) & (arow > _PIVOT_TOL))
                       | ((status == AT_UB) & (arow < -_PIVOT_TOL))
                       | ((status == FREE_NB) & (np.abs(arow) > _PIVOT_TOL)))
            eligible = np.nonzero(can)[0]
            if eligible.size == 0:
                # No nonbasic movement can push x_b[row] toward its
                # bound: the row proves primal infeasibility (valid even
                # from a dual-infeasible start — it is a box argument).
                return SolveStatus.INFEASIBLE, iters
            ratios = np.abs(d[eligible]) / np.abs(arow[eligible])
            best = float(np.min(ratios))
            window = best + _TOL * (1.0 + abs(best))
            ties = eligible[ratios <= window]
            q = int(ties[np.argmax(np.abs(arow[ties]))])
            alpha = state.ftran(columns.dense_column(q))
            if abs(alpha[row]) <= _PIVOT_TOL:
                return None, iters  # FTRAN disagrees with BTRAN: abandon
            step = (state.x_b[row] - target) / alpha[row]
            span = state.upper[q] - state.lower[q]
            if np.isfinite(span) and abs(step) > span:
                # Entering variable hits its own far bound first: flip it
                # and keep hunting an entering column for this row.
                flip = span if step > 0 else -span
                state.x_b -= flip * alpha
                state.status[q] = AT_UB if status[q] == AT_LB else AT_LB
                iters += 1
                continue
            xq_start = (state.lower[q] if status[q] == AT_LB
                        else state.upper[q] if status[q] == AT_UB else 0.0)
            state.x_b -= step * alpha
            leaving = int(state.order[row])
            if state.lower[leaving] == state.upper[leaving]:
                state.status[leaving] = FIXED
            else:
                state.status[leaving] = AT_LB if at_lb else AT_UB
            state.order[row] = q
            state.status[q] = BASIC
            state.x_b[row] = xq_start + step
            state.push_eta(row, alpha)
            iters += 1
        return None, iters  # budget exhausted: abandon to the cold path

    # -- solve entry points ------------------------------------------------

    def solve(self, warm: Basis | None = None, bounds=None,
              max_iter: int = 20000, time_limit_s: float | None = None,
              pricing: str = "dantzig") -> RevisedOutcome:
        """Solve, optionally warm-starting from a previous basis.

        Args:
            warm: basis snapshot from a structurally identical problem
                (same column layout; coefficients/bounds/rhs may differ).
                Incompatible or numerically bad bases are ignored.
            bounds: per-solve structural bounds override (branch-and-
                bound nodes); defaults to the constructor's bounds.
            max_iter: per-phase pivot cap.
            time_limit_s: wall-clock budget; exhaustion returns LIMIT.
            pricing: ``"dantzig"`` or ``"devex"``.
        """
        deadline = (observe.clock() + time_limit_s
                    if time_limit_s is not None else None)
        lower, upper = self._working_bounds(bounds)
        observe.add("solver.revised.solves")
        observe.add("solver.lp_solves")

        if self.m == 0:
            return self._solve_unconstrained(lower, upper)

        outcome: RevisedOutcome | None = None
        warm_pivots = 0
        states: list[_State] = []
        if warm is not None and warm.compatible(self.ncols, self.m):
            state = _State(self, warm.status.copy(), warm.order.copy(),
                           lower, upper)
            states.append(state)
            self._normalize_statuses(state.status, lower, upper)
            if state.refactor(check=True):
                state.compute_xb()
                dual_cap = min(max_iter, 200 + 2 * self.m)
                dstatus, diters = self._dual(
                    state, self.cost, dual_cap, deadline)
                warm_pivots += diters
                if dstatus is SolveStatus.OPTIMAL:
                    pstatus, piters = self._primal(
                        state, self.cost, max_iter, deadline, self.dj_tol,
                        pricing)
                    warm_pivots += piters
                    outcome = self._finalize(state, pstatus, warm_pivots,
                                             warm_used=True)
                elif dstatus in (SolveStatus.INFEASIBLE, SolveStatus.LIMIT):
                    outcome = self._finalize(state, dstatus, warm_pivots,
                                             warm_used=True)
                # dstatus None: abandoned — fall through to the cold path.
        if outcome is None:
            outcome, cold_state = self._solve_cold(
                lower, upper, max_iter, deadline, pricing,
                extra_iters=warm_pivots)
            states.append(cold_state)
        self._flush_counters(states, outcome)
        return outcome

    def _solve_unconstrained(self, lower: np.ndarray,
                             upper: np.ndarray) -> RevisedOutcome:
        """No rows: each variable independently at its cheapest bound."""
        x = np.zeros(self.n)
        for j in range(self.n):
            cj, lo, up = self.cost[j], lower[j], upper[j]
            if cj > self.dj_tol[j]:
                if not np.isfinite(lo):
                    return self._trivial(SolveStatus.UNBOUNDED)
                x[j] = lo
            elif cj < -self.dj_tol[j]:
                if not np.isfinite(up):
                    return self._trivial(SolveStatus.UNBOUNDED)
                x[j] = up
            else:
                x[j] = lo if np.isfinite(lo) else (up if np.isfinite(up)
                                                   else 0.0)
        objective = float(self.cost[:self.n] @ x)
        result = SimplexResult(SolveStatus.OPTIMAL, objective, x, 0)
        return RevisedOutcome(result, self._empty_basis(),
                              reduced_costs=self.cost.copy())

    def _trivial(self, status: SolveStatus) -> RevisedOutcome:
        objective = -_INF if status is SolveStatus.UNBOUNDED else float("nan")
        return RevisedOutcome(SimplexResult(status, objective),
                              self._empty_basis())

    def _empty_basis(self) -> Basis:
        return Basis(np.full(self.ncols, AT_LB, dtype=np.int8),
                     np.empty(0, dtype=np.int64), (self.ncols, self.m))

    def _solve_cold(self, lower: np.ndarray, upper: np.ndarray,
                    max_iter: int, deadline: float | None, pricing: str,
                    extra_iters: int = 0) -> tuple[RevisedOutcome, _State]:
        """Two-phase cold solve from the all-artificial basis."""
        status = np.empty(self.ncols, dtype=np.int8)
        for j in range(self.art_start):
            lo, up = lower[j], upper[j]
            if lo == up:
                status[j] = FIXED
            elif np.isfinite(lo):
                status[j] = AT_LB
            elif np.isfinite(up):
                status[j] = AT_UB
            else:
                status[j] = FREE_NB
        status[self.art_start:] = BASIC
        order = np.arange(self.art_start, self.ncols, dtype=np.int64)
        state = _State(self, status, order, lower, upper)

        # Artificial a_i carries the row residual; its sign decides which
        # one-sided box (and phase-1 cost) makes |a_i| the objective.
        x_n = state.nonbasic_values()
        resid = self.b - self.columns.dot(x_n)
        cost1 = np.zeros(self.ncols)
        for i in range(self.m):
            j = self.art_start + i
            if resid[i] >= 0.0:
                lower[j], upper[j], cost1[j] = 0.0, _INF, 1.0
            else:
                lower[j], upper[j], cost1[j] = -_INF, 0.0, -1.0
        state.binv = np.eye(self.m)
        state.x_b = resid.copy()

        p1_tol = _TOL * max(1.0, float(np.max(np.abs(cost1))))
        status1, iters1 = self._primal(state, cost1, max_iter, deadline,
                                       p1_tol, pricing)
        total = extra_iters + iters1
        if status1 is SolveStatus.LIMIT:
            return self._finalize(state, SolveStatus.LIMIT, total), state
        phase1_obj = float(cost1 @ state.full_x())
        if phase1_obj > 1e-7 * max(1.0, float(np.max(np.abs(self.b)))):
            return self._finalize(state, SolveStatus.INFEASIBLE, total), state

        # Lock every artificial to [0, 0]; still-basic ones ride along at
        # zero level (no row dropping needed — the eta machinery keeps
        # the basis square either way).
        lower[self.art_start:] = 0.0
        upper[self.art_start:] = 0.0
        art_nonbasic = state.status[self.art_start:] != BASIC
        state.status[self.art_start:][art_nonbasic] = FIXED

        status2, iters2 = self._primal(state, self.cost, max_iter, deadline,
                                       self.dj_tol, pricing)
        if status1 is SolveStatus.UNBOUNDED:
            status2 = SolveStatus.LIMIT  # numerically impossible; be safe
        return self._finalize(state, status2, total + iters2), state

    def _finalize(self, state: _State, status: SolveStatus,
                  iterations: int, warm_used: bool = False) -> RevisedOutcome:
        basis = Basis(state.status.copy(), state.order.copy(),
                      (self.ncols, self.m))
        if status is SolveStatus.OPTIMAL:
            # Canonical final evaluation: refactorize and recompute both
            # the point and the duals from the factor alone, so the
            # reported numbers depend only on the final basis — not on
            # the pivot path (warm and cold runs that reach the same
            # basis report bit-identical solutions).
            if state.refactor():
                state.compute_xb()
            x_full = state.full_x()
            objective = float(self.cost @ x_full)
            y = state.btran(self.cost[state.order])
            reduced = self.cost - self.columns.t_dot(y)
            result = SimplexResult(SolveStatus.OPTIMAL, objective,
                                   x_full[:self.n], iterations)
            return RevisedOutcome(result, basis, warm_used, reduced)
        if status is SolveStatus.UNBOUNDED:
            result = SimplexResult(SolveStatus.UNBOUNDED, -_INF,
                                   iterations=iterations)
        else:
            result = SimplexResult(status, iterations=iterations)
        return RevisedOutcome(result, basis, warm_used)

    def _flush_counters(self, states: list[_State],
                        outcome: RevisedOutcome) -> None:
        # An abandoned warm attempt and the cold solve that replaced it
        # both did real FTRAN/BTRAN work, so every state is flushed.
        observe.add("solver.revised.pivots", outcome.result.iterations)
        for state in states:
            observe.add("solver.revised.ftran", state.ftran_count)
            observe.add("solver.revised.btran", state.btran_count)
            observe.add("solver.revised.refactor", state.refactor_count)
        if outcome.warm_used:
            observe.add("solver.revised.warm_solves")
            observe.add("solver.revised.warm_pivots",
                        outcome.result.iterations)


def _unit(m: int, row: int) -> np.ndarray:
    e = np.zeros(m)
    e[row] = 1.0
    return e


def solve_lp_revised(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
                     bounds=None, max_iter: int = 20000,
                     time_limit_s: float | None = None,
                     warm: Basis | None = None,
                     pricing: str = "dantzig"
                     ) -> tuple[SimplexResult, Basis]:
    """One-shot convenience wrapper matching :func:`simplex.solve_lp`.

    Returns the result plus the final :class:`Basis` so callers chaining
    related solves (deadline sweeps) can warm-start the next one.
    """
    problem = RevisedProblem(c, a_ub, b_ub, a_eq, b_eq, bounds)
    outcome = problem.solve(warm=warm, max_iter=max_iter,
                            time_limit_s=time_limit_s, pricing=pricing)
    return outcome.result, outcome.basis
