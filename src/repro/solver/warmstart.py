"""Per-sweep warm-start state: basis snapshots and shared pseudocosts.

A deadline sweep solves a chain of closely related MILPs: same workload
and mode table, deadline loosening step by step.  The optimal basis of
one deadline's LP relaxation is a few dual pivots away from the next
deadline's, and the branching behaviour of the binaries (pseudocosts)
transfers across the §5.3 multidata categories of the same workload.
This module is the hand-off point: the sweep runtime keys entries by the
experiment's ``shared_id`` so consecutive deadlines of the same
(workload, category, seed, table, capacitance) line find each other.

Everything here is *ephemeral per-sweep execution state* — like the
simulator fastpath knob, it is deliberately excluded from cache keys and
from anything serialized into ``results.jsonl``.  Warm starts change how
fast a solve converges, never what it converges to (and the incumbent
polish in :mod:`repro.solver.branch_bound` makes even the float bits
independent of the pivot path).  Dropping the registry at any point is
always safe; ``run_sweep`` resets it at the start of every run so
resumed and cold sweeps start from the same (empty) state.

Parallel sweeps (``--jobs N``) get per-worker registries for free: each
pool worker process has its own module instance.
"""

from __future__ import annotations

import numpy as np

from repro.solver.revised import Basis


class PseudocostStore:
    """Per-variable branching pseudocosts, averaged over observations.

    ``update(j, direction, degradation, frac)`` records the objective
    degradation per unit of fractionality observed when branching
    variable ``j`` down (0) or up (1); ``score(j, frac)`` combines both
    directions into the usual product score for selecting the branching
    variable.  Unobserved variables fall back to the average observed
    pseudocost, and a store with no history at all scores uniformly —
    reducing to most-fractional branching.
    """

    def __init__(self) -> None:
        self._sums: dict[tuple[int, int], float] = {}
        self._counts: dict[tuple[int, int], int] = {}

    def update(self, var: int, direction: int, degradation: float,
               frac: float) -> None:
        if frac <= 1e-12 or not np.isfinite(degradation):
            return
        key = (var, direction)
        self._sums[key] = self._sums.get(key, 0.0) + max(degradation, 0.0) / frac
        self._counts[key] = self._counts.get(key, 0) + 1

    def _cost(self, var: int, direction: int) -> float:
        key = (var, direction)
        if key in self._counts:
            return self._sums[key] / self._counts[key]
        total = sum(self._counts.values())
        if total == 0:
            return 1.0
        return sum(self._sums.values()) / total

    def score(self, var: int, frac: float) -> float:
        down = self._cost(var, 0) * frac
        up = self._cost(var, 1) * (1.0 - frac)
        return max(down, 1e-12) * max(up, 1e-12)

    @property
    def observations(self) -> int:
        return sum(self._counts.values())


class WarmStartRegistry:
    """Keyed hand-off of bases and pseudocosts between related solves."""

    def __init__(self) -> None:
        self._bases: dict[str, Basis] = {}
        self._pseudocosts: dict[str, PseudocostStore] = {}
        self.basis_hits = 0
        self.basis_misses = 0

    def get_basis(self, key: str) -> Basis | None:
        basis = self._bases.get(key)
        if basis is None:
            self.basis_misses += 1
            return None
        self.basis_hits += 1
        return basis.copy()

    def put_basis(self, key: str, basis: Basis) -> None:
        self._bases[key] = basis.copy()

    def pseudocosts(self, key: str) -> PseudocostStore:
        """The (created-on-demand) shared pseudocost store for ``key``."""
        store = self._pseudocosts.get(key)
        if store is None:
            store = self._pseudocosts[key] = PseudocostStore()
        return store

    def reset(self) -> None:
        self._bases.clear()
        self._pseudocosts.clear()
        self.basis_hits = 0
        self.basis_misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "bases": len(self._bases),
            "pseudocost_stores": len(self._pseudocosts),
            "basis_hits": self.basis_hits,
            "basis_misses": self.basis_misses,
        }


_registry = WarmStartRegistry()


def registry() -> WarmStartRegistry:
    """The process-local registry (one per pool worker)."""
    return _registry


def reset() -> None:
    _registry.reset()
