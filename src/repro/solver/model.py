"""An AMPL-like modelling layer for linear and mixed-integer programs.

The paper expresses its DVS formulation in AMPL and solves it with CPLEX.
This module plays AMPL's role: it lets the formulation code build variables,
linear expressions and constraints symbolically, then compiles the model to
matrix form for whichever backend solves it (native simplex/branch-and-bound
or scipy's HiGHS).

Only *linear* models are supported; multiplying two expressions that both
contain variables raises :class:`~repro.errors.ModelError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import observe
from repro.errors import ModelError
from repro.solver import engine
from repro.solver.solution import Solution, SolveStatus

_INF = float("inf")


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Variables are created through :meth:`Model.add_var` /
    :meth:`Model.add_binary`; they are hashable and usable directly in
    arithmetic (``2 * x + y <= 5``).
    """

    name: str
    index: int
    lb: float
    ub: float
    is_integer: bool

    def __add__(self, other):
        return LinExpr.from_var(self) + other

    def __radd__(self, other):
        return LinExpr.from_var(self) + other

    def __sub__(self, other):
        return LinExpr.from_var(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_var(self)) + other

    def __mul__(self, coef):
        return LinExpr.from_var(self) * coef

    def __rmul__(self, coef):
        return LinExpr.from_var(self) * coef

    def __neg__(self):
        return LinExpr.from_var(self) * -1.0

    def __le__(self, other):
        return LinExpr.from_var(self) <= other

    def __ge__(self, other):
        return LinExpr.from_var(self) >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Variable):
            return self is other
        return LinExpr.from_var(self) == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A linear expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0):
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @classmethod
    def from_var(cls, var: Variable) -> "LinExpr":
        return cls({var: 1.0})

    @classmethod
    def coerce(cls, value) -> "LinExpr":
        """Convert a number, Variable or LinExpr into a LinExpr."""
        if isinstance(value, LinExpr):
            return value.copy()
        if isinstance(value, Variable):
            return cls.from_var(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return cls(constant=float(value))
        raise ModelError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    def add_term(self, var: Variable, coef: float) -> None:
        """Accumulate ``coef * var`` in place (fast path for builders)."""
        self.terms[var] = self.terms.get(var, 0.0) + float(coef)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        result = self.copy()
        other = LinExpr.coerce(other)
        for var, coef in other.terms.items():
            result.add_term(var, coef)
        result.constant += other.constant
        return result

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        return self.__add__(LinExpr.coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coef) -> "LinExpr":
        if isinstance(coef, (Variable, LinExpr)):
            raise ModelError("model is linear: cannot multiply two variable expressions")
        coef = float(coef)
        return LinExpr({v: c * coef for v, c in self.terms.items()}, self.constant * coef)

    def __rmul__(self, coef) -> "LinExpr":
        return self.__mul__(coef)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __truediv__(self, denom) -> "LinExpr":
        return self * (1.0 / float(denom))

    # -- comparisons build constraints --------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.coerce(other), Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.coerce(other), Sense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - LinExpr.coerce(other), Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def value(self, assignment: Sequence[float]) -> float:
        """Evaluate the expression at a variable-value vector."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment[var.index]
        return total

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers without quadratic blowup.

    ``sum()`` over LinExprs copies the accumulator at every step; this helper
    accumulates in place and is the recommended way to build big objectives.
    """
    total = LinExpr()
    for item in items:
        item = LinExpr.coerce(item)
        for var, coef in item.terms.items():
            total.add_term(var, coef)
        total.constant += item.constant
    return total


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` (rhs folded into expr)."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``terms <sense> rhs``."""
        return -self.expr.constant

    def violation(self, assignment: Sequence[float]) -> float:
        """Nonnegative violation magnitude at a candidate point."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)


class Model:
    """A mixed-integer linear program under construction.

    The model is always a *minimization*; call :meth:`maximize` to negate.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()

    # -- construction --------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = _INF,
        integer: bool = False,
    ) -> Variable:
        """Add a continuous (default) or general-integer variable."""
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ModelError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name=name, index=len(self.variables), lb=float(lb), ub=float(ub), is_integer=integer)
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Add a 0/1 variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects an expression comparison such as "
                "`x + y <= 3` (a trivially true/false bool means both sides "
                "were constants)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr) -> None:
        """Set the (minimization) objective."""
        self.objective = LinExpr.coerce(expr)

    def maximize(self, expr) -> None:
        """Set a maximization objective (stored negated)."""
        self.objective = LinExpr.coerce(expr) * -1.0

    @property
    def num_integer(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    # -- compilation ---------------------------------------------------------

    def to_arrays(self):
        """Compile to matrix form.

        Returns:
            tuple ``(c, A_ub, b_ub, A_eq, b_eq, bounds, integrality, c0)``
            where ``bounds`` is an ``(n, 2)`` array and ``integrality`` a
            boolean vector; ``c0`` is the objective's constant offset.
        """
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] += coef

        ub_rows: list[tuple[LinExpr, float]] = []
        eq_rows: list[tuple[LinExpr, float]] = []
        for con in self.constraints:
            if con.sense is Sense.LE:
                ub_rows.append((con.expr, con.rhs))
            elif con.sense is Sense.GE:
                ub_rows.append((con.expr * -1.0, -con.rhs))
            else:
                eq_rows.append((con.expr, con.rhs))

        def build(rows: list[tuple[LinExpr, float]]):
            mat = np.zeros((len(rows), n))
            rhs = np.zeros(len(rows))
            for i, (expr, b) in enumerate(rows):
                for var, coef in expr.terms.items():
                    mat[i, var.index] += coef
                rhs[i] = b
            return mat, rhs

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        bounds = np.array([[v.lb, v.ub] for v in self.variables]) if n else np.empty((0, 2))
        integrality = np.array([v.is_integer for v in self.variables], dtype=bool)
        return c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, self.objective.constant

    # -- solving ---------------------------------------------------------------

    def solve(self, backend: str = "auto", relax: bool = False, **options) -> Solution:
        """Solve the model.

        Args:
            backend: ``"auto"`` (scipy when importable, else native),
                ``"scipy"`` or ``"native"``.
            relax: solve the LP relaxation (integrality dropped) instead of
                the full MILP — the verification oracles use this to
                cross-check backends on the continuous problem.
            **options: forwarded to the backend (e.g. ``time_limit``,
                ``node_limit`` for the native branch-and-bound).

        Returns:
            a :class:`~repro.solver.solution.Solution`; variable values are
            indexed by ``Variable.index`` and readable via :meth:`value_of`.
        """
        if backend not in ("auto", "scipy", "native"):
            raise ModelError(f"unknown backend {backend!r}")
        engine.check_fault_budget()
        # An externally constructed integral incumbent (x0, objective) —
        # the continuous-bound round-up.  Only the native branch-and-bound
        # can consume it; scipy solves from scratch, so it is popped here
        # rather than forwarded.  An execution hint: it never changes the
        # optimum, only how fast the search proves it.
        incumbent = options.pop("incumbent", None)
        with observe.span("solver.solve", backend=backend, relax=relax,
                          variables=len(self.variables),
                          constraints=len(self.constraints)) as sp:
            if backend in ("auto", "scipy"):
                try:
                    from repro.solver import scipy_backend

                    solution = scipy_backend.solve_model(self, relax=relax, **options)
                    solution.wall_time = sp.elapsed_s
                    sp.set(status=solution.status.name, used="scipy")
                    _record_solve_metrics(solution)
                    return solution
                except ImportError:
                    if backend == "scipy":
                        raise
            solution = self._solve_native(relax=relax, incumbent=incumbent,
                                          **options)
            solution.wall_time = sp.elapsed_s
            sp.set(status=solution.status.name, used="native")
            _record_solve_metrics(solution)
        return solution

    def _solve_native(self, relax: bool = False, incumbent=None,
                      **options) -> Solution:
        from repro.solver import engine as engine_mod
        from repro.solver.branch_bound import BranchBoundOptions, solve_milp
        from repro.solver.simplex import solve_lp

        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, c0 = self.to_arrays()
        lp_time_limit = options.pop("lp_time_limit", None) or options.get("time_limit")
        # Warm-start plumbing: both knobs are execution hints, popped
        # before the remaining options become BranchBoundOptions.
        solver_engine = options.pop("solver_engine", None)
        warm_key = options.pop("warm_key", None)
        if relax:
            integrality = np.zeros_like(integrality)
            incumbent = None  # an integral point does not bound the LP search
        if incumbent is not None:
            # The caller's objective includes the model's constant offset;
            # branch and bound works in the raw c·x space.
            x0, obj0 = incumbent
            incumbent = (x0, float(obj0) - c0)
        if integrality.any():
            warm_basis = None
            pseudocosts = None
            if warm_key is not None:
                from repro.solver import warmstart

                reg = warmstart.registry()
                pseudocosts = reg.pseudocosts(warm_key)
                if engine_mod.resolve(solver_engine) == "revised":
                    warm_basis = reg.get_basis(warm_key)
            bb_options = BranchBoundOptions(**options)
            result = solve_milp(c, a_ub, b_ub, a_eq, b_eq, bounds, integrality,
                                options=bb_options, engine=solver_engine,
                                warm_start=warm_basis, pseudocosts=pseudocosts,
                                incumbent=incumbent)
            if warm_key is not None and result.root_basis is not None and result.ok:
                warmstart.registry().put_basis(warm_key, result.root_basis)
            return Solution(
                status=result.status,
                objective=result.objective + c0 if np.isfinite(result.objective) else result.objective,
                x=result.x,
                backend="native",
                iterations=result.iterations,
                nodes=result.nodes,
                best_bound=(result.best_bound + c0
                            if np.isfinite(result.best_bound) else None),
            )
        lp = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds,
                      time_limit_s=lp_time_limit, engine=solver_engine)
        objective = lp.objective + c0 if np.isfinite(lp.objective) else lp.objective
        return Solution(
            status=lp.status,
            objective=objective,
            x=lp.x,
            backend="native",
            iterations=lp.iterations,
            best_bound=objective if lp.status is SolveStatus.OPTIMAL else None,
        )

    def value_of(self, item, solution: Solution) -> float:
        """Read a variable's or expression's value out of a solution."""
        if not solution.ok and solution.x.size == 0:
            raise ModelError("solution holds no point to evaluate")
        if isinstance(item, Variable):
            return float(solution.x[item.index])
        return LinExpr.coerce(item).value(solution.x)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={len(self.variables)}, "
            f"int={self.num_integer}, cons={len(self.constraints)})"
        )


def _record_solve_metrics(solution: Solution) -> None:
    # Backend-agnostic effort counters; the native simplex / B&B add
    # finer-grained ones (solver.simplex.*, solver.bnb.*) themselves.
    observe.add("solver.solves")
    if solution.iterations:
        observe.add("solver.iterations", solution.iterations)
    if solution.nodes:
        observe.add("solver.nodes", solution.nodes)
