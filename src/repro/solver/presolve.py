"""LP/MILP presolve reductions.

Standard cheap reductions applied before the native solver sees the
matrices:

* **empty rows** — ``0 <= b`` rows are dropped (or declared infeasible);
* **singleton inequality rows** — ``a·x_j <= b`` tightens x_j's bound and
  drops the row;
* **fixed variables** — ``lb == ub`` substitutes the constant through
  the constraint right-hand sides and the objective.

The reductions are exact: :func:`presolve` returns a
:class:`PresolveResult` that reconstructs a full solution vector (and
the original objective value) from the reduced problem's solution.
Equivalence against the unreduced solve is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InfeasibleError

_TOL = 1e-9


@dataclass
class PresolveResult:
    """Reduced problem plus the bookkeeping to undo the reduction."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: np.ndarray
    integrality: np.ndarray
    objective_offset: float
    kept_columns: np.ndarray  # indices of surviving variables
    fixed_values: dict[int, float]  # original index -> value
    rows_dropped: int = 0

    @property
    def num_original(self) -> int:
        return len(self.kept_columns) + len(self.fixed_values)

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        """Lift a reduced-space solution back to the original variables."""
        x = np.zeros(self.num_original)
        x[self.kept_columns] = x_reduced
        for index, value in self.fixed_values.items():
            x[index] = value
        return x


def presolve(c, a_ub, b_ub, a_eq, b_eq, bounds, integrality=None) -> PresolveResult:
    """Apply the reductions; raises :class:`InfeasibleError` on a provable
    contradiction (empty row with negative slack, crossed bounds)."""
    c = np.asarray(c, dtype=float).copy()
    n = len(c)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n).copy() if np.size(a_ub) else np.empty((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel().copy()
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n).copy() if np.size(a_eq) else np.empty((0, n))
    b_eq = np.asarray(b_eq, dtype=float).ravel().copy()
    bounds = np.asarray(bounds, dtype=float).reshape(n, 2).copy()
    integrality = (
        np.zeros(n, dtype=bool) if integrality is None else np.asarray(integrality, dtype=bool).copy()
    )
    rows_dropped = 0

    # --- singleton inequality rows become bounds -----------------------------
    keep_rows = np.ones(len(b_ub), dtype=bool)
    for row in range(len(b_ub)):
        nonzero = np.nonzero(np.abs(a_ub[row]) > _TOL)[0]
        if len(nonzero) == 0:
            if b_ub[row] < -_TOL:
                raise InfeasibleError(f"empty row {row} with rhs {b_ub[row]}")
            keep_rows[row] = False
            rows_dropped += 1
        elif len(nonzero) == 1:
            j = nonzero[0]
            coef = a_ub[row, j]
            limit = b_ub[row] / coef
            if coef > 0:
                bounds[j, 1] = min(bounds[j, 1], limit)
            else:
                bounds[j, 0] = max(bounds[j, 0], limit)
            keep_rows[row] = False
            rows_dropped += 1
    a_ub = a_ub[keep_rows]
    b_ub = b_ub[keep_rows]

    # Integer variables: round the tightened bounds inward.
    for j in np.nonzero(integrality)[0]:
        if np.isfinite(bounds[j, 0]):
            bounds[j, 0] = np.ceil(bounds[j, 0] - _TOL)
        if np.isfinite(bounds[j, 1]):
            bounds[j, 1] = np.floor(bounds[j, 1] + _TOL)

    if np.any(bounds[:, 0] > bounds[:, 1] + _TOL):
        raise InfeasibleError("presolve crossed a variable's bounds")

    # --- fixed variables substituted out --------------------------------------
    fixed_mask = np.isfinite(bounds[:, 0]) & (
        np.abs(bounds[:, 1] - bounds[:, 0]) <= _TOL
    )
    fixed_values = {int(j): float(bounds[j, 0]) for j in np.nonzero(fixed_mask)[0]}
    kept = np.nonzero(~fixed_mask)[0]
    offset = 0.0
    if fixed_values:
        fixed_idx = np.array(sorted(fixed_values), dtype=int)
        fixed_vec = np.array([fixed_values[j] for j in fixed_idx])
        if len(b_ub):
            b_ub = b_ub - a_ub[:, fixed_idx] @ fixed_vec
        if len(b_eq):
            b_eq = b_eq - a_eq[:, fixed_idx] @ fixed_vec
        offset = float(c[fixed_idx] @ fixed_vec)
    a_ub = a_ub[:, kept] if a_ub.size else np.empty((len(b_ub), len(kept)))
    a_eq = a_eq[:, kept] if a_eq.size else np.empty((len(b_eq), len(kept)))

    # Re-check empty inequality rows created by substitution.
    if len(b_ub):
        keep_rows = np.ones(len(b_ub), dtype=bool)
        for row in range(len(b_ub)):
            if not np.any(np.abs(a_ub[row]) > _TOL):
                if b_ub[row] < -_TOL:
                    raise InfeasibleError("substitution exposed an infeasible row")
                keep_rows[row] = False
                rows_dropped += 1
        a_ub = a_ub[keep_rows]
        b_ub = b_ub[keep_rows]
    if len(b_eq):
        for row in range(len(b_eq)):
            if not np.any(np.abs(a_eq[row]) > _TOL) and abs(b_eq[row]) > 1e-7:
                raise InfeasibleError("substitution exposed an infeasible equality")

    return PresolveResult(
        c=c[kept],
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds[kept],
        integrality=integrality[kept],
        objective_offset=offset,
        kept_columns=kept,
        fixed_values=fixed_values,
        rows_dropped=rows_dropped,
    )
