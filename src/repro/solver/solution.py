"""Solution containers shared by every solver backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of an LP/MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"

    @property
    def ok(self) -> bool:
        """True when a proven-optimal solution is available."""
        return self is SolveStatus.OPTIMAL


@dataclass
class Solution:
    """Result of solving a :class:`repro.solver.model.Model`.

    Attributes:
        status: solver outcome.
        objective: objective value at the incumbent (``nan`` if none).
        x: variable values in model variable order (empty if none).
        backend: name of the backend that produced the solution.
        iterations: simplex iterations (native) or backend-reported count.
        nodes: branch-and-bound nodes explored (0 for pure LPs).
        wall_time: solve time in seconds.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    backend: str = "native"
    iterations: int = 0
    nodes: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status.ok
