"""Solution containers shared by every solver backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of an LP/MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"
    #: A feasible point produced without any optimality proof — the
    #: status of heuristic (fallback-tier) solutions.  Like ``LIMIT`` it
    #: is not ``ok``: certificates and anytime callers must opt in.
    FEASIBLE = "feasible"

    @property
    def ok(self) -> bool:
        """True when a proven-optimal solution is available."""
        return self is SolveStatus.OPTIMAL

    @property
    def has_point(self) -> bool:
        """True when the solution *may* carry a usable incumbent."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.LIMIT, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a :class:`repro.solver.model.Model`.

    Attributes:
        status: solver outcome.
        objective: objective value at the incumbent (``nan`` if none).
        x: variable values in model variable order (empty if none).
        backend: name of the backend that produced the solution.
        iterations: simplex iterations (native) or backend-reported count.
        nodes: branch-and-bound nodes explored (0 for pure LPs).
        wall_time: solve time in seconds.
        best_bound: tightest proven lower bound on the optimum (for a
            minimization), when the backend reports one.  Equals the
            objective for a proven-optimal solve; for a ``LIMIT``
            incumbent it prices the remaining optimality gap.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    backend: str = "native"
    iterations: int = 0
    nodes: int = 0
    wall_time: float = 0.0
    best_bound: float | None = None

    @property
    def ok(self) -> bool:
        return self.status.ok

    @property
    def has_incumbent(self) -> bool:
        """True when a feasible point is attached (optimal or not)."""
        return self.status.has_point and self.x.size > 0

    def optimality_gap(self) -> float | None:
        """Relative gap between the incumbent and the proven bound.

        ``0.0`` for a proven optimum, ``None`` when no bound is known.
        """
        if self.status is SolveStatus.OPTIMAL:
            return 0.0
        if self.best_bound is None or not self.has_incumbent:
            return None
        import math

        if not math.isfinite(self.best_bound):
            return None
        gap = self.objective - self.best_bound
        return max(0.0, gap / max(1.0, abs(self.objective)))
