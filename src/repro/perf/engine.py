"""Fast-path engine: compiled program cache and per-mode delta tables.

One :class:`ProgramFast` holds everything the machine's dispatcher needs
to accelerate a (machine, program) pair:

* ``block_fns`` — label -> generated block function (mode-independent;
  see :mod:`repro.perf.blockc`);
* ``consts(mode)`` — label -> folded per-execution delta tuple, built
  lazily per mode with the machine's own energy/cycle constants so the
  folded floats are bitwise what the interpreter would accumulate;
* ``loop_fn(header, mode)`` — generated steady-state loop function
  (:mod:`repro.perf.loopc`), compiled lazily per (loop, mode);
* ``loop_headers_disjoint(schedule)`` — the headers whose loops contain
  no scheduled edge (mode-sets must execute in the dispatcher, so such
  loops cannot be fast-forwarded).

Compilation is best-effort throughout: any block or loop that fails to
compile simply stays on the reference interpreter.  Instances are cached
per machine, keyed by program identity, and rebuilt if the machine's
configuration or mode table object changes.
"""

from __future__ import annotations

import os
import weakref

from repro.ir.instructions import OpClass
from repro.ir.loops import find_natural_loops
from repro.perf.blockc import compile_block, fold_block_consts
from repro.perf.loopc import compile_loop
from repro.simulator.energy import EnergyModel


def fastpath_disabled_env() -> bool:
    """True when ``$REPRO_NO_FASTPATH`` globally disables the fast path."""
    return os.environ.get("REPRO_NO_FASTPATH", "") not in ("", "0")


class ProgramFast:
    """Compiled fast-path state for one (machine, CFG) pair."""

    def __init__(self, machine, cfg) -> None:
        self.config = machine.config
        self.mode_table = machine.mode_table
        self.element_size = cfg.element_size
        _, block_lines = machine._decode(cfg)
        self.block_lines = block_lines
        self.blocks = {label: blk.instructions for label, blk in cfg.blocks.items()}

        self.block_fns: dict = {}
        for label, instrs in self.blocks.items():
            try:
                fn = compile_block(label, instrs, block_lines[label],
                                   self.config, self.element_size)
            except Exception:
                fn = None
            if fn is not None:
                self.block_fns[label] = fn

        self._energy = EnergyModel(self.config)
        self._consts: dict[int, dict] = {}
        self._loop_fns: dict = {}
        self._loop_bodies: dict[str, list[str]] = {}
        self.loop_edges: dict[str, frozenset] = {}
        try:
            loops = find_natural_loops(cfg)
        except Exception:
            loops = []
        for loop in loops:
            header = loop.header
            if header not in self.block_fns:
                continue
            if any(label not in self.block_fns for label in loop.blocks):
                continue
            body = [header] + [l for l in cfg.blocks
                               if l in loop.blocks and l != header]
            edges = set()
            for label in body:
                instrs = self.blocks[label]
                if not instrs:
                    continue
                for tgt in getattr(instrs[-1], "targets", tuple)():
                    if tgt in loop.blocks:
                        edges.add((label, tgt))
            self._loop_bodies[header] = body
            self.loop_edges[header] = frozenset(edges)

    def consts(self, mode: int) -> dict:
        """Label -> per-execution delta tuple for one mode (cached)."""
        table = self._consts.get(mode)
        if table is None:
            point = self.mode_table.points[mode]
            ct = point.cycle_time_s
            v = point.voltage
            op_energy = {cls: self._energy.op_energy_nj(cls, v) for cls in OpClass}
            table = {
                label: fold_block_consts(self.blocks[label],
                                         self.block_lines[label],
                                         self.config, ct, v, op_energy)
                for label in self.block_fns
            }
            self._consts[mode] = table
        return table

    def loop_fn(self, header: str, mode: int):
        """The loop function for (header, mode), or None (cached)."""
        key = (header, mode)
        if key in self._loop_fns:
            return self._loop_fns[key]
        fn = None
        body = self._loop_bodies.get(header)
        if body is not None:
            try:
                fn = compile_loop(header, body, self.blocks, self.block_lines,
                                  self.config, self.element_size,
                                  self.consts(mode))
            except Exception:
                fn = None
        self._loop_fns[key] = fn
        return fn

    def loop_headers_disjoint(self, schedule) -> frozenset:
        """Headers of loops none of whose internal edges are scheduled."""
        if not schedule:
            return frozenset(self.loop_edges)
        scheduled = set(schedule)
        return frozenset(
            header for header, edges in self.loop_edges.items()
            if not (edges & scheduled)
        )


def program_fast(machine, cfg) -> ProgramFast:
    """The cached :class:`ProgramFast` for (machine, cfg).

    The cache lives on the machine instance and keys programs by identity
    (CFGs are mutable and unhashable); a stale entry whose CFG was
    collected, or whose machine config/mode-table object changed, is
    rebuilt.
    """
    cache = machine.__dict__.setdefault("_perf_cache", {})
    entry = cache.get(id(cfg))
    if entry is not None:
        ref, pf = entry
        if (ref() is cfg and pf.config is machine.config
                and pf.mode_table is machine.mode_table):
            return pf
    pf = ProgramFast(machine, cfg)
    try:
        ref = weakref.ref(cfg)
    except TypeError:  # un-weakref-able CFG subclass: never cache-hit
        def ref():
            return None
    cache[id(cfg)] = (ref, pf)
    if len(cache) > 64:  # drop dead entries; bound per-machine growth
        for key in [k for k, (r, _) in cache.items() if r() is None]:
            del cache[key]
    return pf
