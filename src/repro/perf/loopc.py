"""Loop compiler: steady-state fast-forwarding of natural loops.

Once a loop's blocks are individually fast (see :mod:`repro.perf.blockc`),
the remaining per-iteration overhead is the machine's dispatcher: a dict
lookup, a call, a consts unpack and the edge bookkeeping per block.  For a
steady-state loop — back-edge returning to an already-seen (label, mode,
cache signature) — this module compiles the *entire* loop body into one
generated function: registers live in Python locals across iterations,
per-block deltas are committed inline (the identical float operations the
dispatcher performs, so totals stay bit-exact), and edge/path counts are
updated as the compiled control flow runs.  The dispatcher calls the loop
function once per loop *entry* and fast-forwards every remaining iteration
without returning to Python-interpreting the program.

Preconditions (checked by the dispatcher before entry): fast path active,
pending set empty, no outstanding miss, no trace callback, and no schedule
entry on any loop-internal edge (mode-sets must go through the
dispatcher).  Inside, every access must stay L1-resident; any miss — or
any Python exception — bails back to the dispatcher *at the failing
block*, with all previously committed state intact:

* each block's body runs under a ``try`` whose handler converts a mid-body
  failure into a clean bail (stores buffer until commit, register
  writeback is deferred, LRU refreshes are idempotent);
* a bail before the first committed block returns None so the caller falls
  back to the per-block path (otherwise a header whose residency check
  fails would re-enter the loop function forever).

The return protocol is ``(label, prev, next)``: ``next is None`` means
"resume the interpreter at ``label``" (bail); otherwise the loop exited
cleanly after executing ``label`` whose successor ``next`` leaves the loop
— the dispatcher then runs its shared edge tail (edge/path counts and any
scheduled mode-set) for that transition.
"""

from __future__ import annotations

from repro.perf.blockc import CODEGEN_GLOBALS, RegEnv, emit_block

#: Sentinel for loop registers that are defined only inside the loop and
#: may not have been assigned yet on a given invocation.  Such registers
#: are never read before being written (by construction — see
#: LoopRegEnv), so the sentinel can never flow into program values; it
#: only guards the exit writeback.
_UNDEF = object()

_LOOP_GLOBALS = dict(CODEGEN_GLOBALS)
_LOOP_GLOBALS["_UNDEF"] = _UNDEF


class LoopRegEnv(RegEnv):
    """Register naming scoped to a whole loop function.

    Canonical locals (``g<n>``) persist across blocks and iterations;
    within one block, writes go to temps and are bound to the canonical
    local only at the block's commit (a bail must leave registers as of
    the last completed block).

    A register read through its canonical local before any definition in
    the *same* block is ``strict``: it must exist at loop entry, so the
    prologue loads it with a plain dict access (KeyError = bail, nothing
    mutated yet).  Registers only ever defined-before-read start as the
    ``_UNDEF`` sentinel and are written back guarded.
    """

    def __init__(self) -> None:
        super().__init__()
        self.canon: dict[str, str] = {}
        self.strict: set[str] = set()
        self.loop_defs: set[str] = set()
        self._override: dict[str, str] = {}
        self._block_defs: dict[str, str] = {}

    def begin_block(self) -> None:
        self._override = {}
        self._block_defs = {}

    def canonical(self, reg: str) -> str:
        name = self.canon.get(reg)
        if name is None:
            name = f"g{len(self.canon)}"
            self.canon[reg] = name
        return name

    def read(self, reg: str) -> str:
        name = self._override.get(reg)
        if name is None:
            self.strict.add(reg)
            name = self.canonical(reg)
        return name

    def write(self, reg: str) -> str:
        name = self.temp()
        self._override[reg] = name
        self._block_defs[reg] = name
        self.loop_defs.add(reg)
        return name

    def commit_binds(self) -> list[tuple[str, str]]:
        """(canonical, temp) pairs for the current block's definitions."""
        return [(self.canonical(reg), t) for reg, t in self._block_defs.items()]


def _loop_live_in(body_labels, blocks):
    """Registers that may be read before definition, starting at the header.

    Classic backward liveness restricted to the loop subgraph (edges
    leaving the loop contribute nothing: the exit writeback publishes all
    definitions).  The header's live-in set is exactly the registers the
    loop prologue must load from the register file; everything else is
    defined before any possible read, so the ``_UNDEF`` sentinel can never
    flow into a computed value.
    """
    body_set = set(body_labels)
    gen = {}
    kill = {}
    succs = {}
    for label in body_labels:
        g: set[str] = set()
        k: set[str] = set()
        for instr in blocks[label]:
            for use in instr.uses():
                if use not in k:
                    g.add(use)
            d = instr.defs()
            if d is not None:
                k.add(d)
        gen[label] = g
        kill[label] = k
        term = blocks[label][-1] if blocks[label] else None
        targets = term.targets() if term is not None and term.is_terminator else ()
        succs[label] = [t for t in targets if t in body_set]
    live_in = {label: set(gen[label]) for label in body_labels}
    changed = True
    while changed:
        changed = False
        for label in body_labels:
            out: set[str] = set()
            for succ in succs[label]:
                out |= live_in[succ]
            new = gen[label] | (out - kill[label])
            if new != live_in[label]:
                live_in[label] = new
                changed = True
    return live_in[body_labels[0]]


def compile_loop(header, body_labels, blocks, block_lines, config,
                 element_size, consts):
    """Compile one natural loop for one mode.

    Args:
        header: loop header label (``body_labels[0]``).
        body_labels: loop body labels, header first, deterministic order.
        blocks: label -> instruction list (whole program).
        block_lines: label -> I-line byte addresses.
        config: machine configuration.
        element_size: program memory cell width.
        consts: label -> folded per-execution delta tuple *for the mode
            this loop function is being compiled for* (from
            :func:`repro.perf.blockc.fold_block_consts`).

    Returns:
        the loop function, or None when any body block is not compilable.
        Signature: ``fn(regs, cells, dsets, isets, acct, edge_counts,
        path_counts, st, prev)`` where ``st`` is the dispatcher's packed
        state list; see the module docstring for the return protocol.
    """
    body_set = set(body_labels)
    index = {label: i for i, label in enumerate(body_labels)}
    # In-loop predecessors per block (for static path-triple counters).
    in_preds: dict[str, list[str]] = {label: [] for label in body_labels}
    for label in body_labels:
        instrs = blocks[label]
        term = instrs[-1] if instrs else None
        if term is not None and term.is_terminator:
            for tgt in term.targets():
                if tgt in body_set:
                    in_preds[tgt].append(label)
    env = LoopRegEnv()
    emitted = {}
    for i, label in enumerate(body_labels):
        env.begin_block()
        eb = emit_block(blocks[label], block_lines[label], config.l1i,
                        config.l1d, element_size, env, "raise Bail",
                        "                ", uniq=str(i))
        if eb is None:
            return None
        emitted[label] = (eb, env.commit_binds())

    # In-body edges get default-arg key tuples plus local batch counters;
    # the dicts see a zero placeholder at first traversal (preserving the
    # reference's first-encounter insertion order) and one bulk update at
    # function exit.
    edge_ids: dict[tuple[str, str], int] = {}

    def edge_id(src: str, dst: str) -> int:
        key = (src, dst)
        k = edge_ids.get(key)
        if k is None:
            k = len(edge_ids)
            edge_ids[key] = k
        return k

    lines: list[str] = []
    defaults: list[str] = []

    for i, label in enumerate(body_labels):
        eb, binds = emitted[label]
        dt, de, n_i, n_dep, n_cc, n_ic, n_d, n_l = consts[label]
        defaults.append(f"_DT{i}={dt!r}")
        defaults.append(f"_DE{i}={de!r}")
        cond = "if" if i == 0 else "elif"
        lines.append(f"        {cond} _lbl == {i}:")
        lines.append("            try:")
        lines.extend(eb.body)
        lines.append("            except Exception:")
        lines.append(f"                _res = ({label!r}, _prev, None) if _nb else None")
        lines.append("                break")
        for idx_local, val_local in eb.stores:
            lines.append(f"            _cells[{idx_local}] = {val_local}")
        for gname, tname in binds:
            lines.append(f"            {gname} = {tname}")
        # Accounting commit: the same operation sequence the dispatcher
        # performs when replaying this block's delta.
        lines.append(f"            _now = _now + _DT{i}")
        lines.append(f"            _c{i} += 1")
        lines.append(f"            _s = _ts{i}; _t = _s + _DT{i}")
        lines.append(
            f"            _tc{i} += (_s - _t) + _DT{i} if _s >= _DT{i}"
            f" else (_DT{i} - _t) + _s"
        )
        lines.append(f"            _ts{i} = _t")
        lines.append(f"            _s = _es{i}; _t = _s + _DE{i}")
        lines.append(
            f"            _ec{i} += (_s - _t) + _DE{i} if _s >= _DE{i}"
            f" else (_DE{i} - _t) + _s"
        )
        lines.append(f"            _es{i} = _t")
        lines.append(
            f"            _ni += {n_i}; _dep += {n_dep}; _cc += {n_cc};"
            f" _ic += {n_ic}; _dh += {n_d}; _ih += {n_l}"
        )
        lines.append("            _nb += 1")
        if i == 0:
            lines.append("            _it += 1")

        def transition(ind: str, tgt: str) -> list[str]:
            if tgt in body_set:
                k = edge_id(label, tgt)
                out = [
                    f"{ind}if not _ne{k}:",
                    f"{ind}    _EC.setdefault(_E{k}, 0)",
                    f"{ind}_ne{k} += 1",
                ]
                # Path triple: the previous block is one of the loop-internal
                # predecessors (a static literal → a plain counter) except on
                # the first iteration, where it is whatever entered the loop.
                preds = in_preds[label]
                for j, pred in enumerate(preds):
                    kw = "if" if j == 0 else "elif"
                    out.append(f"{ind}{kw} _prev == {pred!r}:")
                    out.append(f"{ind}    if not _np{k}_{j}:")
                    out.append(f"{ind}        _PC.setdefault(_P{k}_{j}, 0)")
                    out.append(f"{ind}    _np{k}_{j} += 1")
                out.append(f"{ind}else:" if preds else f"{ind}if 1:")
                out.append(f"{ind}    _p = (_prev, {label!r}, {tgt!r})")
                out.append(f"{ind}    _PC[_p] = _PC.get(_p, 0) + 1")
                out.extend([
                    f"{ind}_prev = {label!r}",
                    f"{ind}if _ni > _ms:",
                    f"{ind}    _res = ({tgt!r}, _prev, None)",
                    f"{ind}    break",
                    f"{ind}_lbl = {index[tgt]}",
                    f"{ind}continue",
                ])
                return out
            return [
                f"{ind}_res = ({label!r}, _prev, {tgt!r})",
                f"{ind}break",
            ]

        term = eb.term
        if term[0] == "jump":
            lines.extend(transition("            ", term[1]))
        else:
            _, cond_local, if_true, if_false = term
            lines.append(f"            if {cond_local}:")
            lines.extend(transition("                ", if_true))
            lines.append("            else:")
            lines.extend(transition("                ", if_false))

    counter_inits: list[str] = []
    flushes: list[str] = []
    for (src, dst), k in edge_ids.items():
        defaults.append(f"_E{k}=({src!r}, {dst!r})")
        counter_inits.append(f"    _ne{k} = 0")
        flushes.append(f"    if _ne{k}:")
        flushes.append(f"        _EC[_E{k}] = _EC.get(_E{k}, 0) + _ne{k}")
        for j, pred in enumerate(in_preds[src]):
            defaults.append(f"_P{k}_{j}=({pred!r}, {src!r}, {dst!r})")
            counter_inits.append(f"    _np{k}_{j} = 0")
            flushes.append(f"    if _np{k}_{j}:")
            flushes.append(
                f"        _PC[_P{k}_{j}] = _PC.get(_P{k}_{j}, 0) + _np{k}_{j}"
            )

    header_lines = [
        "def _loop(_regs, _cells, _DS, _IS, _acct, _EC, _PC, _st, _prev,",
        "          " + ", ".join(defaults) + ("," if defaults else "") + "):",
        "    _now = _st[0]; _ni = _st[1]; _dep = _st[2]; _cc = _st[3]",
        "    _ic = _st[4]; _dh = _st[5]; _ih = _st[6]; _ms = _st[7]",
        "    _it = 0; _nb = 0; _res = None",
    ]
    header_lines.extend(counter_inits)
    for i, label in enumerate(body_labels):
        header_lines.append(f"    _a{i} = _acct[{label!r}]")
        header_lines.append(
            f"    _c{i} = _a{i}[0]; _ts{i} = _a{i}[1]; _tc{i} = _a{i}[2];"
            f" _es{i} = _a{i}[3]; _ec{i} = _a{i}[4]"
        )
    # Register prologue: true loop-level live-ins load strictly (KeyError
    # = clean bail, nothing committed yet); registers always defined
    # before any possible read start as the sentinel.
    strict = _loop_live_in(body_labels, blocks) & set(env.canon)
    for reg in sorted(strict):
        header_lines.append(f"    {env.canonical(reg)} = _regs[{reg!r}]")
    for reg in sorted(set(env.canon) - strict):
        header_lines.append(f"    {env.canonical(reg)} = _UNDEF")
    header_lines.append("    _lbl = 0")
    header_lines.append("    while True:")

    footer = [
        "    if _res is None:",
        "        return None",
    ]
    footer.extend(flushes)
    footer.extend([
        "    _st[0] = _now; _st[1] = _ni; _st[2] = _dep; _st[3] = _cc",
        "    _st[4] = _ic; _st[5] = _dh; _st[6] = _ih",
        "    _st[8] = _it; _st[9] = _nb",
    ])
    for i, label in enumerate(body_labels):
        footer.append(
            f"    _a{i}[0] = _c{i}; _a{i}[1] = _ts{i}; _a{i}[2] = _tc{i};"
            f" _a{i}[3] = _es{i}; _a{i}[4] = _ec{i}"
        )
    for reg in sorted(env.loop_defs):
        g = env.canonical(reg)
        if reg in strict:
            footer.append(f"    _regs[{reg!r}] = {g}")
        else:
            footer.append(f"    if {g} is not _UNDEF:")
            footer.append(f"        _regs[{reg!r}] = {g}")
    footer.append("    return _res")

    source = "\n".join(header_lines + lines + footer)
    namespace = dict(_LOOP_GLOBALS)
    exec(compile(source, f"<perf:loop:{header}>", "exec"), namespace)
    fn = namespace["_loop"]
    fn.__perf_source__ = source  # debugging aid
    return fn
