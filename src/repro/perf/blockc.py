"""Block compiler: generated Python fast paths for basic blocks.

A decoded block whose executions the fast path may replay is compiled to a
small generated Python function that

1. validates the block's *cache-residency signature* inline — every
   I-line the block spans and every D-line it touches must hit in L1 —
   bailing out to the reference interpreter otherwise;
2. re-executes only the data arithmetic (registers as locals, exactly the
   :mod:`repro.ir.interp` operator semantics); and
3. returns the successor label.

Everything else about the execution — Δtime, Δenergy, Δcycle-classes,
Δcache-hit counters — is a constant of (block, mode) under the fast path's
preconditions (empty pending set, no outstanding miss, all-L1-resident),
so it is folded once per mode by :func:`fold_block_consts` replicating the
interpreter's float-accumulation order bit for bit, and replayed
arithmetically by the machine's dispatcher.

Safety of a mid-block bail-out (the interpreter then re-executes the block
from scratch) rests on three invariants of the generated code:

* L1-LRU refreshes performed before the bail are idempotent — re-executing
  the same hit sequence leaves the final LRU order identical, and hit
  *counters* are only updated on commit (by the dispatcher) or by the
  interpreter;
* stores are buffered and only written to memory at commit, with later
  loads in the same block forwarding from the buffer (the static
  instruction order is known at compile time);
* register writeback happens at commit only.

Any Python exception inside a generated function (undefined register,
division by zero, ...) is treated as a bail by the caller; the reference
interpreter then re-executes the block and raises the proper
:class:`~repro.errors.SimulationError` with exact accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.ir.instructions import (
    BinOp,
    Branch,
    Const,
    Jump,
    Load,
    Move,
    OpClass,
    Ret,
    Store,
    UnOp,
)


class Bail(Exception):
    """Raised inside generated loop code to abandon the fast path."""


def _int_div(a, b):
    a, b = int(a), int(b)
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b):
    a, b = int(a), int(b)
    if b == 0:
        raise SimulationError("integer modulo by zero")
    return a - _int_div(a, b) * b


#: Expression templates mirroring repro.ir.interp's operator tables
#: (coercions included — semantics must match the interpreter exactly).
_BIN_EXPR = {
    "add": "int({a}) + int({b})",
    "sub": "int({a}) - int({b})",
    "mul": "int({a}) * int({b})",
    "div": "_idiv({a}, {b})",
    "mod": "_imod({a}, {b})",
    "and": "int({a}) & int({b})",
    "or": "int({a}) | int({b})",
    "xor": "int({a}) ^ int({b})",
    "shl": "int({a}) << int({b})",
    "shr": "int({a}) >> int({b})",
    "lt": "int(int({a}) < int({b}))",
    "le": "int(int({a}) <= int({b}))",
    "gt": "int(int({a}) > int({b}))",
    "ge": "int(int({a}) >= int({b}))",
    "eq": "int(int({a}) == int({b}))",
    "ne": "int(int({a}) != int({b}))",
    "min": "min(int({a}), int({b}))",
    "max": "max(int({a}), int({b}))",
    "fadd": "float({a}) + float({b})",
    "fsub": "float({a}) - float({b})",
    "fmul": "float({a}) * float({b})",
    "fdiv": "float({a}) / float({b})",
    "flt": "int(float({a}) < float({b}))",
    "fle": "int(float({a}) <= float({b}))",
    "fgt": "int(float({a}) > float({b}))",
    "fge": "int(float({a}) >= float({b}))",
    "feq": "int(float({a}) == float({b}))",
    "fne": "int(float({a}) != float({b}))",
    "fmin": "min(float({a}), float({b}))",
    "fmax": "max(float({a}), float({b}))",
}

_UN_EXPR = {
    "neg": "-int({a})",
    "not": "int(not int({a}))",
    "abs": "abs(int({a}))",
    "fneg": "-float({a})",
    "fabs": "abs(float({a}))",
    "i2f": "float(int({a}))",
    "f2i": "int(float({a}))",
    "sqrt": "_sqrt(float({a}))",
}

#: Names injected into every generated function's globals.
CODEGEN_GLOBALS = {
    "_idiv": _int_div,
    "_imod": _int_mod,
    "_sqrt": math.sqrt,
    "Bail": Bail,
}


class RegEnv:
    """Register naming for one generated function.

    ``read`` yields the local currently holding a register (recording a
    live-in on first read of an undefined register); ``write`` allocates a
    fresh temp and rebinds the register to it.  Subclassed by the loop
    compiler to scope registers function-wide across blocks.
    """

    def __init__(self) -> None:
        self._current: dict[str, str] = {}
        self.live_in: list[str] = []  # regs read before any def, in order
        self.defs: dict[str, str] = {}  # reg -> latest local
        self._n = 0

    def temp(self) -> str:
        self._n += 1
        return f"t{self._n}"

    def read(self, reg: str) -> str:
        name = self._current.get(reg)
        if name is None:
            name = f"r{len(self.live_in)}"
            self.live_in.append(reg)
            self._current[reg] = name
        return name

    def write(self, reg: str) -> str:
        name = self.temp()
        self._current[reg] = name
        self.defs[reg] = name
        return name


@dataclass
class EmittedBlock:
    """The pieces of one block's generated body (pre-commit)."""

    body: list[str] = field(default_factory=list)
    stores: list[tuple[str, str]] = field(default_factory=list)  # (idx, val)
    term: tuple = ()  # ("jump", target) | ("branch", cond_local, t, f)


def emit_block(instrs, line_addrs, l1i_cfg, l1d_cfg, element_size: int,
               env: RegEnv, bail: str, ind: str, uniq: str = ""):
    """Emit the residency checks and data arithmetic of one block.

    Args:
        instrs: the block's :class:`~repro.ir.instructions.Instruction` list.
        line_addrs: byte addresses of the I-lines the block spans.
        l1i_cfg, l1d_cfg: the L1 :class:`~repro.simulator.config.CacheConfig`s.
        element_size: the program's memory cell width in bytes.
        env: register-naming environment (caller-scoped).
        bail: statement abandoning the fast path ("return None" in a block
            function, "raise Bail" inside a loop function).
        ind: indentation prefix for every emitted line.
        uniq: scratch-name suffix making emissions for several blocks
            coexist in one function (the loop compiler passes the block
            index).

    Returns:
        an :class:`EmittedBlock`, or None when the block cannot be compiled
        (it ends in ``Ret``, or contains an unknown construct).
    """
    out = EmittedBlock()
    body = out.body

    # I-line residency + LRU refresh (addresses are compile-time constants).
    ns_i = l1i_cfg.num_sets
    for k, addr in enumerate(line_addrs):
        line = addr // l1i_cfg.line_bytes
        idx = line % ns_i
        tag = line // ns_i
        s = f"_is{uniq}_{k}"
        body.append(f"{ind}{s} = _IS[{idx}]")
        body.append(f"{ind}if {tag} in {s}:")
        body.append(f"{ind}    del {s}[{tag}]; {s}[{tag}] = None")
        body.append(f"{ind}else:")
        body.append(f"{ind}    {bail}")

    ns_d = l1d_cfg.num_sets
    lb_d = l1d_cfg.line_bytes
    esz = element_size

    def emit_daccess(base_reg: str, offset: int, k: str):
        """Address computation + bounds/alignment + L1D residency check."""
        b = env.read(base_reg)
        off = f" + {offset}" if offset else ""
        body.append(f"{ind}_a{k} = int({b}){off}")
        body.append(f"{ind}_q{k}, _r{k} = divmod(_a{k}, {esz})")
        body.append(f"{ind}if _r{k} or _a{k} < 0 or _q{k} >= len(_cells):")
        body.append(f"{ind}    {bail}")
        body.append(f"{ind}_l{k} = _a{k} // {lb_d}")
        body.append(f"{ind}_ds{k} = _DS[_l{k} % {ns_d}]")
        body.append(f"{ind}_t{k} = _l{k} // {ns_d}")
        body.append(f"{ind}if _t{k} in _ds{k}:")
        body.append(f"{ind}    del _ds{k}[_t{k}]; _ds{k}[_t{k}] = None")
        body.append(f"{ind}else:")
        body.append(f"{ind}    {bail}")

    n_access = 0
    for pos, instr in enumerate(instrs):
        last = pos == len(instrs) - 1
        if isinstance(instr, Const):
            dst = env.write(instr.dst)
            body.append(f"{ind}{dst} = {instr.value!r}")
        elif isinstance(instr, Move):
            src = env.read(instr.src)
            dst = env.write(instr.dst)
            body.append(f"{ind}{dst} = {src}")
        elif isinstance(instr, BinOp):
            expr = _BIN_EXPR.get(instr.op)
            if expr is None:
                return None
            a = env.read(instr.lhs)
            b = env.read(instr.rhs)
            dst = env.write(instr.dst)
            body.append(f"{ind}{dst} = {expr.format(a=a, b=b)}")
        elif isinstance(instr, UnOp):
            expr = _UN_EXPR.get(instr.op)
            if expr is None:
                return None
            a = env.read(instr.src)
            dst = env.write(instr.dst)
            body.append(f"{ind}{dst} = {expr.format(a=a)}")
        elif isinstance(instr, Load):
            k = f"{uniq}_{n_access}"
            n_access += 1
            emit_daccess(instr.base, instr.offset, k)
            # Forward from buffered stores (most recent first); fall back
            # to the memory cell.
            expr = f"_cells[_q{k}]"
            for idx_local, val_local in reversed(out.stores):
                expr = f"{val_local} if _q{k} == {idx_local} else ({expr})"
            dst = env.write(instr.dst)
            body.append(f"{ind}{dst} = {expr}")
        elif isinstance(instr, Store):
            k = f"{uniq}_{n_access}"
            n_access += 1
            val = env.read(instr.src)
            emit_daccess(instr.base, instr.offset, k)
            out.stores.append((f"_q{k}", val))
        elif isinstance(instr, Branch):
            if not last:
                return None
            cond = env.read(instr.cond)
            out.term = ("branch", cond, instr.if_true, instr.if_false)
        elif isinstance(instr, Jump):
            if not last:
                return None
            out.term = ("jump", instr.target)
        elif isinstance(instr, Ret):
            return None  # terminal blocks stay on the reference path
        else:
            return None
    if not out.term:
        return None  # fall-through block: let the interpreter report it
    return out


def compile_block(label: str, instrs, line_addrs, config, element_size: int):
    """Compile one block to a standalone fast function.

    The function signature is ``fn(regs, cells, dsets, isets)`` and it
    returns the successor label, or None to bail (any exception is also a
    bail).  Returns None when the block is not compilable.
    """
    env = RegEnv()
    emitted = emit_block(instrs, line_addrs, config.l1i, config.l1d,
                         element_size, env, "return None", "    ")
    if emitted is None:
        return None
    lines = ["def _blk(_regs, _cells, _DS, _IS):"]
    lines.extend(emitted.body)
    # Live-in loads must precede their first use; RegEnv guarantees the
    # names, so prepend the dict reads (KeyError on a genuinely undefined
    # register is a bail; the interpreter then raises properly).
    prologue = [
        f"    r{i} = _regs[{reg!r}]" for i, reg in enumerate(env.live_in)
    ]
    lines[1:1] = prologue
    for idx_local, val_local in emitted.stores:
        lines.append(f"    _cells[{idx_local}] = {val_local}")
    for reg, local in env.defs.items():
        lines.append(f"    _regs[{reg!r}] = {local}")
    term = emitted.term
    if term[0] == "jump":
        lines.append(f"    return {term[1]!r}")
    else:
        _, cond, if_true, if_false = term
        lines.append(f"    return {if_true!r} if {cond} else {if_false!r}")
    namespace = dict(CODEGEN_GLOBALS)
    exec(compile("\n".join(lines), f"<perf:{label}>", "exec"), namespace)
    return namespace["_blk"]


def fold_block_consts(instrs, line_addrs, config, cycle_time, voltage, op_energy):
    """Fold one block's per-execution delta for one mode.

    Replicates the interpreter's accumulation order *operation for
    operation* under the fast-path preconditions (every access an L1 hit,
    nothing pending, no outstanding miss), so the folded ``dt``/``de`` are
    bitwise the values the reference interpreter's block-local accumulators
    would reach.

    Returns:
        ``(dt, de, n_instr, dep_cycles, cache_cycles, ifetch_cycles,
        d_hits, i_hits)``.
    """
    bt = 0.0
    e = 0.0
    dep = 0
    cc = 0
    base_c = config.base_c_eff_nf
    l1i_c = config.l1i.access_energy_nf
    l1d_c = config.l1d.access_energy_nf
    hit_i = config.l1i.hit_latency_cycles
    hit_d = config.l1d.hit_latency_cycles
    n_d = 0
    for _ in line_addrs:
        bt += hit_i * cycle_time
        e += (l1i_c + base_c * hit_i) * voltage * voltage
    for instr in instrs:
        cls = instr.op_class
        if isinstance(instr, (Load, Store)):
            bt += cycle_time
            e += op_energy[cls]
            bt += hit_d * cycle_time
            e += (l1d_c + base_c * hit_d) * voltage * voltage
            cc += 1 + hit_d
            n_d += 1
        elif isinstance(instr, (BinOp, UnOp)):
            lat = cls.latency
            dep += lat
            bt += lat * cycle_time
            e += op_energy[cls]
        else:  # Const, Move, Branch, Jump (Ret blocks are never folded)
            dep += 1
            bt += cycle_time
            e += op_energy[cls]
    return (
        bt,
        e,
        len(instrs),
        dep,
        cc,
        len(line_addrs) * hit_i,
        n_d,
        len(line_addrs),
    )
