"""Taskgraph benchmark behind ``repro bench --taskgraph``.

Measures the multi-core taskgraph MILP on a fixed seeded fork-join
instance across core counts: wall-clock solve time, and the energy gap
between the proven optimum and the greedy heuristic ((greedy - milp) /
greedy — how much the MILP is worth).  Emits ``BENCH_taskgraph.json``
for CI to gate and archive next to the simulator/solver/serve
documents.

The benchmark doubles as a differential check: every case re-verifies
that the solver objective equals the replayed energy and that the MILP
never loses to greedy (``all_verified``).
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import Any

from repro.simulator.dvs import XSCALE_3, TransitionCostModel
from repro.taskgraph.heuristic import deadline_for, greedy_taskgraph
from repro.taskgraph.milp import build_taskgraph_milp
from repro.taskgraph.model import fork_join
from repro.taskgraph.simulate import replay
from repro.taskgraph.tables import synthetic_tables

#: Schema tag for BENCH_taskgraph.json consumers.
BENCH_FORMAT = 1

#: Relative tolerance for the objective-vs-replay cross-check.
REL_TOL = 1e-6


def bench_taskgraph_case(spec, tables, cores: int, deadline_frac: float,
                         transition: TransitionCostModel,
                         repeats: int = 1,
                         budget_s: float | None = None) -> dict[str, Any]:
    """Benchmark one core count: best-of-``repeats`` solve + greedy gap."""
    deadline_s = deadline_for(spec, tables, cores, deadline_frac, transition)
    best_s = float("inf")
    solution = schedule = None
    options: dict[str, Any] = {}
    if budget_s is not None:
        options["time_limit"] = budget_s
    for _ in range(repeats):
        formulation = build_taskgraph_milp(spec, tables, cores, deadline_s,
                                           transition)
        t0 = time.perf_counter()
        solution = formulation.solve(**options)
        best_s = min(best_s, time.perf_counter() - t0)
        schedule = formulation.extract_schedule(solution,
                                               allow_incumbent=True)
    replayed = replay(spec, tables, schedule, transition)
    greedy = greedy_taskgraph(spec, tables, cores, deadline_s, transition)
    greedy_energy = greedy["replayed"]["energy_nj"]
    milp_energy = replayed["energy_nj"]
    gap = (greedy_energy - milp_energy) / greedy_energy if greedy_energy else 0.0
    verified = (
        abs(solution.objective - milp_energy)
        <= REL_TOL * max(1.0, abs(milp_energy))
        and milp_energy <= greedy_energy + REL_TOL * max(1.0, greedy_energy)
        and replayed["makespan_s"] <= deadline_s * (1.0 + 1e-9)
    )
    return {
        "name": f"p{cores}",
        "cores": cores,
        "deadline_s": deadline_s,
        "solve_s": best_s,
        "milp_energy_nj": milp_energy,
        "greedy_energy_nj": greedy_energy,
        "energy_gap": gap,
        "switches": replayed["switches"],
        "optimal": solution.ok,
        "verified": verified,
    }


def run_taskgraph_bench(tasks: int = 7, cores: tuple[int, ...] = (1, 2, 4),
                        deadline_frac: float = 0.5, repeats: int = 1,
                        budget_s: float | None = None) -> dict[str, Any]:
    """The full benchmark document (the BENCH_taskgraph.json payload)."""
    spec = fork_join(tasks=tasks, seed=0)
    tables = synthetic_tables(spec, XSCALE_3)
    transition = TransitionCostModel()
    cases = [bench_taskgraph_case(spec, tables, count, deadline_frac,
                                  transition, repeats=repeats,
                                  budget_s=budget_s)
             for count in cores]
    return {
        "format": BENCH_FORMAT,
        "benchmark": "taskgraph-milp",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "graph": spec.name,
        "graph_tasks": tasks,
        "deadline_frac": deadline_frac,
        "headline_solve_s": max(c["solve_s"] for c in cases),
        "headline_gap": max(c["energy_gap"] for c in cases),
        "all_optimal": all(c["optimal"] for c in cases),
        "all_verified": all(c["verified"] for c in cases),
        "cases": cases,
    }


def write_bench_json(document: dict[str, Any],
                     path: str | Path = "BENCH_taskgraph.json") -> Path:
    """Persist a benchmark document where CI expects it."""
    import json

    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
