"""Solver benchmark harness behind ``repro bench --solver``.

Times the paper's Figure 17/18 experiment — the five-deadline sweep per
workload — the two ways the repo can run it:

* **dense cold**: the classic tableau simplex (``--solver-engine=dense``
  kill switch), every deadline solved from scratch;
* **revised warm**: the sparse revised simplex with the optimal basis
  and branching pseudocosts handed from each deadline to the next
  (exactly what ``repro sweep`` does through the warm-start registry).

At the stringent deadlines (D1, often D2) the dense tableau stalls in
hundreds of thousands of degenerate pivots and does not terminate within
any practical budget, while the revised engine finishes in seconds.  The
bench therefore gives every dense solve a per-deadline wall-clock budget
and reports deadlines it cannot finish as DNF; the speedup and the
schedule-identity check cover the comparable subset, which is the
*favourable* subset for the dense engine.  Emits ``BENCH_solver.json``
for CI to archive; the repo's acceptance floor is a >= 3x warm-revised
speedup on the comparable chain.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

from repro import observe
from repro.core import DVSOptimizer
from repro.errors import ScheduleError
from repro.lang import compile_program
from repro.profiling.serialize import schedule_to_dict
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.solver import warmstart
from repro.solver.engine import use_engine
from repro.workloads import derive_deadlines, get_workload

#: Schema tag for BENCH_solver.json consumers.
BENCH_FORMAT = 1

#: Wall-clock budget per dense solve before a deadline counts as DNF.
DENSE_BUDGET_S = 60.0


def _solve_one(optimizer: DVSOptimizer, cfg, deadline, profile,
               pivot_counter: str) -> dict[str, Any]:
    """One optimize call; seconds, pivots and the serialized schedule
    (``schedule`` None when the solver hit its budget)."""
    pivots0 = observe.counter_value(pivot_counter)
    t0 = time.perf_counter()
    try:
        outcome = optimizer.optimize(cfg, deadline, profile=profile)
        schedule = schedule_to_dict(outcome.schedule)
    except ScheduleError:
        schedule = None  # solver limit: DNF at this deadline
    return {
        "seconds": time.perf_counter() - t0,
        "pivots": int(observe.counter_value(pivot_counter) - pivots0),
        "schedule": schedule,
    }


def bench_workload(name: str, repeats: int = 1,
                   dense_budget_s: float = DENSE_BUDGET_S) -> dict[str, Any]:
    """Benchmark one workload's Fig 17/18 sweep, dense-cold vs revised-warm.

    The profile (simulation) is built once, untimed: this benchmark
    isolates solver time, which is what Figure 18 plots.
    """
    spec = get_workload(name)
    cfg = compile_program(spec.source, name=name)
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    profile = DVSOptimizer(machine).profile(
        cfg, inputs=spec.inputs(), registers=spec.registers())
    times = profile.wall_time_s
    deadlines = derive_deadlines(times[0], times[1], times[2])

    warm_optimizer = DVSOptimizer(
        machine, backend="native",
        solver_options={"warm_key": f"bench.{name}"})
    cold_optimizer = DVSOptimizer(
        machine, backend="native",
        solver_options={"time_limit": dense_budget_s})

    best: dict[str, Any] | None = None
    for _ in range(repeats):
        # Warm chain: reset the registry so the first deadline solves
        # cold and the remaining ones warm-start, as a real sweep does.
        warmstart.reset()
        observe.enable(reset=True)
        try:
            with use_engine("revised"):
                warm = [_solve_one(warm_optimizer, cfg, d, profile,
                                   "solver.revised.pivots")
                        for d in deadlines]
            with use_engine("dense"):
                cold = [_solve_one(cold_optimizer, cfg, d, profile,
                                   "solver.simplex.pivots")
                        for d in deadlines]
        finally:
            observe.disable()

        comparable = [i for i, c in enumerate(cold)
                      if c["schedule"] is not None]
        warm_s = sum(warm[i]["seconds"] for i in comparable)
        cold_s = sum(cold[i]["seconds"] for i in comparable)
        sample = {
            "name": name,
            "deadlines": len(deadlines),
            "repeats": repeats,
            # Speedup/identity cover only the deadlines the dense engine
            # finished — its favourable subset.
            "comparable_deadlines": [i + 1 for i in comparable],
            "dense_dnf_deadlines": [i + 1 for i in range(len(deadlines))
                                    if i not in comparable],
            "dense_budget_s": dense_budget_s,
            "dense_cold_s": cold_s,
            "revised_warm_s": warm_s,
            "revised_full_chain_s": sum(w["seconds"] for w in warm),
            "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "identical": all(
                json.dumps(warm[i]["schedule"], sort_keys=True)
                == json.dumps(cold[i]["schedule"], sort_keys=True)
                for i in comparable
            ) and all(w["schedule"] is not None for w in warm),
            "warm_pivots": sum(warm[i]["pivots"] for i in comparable),
            "cold_pivots": sum(cold[i]["pivots"] for i in comparable),
        }
        if best is None:
            best = sample
        else:  # best-of-N on each chain independently
            best["revised_warm_s"] = min(best["revised_warm_s"],
                                         sample["revised_warm_s"])
            best["dense_cold_s"] = min(best["dense_cold_s"],
                                       sample["dense_cold_s"])
            best["identical"] = best["identical"] and sample["identical"]
            best["speedup"] = (best["dense_cold_s"] / best["revised_warm_s"]
                               if best["revised_warm_s"] > 0 else float("inf"))
    return best


def run_solver_bench(workloads: tuple[str, ...] = ("adpcm", "gsm"),
                     repeats: int = 1,
                     dense_budget_s: float = DENSE_BUDGET_S
                     ) -> dict[str, Any]:
    """The full benchmark document (the BENCH_solver.json payload).

    The headline speedup is aggregate: total dense-cold seconds over
    total revised-warm seconds on the comparable deadlines across every
    workload.
    """
    was_enabled = observe.enabled()
    cases = [bench_workload(name, repeats=repeats,
                            dense_budget_s=dense_budget_s)
             for name in workloads]
    if was_enabled and not observe.enabled():  # pragma: no cover - defensive
        observe.enable()
    total_cold = sum(c["dense_cold_s"] for c in cases)
    total_warm = sum(c["revised_warm_s"] for c in cases)
    return {
        "format": BENCH_FORMAT,
        "benchmark": "solver-warmstart",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "headline_speedup": (total_cold / total_warm if total_warm > 0
                             else float("inf")),
        "all_identical": all(c["identical"] for c in cases),
        "warm_pivots": sum(c["warm_pivots"] for c in cases),
        "cold_pivots": sum(c["cold_pivots"] for c in cases),
        "cases": cases,
    }


def write_bench_json(document: dict[str, Any],
                     path: str | Path = "BENCH_solver.json") -> Path:
    """Persist a benchmark document where CI expects it."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
