"""Continuous-engine benchmark behind ``repro bench --continuous``.

Two measurements per (workload, deadline) grid point:

* **Opportunity gap** — the paper's Section 3 question restated on
  profiled numbers: how much of the energy saving available to an ideal
  continuously variable voltage (the exact Li-Yao-Yuan optimum,
  :mod:`repro.core.continuous`) does the discrete mode table actually
  achieve (the proven MILP optimum)?  Reported in savings points against
  the best single mode meeting the deadline.

* **Pruner A/B** — the same MILP solved by the native branch and bound
  with the continuous round-up injected as a warm incumbent and without
  it.  The gate demands that the incumbent did real work
  (``continuous_prunes > 0`` somewhere on the grid), never *added* heap
  work (total enqueued nodes with the pruner <= without), and — the
  invariant everything else rests on — returned byte-identical schedules
  and objectives everywhere.

Emits ``BENCH_continuous.json`` for CI to archive and gate against the
tracked copy in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

from repro import observe
from repro.core import DVSOptimizer
from repro.core.continuous import continuous_bound, round_up_schedule
from repro.errors import ScheduleError
from repro.lang import compile_program
from repro.profiling.serialize import schedule_to_dict
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.solver import warmstart
from repro.workloads import get_workload

#: Schema tag for BENCH_continuous.json consumers.
BENCH_FORMAT = 1

#: Deadline grid (fractions of the fast->slow wall-time range).
DEADLINE_FRACS = (0.2, 0.4, 0.6, 0.8)


def _solve_counters(optimizer: DVSOptimizer, cfg, deadline,
                    profile) -> dict[str, Any]:
    """One native solve with counter capture (prunes, enqueued nodes)."""
    observe.enable(reset=True)
    try:
        outcome = optimizer.optimize(cfg, deadline, profile=profile)
        snapshot = observe.snapshot(reset=True)
    finally:
        observe.disable()
    counters = snapshot.get("counters", {})
    return {
        "schedule": schedule_to_dict(outcome.schedule),
        "energy_nj": float(outcome.predicted_energy_nj),
        "nodes_enqueued": int(counters.get("solver.bnb.nodes_enqueued", 0)),
        "continuous_prunes": int(
            counters.get("solver.bnb.continuous_prunes", 0)),
    }


def bench_workload(name: str,
                   deadline_fracs: tuple[float, ...] = DEADLINE_FRACS
                   ) -> dict[str, Any]:
    """One workload's opportunity-gap and pruner-A/B rows."""
    spec = get_workload(name)
    cfg = compile_program(spec.source, name=name)
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=spec.inputs(),
                                registers=spec.registers())
    modes = sorted(profile.wall_time_s)
    t_fast = profile.wall_time_s[modes[-1]]
    t_slow = profile.wall_time_s[modes[0]]

    cold = DVSOptimizer(machine, backend="native")
    warm = DVSOptimizer(machine, backend="native",
                        solver_options={"continuous_prune": True})

    rows: list[dict[str, Any]] = []
    for frac in deadline_fracs:
        deadline = t_fast + frac * (t_slow - t_fast)
        try:
            bound = continuous_bound(profile, machine.mode_table, deadline)
            _, baseline = optimizer.best_single_mode(profile, deadline)
        except ScheduleError:
            continue  # outside the engine's regime at this grid point
        rounded = round_up_schedule(
            profile, machine.mode_table, deadline, bound.speeds,
            machine.transition_model, None,
        )
        # The A/B halves must not share warm-start state: each solve is
        # the same cold solve apart from the injected incumbent.
        warmstart.reset()
        off = _solve_counters(cold, cfg, deadline, profile)
        warmstart.reset()
        on = _solve_counters(warm, cfg, deadline, profile)
        milp_energy = off["energy_nj"]
        savings_cont = 1.0 - bound.energy_nj / baseline if baseline > 0 else 0.0
        savings_milp = 1.0 - milp_energy / baseline if baseline > 0 else 0.0
        rows.append({
            "deadline_frac": frac,
            "deadline_s": deadline,
            "baseline_energy_nj": baseline,
            "continuous_energy_nj": bound.energy_nj,
            "milp_energy_nj": milp_energy,
            "roundup_energy_nj": None if rounded is None else rounded.energy_nj,
            "savings_continuous": savings_cont,
            "savings_milp": savings_milp,
            "opportunity_gap": savings_cont - savings_milp,
            "pruner": {
                "continuous_prunes": on["continuous_prunes"],
                "nodes_enqueued_off": off["nodes_enqueued"],
                "nodes_enqueued_on": on["nodes_enqueued"],
                "identical": (
                    off["energy_nj"] == on["energy_nj"]
                    and json.dumps(off["schedule"], sort_keys=True)
                    == json.dumps(on["schedule"], sort_keys=True)
                ),
            },
        })
    return {"name": name, "rows": rows}


def run_continuous_bench(workloads: tuple[str, ...] = ("adpcm", "gsm"),
                         deadline_fracs: tuple[float, ...] = DEADLINE_FRACS
                         ) -> dict[str, Any]:
    """The full benchmark document (the BENCH_continuous.json payload)."""
    was_enabled = observe.enabled()
    cases = [bench_workload(name, deadline_fracs) for name in workloads]
    if was_enabled and not observe.enabled():  # pragma: no cover - defensive
        observe.enable()
    rows = [row for case in cases for row in case["rows"]]
    prunes = sum(r["pruner"]["continuous_prunes"] for r in rows)
    enq_off = sum(r["pruner"]["nodes_enqueued_off"] for r in rows)
    enq_on = sum(r["pruner"]["nodes_enqueued_on"] for r in rows)
    return {
        "format": BENCH_FORMAT,
        "benchmark": "continuous-engine",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Worst-case share of the continuous opportunity the discrete
        # table leaves on the table, in savings points.
        "headline_gap": max((r["opportunity_gap"] for r in rows),
                            default=0.0),
        "continuous_prunes": prunes,
        "nodes_enqueued_off": enq_off,
        "nodes_enqueued_on": enq_on,
        "all_identical": all(r["pruner"]["identical"] for r in rows),
        "pruner_effective": prunes > 0 and enq_on <= enq_off,
        "cases": cases,
    }


def write_bench_json(document: dict[str, Any],
                     path: str | Path = "BENCH_continuous.json") -> Path:
    """Persist a benchmark document where CI expects it."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
