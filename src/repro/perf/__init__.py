"""Hot-path acceleration for the simulator (bit-exact by construction).

The :class:`~repro.simulator.machine.Machine` bottoms out every experiment
in a per-instruction Python loop; this package removes that bottleneck for
the structurally repetitive executions profiled DVS workloads are made of:

* :mod:`repro.perf.accum` — compensated (Neumaier) summation used by the
  machine's run-level accounting;
* :mod:`repro.perf.blockc` — block-delta memoization: generated per-block
  functions that validate cache residency, re-execute the data arithmetic
  and let the dispatcher replay the block's folded (Δt, Δe, Δstats) delta;
* :mod:`repro.perf.loopc` — steady-state loop fast-forwarding: whole
  natural loops compiled into one function with registers as locals;
* :mod:`repro.perf.engine` — the compiled-program cache and per-mode
  delta tables;
* :mod:`repro.perf.bench` — the benchmark harness behind ``repro bench``
  and ``benchmarks/test_perf_simulator.py``.

The fast path produces bit-identical ``RunResult``s to the reference
interpreter (see ``docs/performance.md`` for the exactness argument); it
can be disabled per machine (``Machine(fastpath=False)``), per run
(``run(..., fastpath=False)``), per CLI invocation (``--no-fastpath``) or
globally (``$REPRO_NO_FASTPATH=1``).
"""

from repro.perf.accum import NeumaierSum, neumaier_sum

__all__ = ["NeumaierSum", "neumaier_sum"]
