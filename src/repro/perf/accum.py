"""Compensated (Neumaier) summation for energy/time accounting.

The simulator accumulates millions of tiny per-instruction energy terms.
With bare ``+=`` the total depends on summation *order*, so a fast path
that replays a block's contribution as one pre-folded delta would
silently diverge from the reference interpreter in the last bits.  The
machine therefore (a) accumulates within one block execution locally and
commits one delta per block — both paths perform the *same* sequence of
run-level additions — and (b) makes those run-level additions compensated,
so the totals are also robust to the magnitude spread between a block
delta (~1e1 nJ) and a long run's total (~1e6 nJ).

Neumaier's variant of Kahan summation is used: it also compensates when
the incoming term is larger than the running sum, which happens at the
start of a run and after mode transitions.
"""

from __future__ import annotations


class NeumaierSum:
    """A compensated accumulator: ``add`` terms, read ``value``.

    The loop-bearing machine code inlines the same update for speed; this
    class is the reference form used by accounting code, tests and any
    future consumer.  The update for a term ``x`` on state ``(s, c)``::

        t = s + x
        c += (s - t) + x   if |s| >= |x|   (low-order bits of x lost)
        c += (x - t) + s   otherwise       (low-order bits of s lost)
        s = t

    and the total is ``s + c``.
    """

    __slots__ = ("s", "c")

    def __init__(self, value: float = 0.0) -> None:
        self.s = float(value)
        self.c = 0.0

    def add(self, x: float) -> None:
        s = self.s
        t = s + x
        if abs(s) >= abs(x):
            self.c += (s - t) + x
        else:
            self.c += (x - t) + s
        self.s = t

    @property
    def value(self) -> float:
        return self.s + self.c

    def __repr__(self) -> str:
        return f"NeumaierSum({self.value!r})"


def neumaier_sum(terms) -> float:
    """Compensated sum of an iterable of floats."""
    acc = NeumaierSum()
    for term in terms:
        acc.add(term)
    return acc.value
