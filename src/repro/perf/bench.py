"""Fast-path benchmark harness behind ``repro bench``.

Measures the accelerated simulator against the reference interpreter on
the same (program, inputs, mode) points, checks bit-identity while it is
at it, and emits a JSON document (``BENCH_simulator.json``) that CI can
archive and compare across commits.

Two benchmark tiers:

* ``loop-heavy`` — a synthetic L1-resident FIR + reduction kernel whose
  steady-state loops are exactly what :mod:`repro.perf.loopc`
  fast-forwards.  This is the headline number the acceptance floor
  (>= 3x) is checked against.
* the real suite workloads (optional, ``--suite``) — branchy codecs with
  cache misses and bails; speedups here are honest but smaller.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Any

from repro.lang import compile_program
from repro.simulator.config import SCALE_CONFIG
from repro.simulator.dvs import TransitionCostModel, XSCALE_3
from repro.simulator.machine import Machine

#: Schema tag for BENCH_simulator.json consumers.
BENCH_FORMAT = 1

#: Tight, L1-resident loop nest: a 16-tap integer FIR over a 1 KB signal
#: plus a modular reduction sweep, repeated to amortize warmup.  The
#: whole working set (signal + out + coeff) fits in the 4 KB L1 D-cache,
#: so the steady state has no misses and the loop fast-forwarder stays
#: engaged.
LOOP_HEAVY_SOURCE = """
func main(n: int, taps: int) -> int {
    extern signal: int[256];
    extern coeff: int[16];
    array out: int[256];

    var acc: int = 0;
    for (var r: int = 0; r < 30; r = r + 1) {
        for (var i: int = 0; i < n - taps; i = i + 1) {
            var s: int = 0;
            for (var k: int = 0; k < taps; k = k + 1) {
                s = s + signal[i + k] * coeff[k];
            }
            out[i] = s / 64;
        }
        for (var i: int = 0; i < n; i = i + 1) {
            acc = (acc + out[i]) % 999983;
        }
    }
    return acc;
}
"""


def loop_heavy_case() -> tuple[Any, dict[str, list], dict[str, float]]:
    """(cfg, inputs, registers) for the headline loop-heavy benchmark."""
    cfg = compile_program(LOOP_HEAVY_SOURCE)
    inputs = {
        "signal": [((i * 37 + 11) % 201) - 100 for i in range(256)],
        "coeff": [((i * 13 + 5) % 31) - 15 for i in range(16)],
    }
    registers = {"main.n": 256, "main.taps": 16}
    return cfg, inputs, registers


def result_fingerprint(result) -> str:
    """A total fingerprint of one run's observable output.

    Every ``RunResult`` field participates, including dict iteration
    order (profile serialization preserves it) and the final memory
    image, so "identical" here means byte-identical artifacts.
    """
    doc = dataclasses.asdict(result)
    memory = doc.pop("memory", None)
    cells = repr(memory.cells) if memory is not None else "None"
    return repr(list(doc.items())) + "|" + cells


def _time_run(machine: Machine, cfg, inputs, registers, mode: int,
              repeats: int) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = machine.run(cfg, inputs=dict(inputs),
                             registers=dict(registers), mode=mode)
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_case(name: str, cfg, inputs, registers, mode: int = 2,
               repeats: int = 1) -> dict[str, Any]:
    """Benchmark one (program, inputs, mode) point fast vs reference."""
    fast_machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    slow_machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel(),
                           fastpath=False)
    fast_s, fast_result = _time_run(fast_machine, cfg, inputs, registers,
                                    mode, repeats)
    slow_s, slow_result = _time_run(slow_machine, cfg, inputs, registers,
                                    mode, repeats)
    identical = (result_fingerprint(fast_result)
                 == result_fingerprint(slow_result))
    return {
        "name": name,
        "mode": mode,
        "repeats": repeats,
        "reference_s": slow_s,
        "fast_s": fast_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "identical": identical,
        "instructions": fast_result.instructions,
        "fastpath": dict(fast_machine.last_fastpath_stats),
    }


def run_bench(suite: bool = False, repeats: int = 1,
              mode: int = 2) -> dict[str, Any]:
    """The full benchmark document (the BENCH_simulator.json payload)."""
    cases = []
    cfg, inputs, registers = loop_heavy_case()
    cases.append(bench_case("loop-heavy", cfg, inputs, registers,
                            mode=mode, repeats=repeats))
    if suite:
        from repro.workloads import all_workloads, compile_workload
        for spec in all_workloads():
            cases.append(bench_case(
                spec.name, compile_workload(spec.name), spec.make_inputs(),
                spec.make_registers(), mode=mode, repeats=repeats,
            ))
    headline = cases[0]
    return {
        "format": BENCH_FORMAT,
        "benchmark": "simulator-fastpath",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "headline_speedup": headline["speedup"],
        "all_identical": all(c["identical"] for c in cases),
        "cases": cases,
    }


def write_bench_json(document: dict[str, Any],
                     path: str | Path = "BENCH_simulator.json") -> Path:
    """Persist a benchmark document where CI expects it."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
