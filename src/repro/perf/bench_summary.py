"""Cross-bench aggregation behind ``repro bench --summary``.

Collects the headline metrics of every BENCH_*.json document present in
a directory — simulator fast path, LP solver, serving load test,
taskgraph MILP — into one ``BENCH_summary.json``, with deltas against
the tracked baselines in ``benchmarks/results/``.  One file to read
after a change instead of four, and one place for CI to spot a
regression in any subsystem.

Missing documents are reported, not fatal: a checkout that never ran
``repro loadtest`` still summarizes the benches it has.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Schema tag for BENCH_summary.json consumers.
SUMMARY_FORMAT = 1

#: Known bench documents and the headline metrics to extract from each.
#: (file name, summary key, metric paths).  A path picks nested fields
#: with dots ("latency_s.p50").
BENCHES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("BENCH_simulator.json", "simulator",
     ("headline_speedup", "all_identical")),
    ("BENCH_solver.json", "solver",
     ("headline_speedup", "warm_pivots", "cold_pivots", "all_identical")),
    ("BENCH_serve.json", "serve",
     ("throughput_rps", "coalescing_ratio", "latency_s.p50")),
    ("BENCH_taskgraph.json", "taskgraph",
     ("headline_solve_s", "headline_gap", "all_optimal", "all_verified")),
)


def _pick(document: dict[str, Any], path: str) -> Any:
    value: Any = document
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _headline(document: dict[str, Any],
              metrics: tuple[str, ...]) -> dict[str, Any]:
    return {path: _pick(document, path) for path in metrics}


def _deltas(current: dict[str, Any],
            baseline: dict[str, Any]) -> dict[str, Any]:
    """current - baseline per shared numeric metric (+ relative)."""
    out: dict[str, Any] = {}
    for key, value in current.items():
        base = baseline.get(key)
        if (isinstance(value, (int, float)) and not isinstance(value, bool)
                and isinstance(base, (int, float))
                and not isinstance(base, bool)):
            delta = value - base
            out[key] = {
                "current": value,
                "baseline": base,
                "delta": delta,
                "delta_rel": delta / base if base else None,
            }
    return out


def run_summary(bench_dir: str | Path = ".",
                baseline_dir: str | Path = "benchmarks/results",
                ) -> dict[str, Any]:
    """The BENCH_summary.json payload."""
    bench_dir = Path(bench_dir)
    baseline_dir = Path(baseline_dir)
    benches: dict[str, Any] = {}
    missing: list[str] = []
    for filename, key, metrics in BENCHES:
        current_path = bench_dir / filename
        if not current_path.exists():
            missing.append(filename)
            continue
        document = json.loads(current_path.read_text())
        entry: dict[str, Any] = {
            "file": filename,
            "format": document.get("format"),
            "headline": _headline(document, metrics),
        }
        baseline_path = baseline_dir / filename
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            entry["baseline_headline"] = _headline(baseline, metrics)
            entry["deltas"] = _deltas(entry["headline"],
                                      entry["baseline_headline"])
        else:
            entry["baseline_headline"] = None
            entry["deltas"] = None
        benches[key] = entry
    return {
        "format": SUMMARY_FORMAT,
        "benchmark": "summary",
        "bench_dir": str(bench_dir),
        "baseline_dir": str(baseline_dir),
        "benches": benches,
        "missing": sorted(missing),
    }


def write_summary_json(document: dict[str, Any],
                       path: str | Path = "BENCH_summary.json") -> Path:
    """Persist the summary where CI expects it."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
