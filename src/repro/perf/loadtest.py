"""``repro loadtest`` — replay concurrent traffic against ``repro serve``.

The harness answers the serving subsystem's two load-bearing claims with
numbers instead of adjectives:

* **Coalescing works**: a seeded generator emits thousands of mixed
  ``/v1/optimize`` / ``/v1/sweep`` submissions with a configurable
  duplicate ratio, fired through a bounded-concurrency async client.
  The server's own counters (``/v1/metrics``) then tell us how many
  submissions were absorbed by the single-flight map or the finished-job
  LRU versus how many DAGs actually ran.

* **The warm pool pays for itself**: the same experiment run as a cold
  one-shot CLI sweep (fresh interpreter, fresh process pool, no cache)
  is timed as a baseline, and the served p50 must land well below it.

Everything lands in ``BENCH_serve.json`` (schema below), which CI gates
on: coalescing ratio > 0, warm speedup > 1, p99 under a budget, and —
in ``--spawn`` mode, where the harness forks its own server — a clean
SIGTERM drain with exit code 0.

Traffic goes through :class:`repro.serve.client.AsyncReproClient`, the
resilient stdlib client (timeouts, capped exponential backoff with
jitter, ``Retry-After`` honoring, circuit breaker).  A 429 admission
rejection is therefore *not* a hard error: the client backs off and
resubmits — idempotent, because the server keys jobs by the canonical
content hash — and the report counts it under
``rejected_then_completed`` instead.  Only requests that stay failed
after the retry budget count as ``errors``.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import shlex
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ServeError
from repro.serve.client import AsyncReproClient, RetryPolicy, http_request

#: Schema tag for BENCH_serve.json consumers.
LOADTEST_FORMAT = 1

#: The listening line ``repro serve`` prints (parsed in --spawn mode).
LISTEN_PREFIX = "repro serve listening on http://"


@dataclass(frozen=True)
class LoadtestConfig:
    """One loadtest campaign."""

    base_url: str | None = None  # target server; None -> spawn one
    spawn_args: str = ""  # extra `repro serve` flags in --spawn mode
    requests: int = 200
    concurrency: int = 32
    duplicate_ratio: float = 0.75  # fraction of submissions that repeat
    seed: int = 0
    workloads: tuple[str, ...] = ("adpcm", "gsm")
    deadline_fracs: tuple[float, ...] = (0.35, 0.7)
    tenants: int = 3
    timeout_s: float = 120.0  # per-request client timeout
    cold_runs: int = 2  # cold-spinup baseline repeats (0 disables)
    cache_dir: str | None = None  # cache for a spawned server
    max_attempts: int = 6  # client retry budget per request (1 = none)


@dataclass
class _Outcome:
    status: int
    latency_s: float
    disposition: str | None = None  # new | coalesced | replayed (202 path)
    ok: bool = False
    retries: int = 0  # backoff retries this request consumed
    rejected: int = 0  # 429/503 answers absorbed before the final one


def build_mix(config: LoadtestConfig) -> list[dict[str, Any]]:
    """The seeded request plan: a deterministic duplicate-heavy mix.

    Unique grid points are drawn from ``workloads x deadline_fracs``;
    each submission is either a *repeat* of an already-issued point
    (probability ``duplicate_ratio`` — these are the submissions that
    must coalesce or replay) or the next unseen point.  Repeats favour
    the most recent point so duplicates land while their twin is still
    in flight, exercising the single-flight map and not just the LRU.
    """
    rng = random.Random(config.seed)
    points = [{"workload": w, "deadline_frac": f}
              for w in config.workloads for f in config.deadline_fracs]
    rng.shuffle(points)
    plan: list[dict[str, Any]] = []
    issued: list[dict[str, Any]] = []
    fresh = iter(points)
    for index in range(config.requests):
        point = None
        if issued and rng.random() < config.duplicate_ratio:
            # 70% of repeats hit one of the last few submissions.
            if rng.random() < 0.7:
                point = issued[-1 - rng.randrange(min(4, len(issued)))]
            else:
                point = issued[rng.randrange(len(issued))]
        if point is None:
            point = next(fresh, None)
            if point is None:  # plan exhausted every unique point
                point = issued[rng.randrange(len(issued))]
        issued.append(point)
        body = dict(point)
        body["tenant"] = f"tenant-{rng.randrange(config.tenants)}"
        body["wait"] = True
        endpoint = "/v1/optimize"
        plan.append({"endpoint": endpoint, "body": body, "index": index})
    return plan


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _parse_base_url(base_url: str) -> tuple[str, int]:
    trimmed = base_url.strip().rstrip("/")
    for prefix in ("http://", "https://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
    host, _, port = trimmed.partition(":")
    if not host or not port.isdigit():
        raise ServeError(
            f"cannot parse server url {base_url!r} (want host:port)")
    return host, int(port)


async def _fire(host: str, port: int, plan: list[dict[str, Any]],
                config: LoadtestConfig,
                progress=None) -> list[_Outcome]:
    semaphore = asyncio.Semaphore(config.concurrency)
    outcomes: list[_Outcome | None] = [None] * len(plan)
    # One shared client: the circuit breaker sees the whole campaign, so
    # a dead server opens it once instead of 32 tasks timing out forever.
    client = AsyncReproClient(
        host, port,
        policy=RetryPolicy(max_attempts=max(1, config.max_attempts),
                           timeout_s=config.timeout_s),
        seed=config.seed)

    async def one(entry: dict[str, Any]) -> None:
        endpoint = entry["endpoint"].rsplit("/", 1)[1]
        async with semaphore:
            result = await client.submit(entry["body"], endpoint=endpoint)
        ok = False
        disposition = None
        if result.status == 0:
            disposition = f"error:{(result.error or 'transport').split(':')[0]}"
        elif result.status == 200 and result.document is not None:
            disposition = result.document.get("disposition")
            ok = "results" in result.document or disposition == "replayed"
        outcomes[entry["index"]] = _Outcome(
            result.status, result.latency_s, disposition, ok,
            retries=result.retries, rejected=result.rejected)
        if progress is not None:
            progress(entry["index"])

    await asyncio.gather(*(one(entry) for entry in plan))
    return [o for o in outcomes if o is not None]


async def _get_json(host: str, port: int, path: str,
                    timeout_s: float) -> dict[str, Any]:
    status, _, payload = await http_request(host, port, "GET", path, b"",
                                            timeout_s)
    if status != 200:
        raise ServeError(f"GET {path} returned {status}")
    return json.loads(payload)


def _cold_baseline(config: LoadtestConfig) -> dict[str, Any] | None:
    """Time the same experiment as cold one-shot CLI runs.

    Every run pays the full per-request cost a process-per-request
    deployment would: interpreter start, imports, pool fork, cold solver
    and simulator state, no artifact cache.  This is the denominator of
    the warm-pool speedup claim.
    """
    if config.cold_runs < 1:
        return None
    workload = config.workloads[0]
    frac = config.deadline_fracs[0]
    durations = []
    with tempfile.TemporaryDirectory(prefix="repro-loadtest-cold-") as tmp:
        for run in range(config.cold_runs):
            command = [
                sys.executable, "-m", "repro", "sweep",
                "--workloads", workload,
                "--deadline-fracs", str(frac),
                "--jobs", "1", "--no-cache", "--quiet",
                "--output-dir", str(Path(tmp) / f"run{run}"),
            ]
            t0 = time.monotonic()
            proc = subprocess.run(command, capture_output=True, text=True)
            elapsed = time.monotonic() - t0
            if proc.returncode != 0:
                raise ServeError(
                    f"cold baseline sweep failed (exit {proc.returncode}): "
                    f"{proc.stderr.strip().splitlines()[-1:] or '?'}")
            durations.append(elapsed)
    return {
        "runs": config.cold_runs,
        "command": "repro sweep --jobs 1 --no-cache (fresh process)",
        "workload": workload,
        "deadline_frac": frac,
        "mean_s": sum(durations) / len(durations),
        "min_s": min(durations),
        "per_run_s": durations,
    }


def _spawn_server(config: LoadtestConfig) -> tuple[subprocess.Popen, str]:
    """Fork ``repro serve --port 0`` and parse its listening line."""
    command = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    if config.cache_dir:
        command += ["--cache-dir", config.cache_dir]
    command += shlex.split(config.spawn_args)
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60.0
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise ServeError(
                f"spawned server exited early "
                f"(code {proc.poll()}) before listening")
        if LISTEN_PREFIX in line:
            address = line.split(LISTEN_PREFIX, 1)[1].split()[0]
            return proc, f"http://{address}"
    proc.kill()
    raise ServeError("spawned server never printed its listening line")


def run_loadtest(config: LoadtestConfig,
                 progress=None) -> dict[str, Any]:
    """Run one campaign; returns the BENCH_serve.json document."""
    proc: subprocess.Popen | None = None
    base_url = config.base_url
    drain: dict[str, Any] | None = None
    if base_url is None:
        proc, base_url = _spawn_server(config)
    host, port = _parse_base_url(base_url)
    try:
        plan = build_mix(config)
        unique = len({json.dumps(
            {k: v for k, v in entry["body"].items()
             if k not in ("tenant", "wait")}, sort_keys=True)
            for entry in plan})
        t0 = time.monotonic()
        outcomes = asyncio.run(_fire(host, port, plan, config, progress))
        wall_s = time.monotonic() - t0
        # A server that died mid-campaign is a *finding*, not a crash:
        # report zeroed counters and let the error totals fail the run.
        try:
            metrics = asyncio.run(_get_json(host, port, "/v1/metrics",
                                            config.timeout_s))
            health = asyncio.run(_get_json(host, port, "/healthz",
                                           config.timeout_s))
        except (ServeError, OSError, asyncio.TimeoutError, ValueError):
            metrics, health = {}, {}
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                code = proc.wait(timeout=10)
            drain = {"signal": "SIGTERM", "exit_code": code}

    latencies = sorted(o.latency_s for o in outcomes)
    statuses: dict[str, int] = {}
    for outcome in outcomes:
        key = str(outcome.status)
        statuses[key] = statuses.get(key, 0) + 1
    derived = metrics.get("derived", {})
    ok_count = sum(1 for o in outcomes if o.ok)
    cold = _cold_baseline(config)
    p50 = _percentile(latencies, 50)
    document: dict[str, Any] = {
        "format": LOADTEST_FORMAT,
        "config": {
            "requests": config.requests,
            "concurrency": config.concurrency,
            "duplicate_ratio": config.duplicate_ratio,
            "seed": config.seed,
            "workloads": list(config.workloads),
            "deadline_fracs": list(config.deadline_fracs),
            "tenants": config.tenants,
            "max_attempts": config.max_attempts,
            "unique_requests": unique,
            "base_url": base_url,
            "spawned": proc is not None,
        },
        "requests": {
            "total": len(outcomes),
            "ok": ok_count,
            "errors": len(outcomes) - ok_count,
            "statuses": dict(sorted(statuses.items())),
            "retries": sum(o.retries for o in outcomes),
            "rejected_then_completed": sum(
                1 for o in outcomes if o.ok and o.rejected > 0),
        },
        "latency_s": {
            "p50": p50,
            "p90": _percentile(latencies, 90),
            "p99": _percentile(latencies, 99),
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
        "throughput_rps": (len(outcomes) / wall_s) if wall_s > 0 else 0.0,
        "wall_s": wall_s,
        "coalescing_ratio": derived.get("coalescing_ratio", 0.0),
        "cache_hit_rate": derived.get("cache_hit_rate"),
        "dag_runs": derived.get("dag_runs", 0),
        "serve_counters": metrics.get("counters", {}),
        "pool": health.get("pool", {}),
    }
    if cold is not None:
        document["cold_baseline"] = cold
        document["warm_speedup"] = (cold["mean_s"] / p50) if p50 > 0 else None
    if drain is not None:
        document["drain"] = drain
    return document


def write_loadtest(document: dict[str, Any],
                   path: str | Path = "BENCH_serve.json") -> Path:
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def render_loadtest(document: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a campaign."""
    latency = document["latency_s"]
    requests = document["requests"]
    lines = [
        f"loadtest: {requests['total']} requests "
        f"({document['config']['unique_requests']} unique, "
        f"concurrency {document['config']['concurrency']}) "
        f"in {document['wall_s']:.2f}s "
        f"({document['throughput_rps']:.1f} req/s)",
        f"  ok {requests['ok']}  errors {requests['errors']}  "
        f"statuses {requests['statuses']}",
        f"  client retries {requests.get('retries', 0)}  "
        f"rejected-then-completed "
        f"{requests.get('rejected_then_completed', 0)}",
        f"  latency p50 {latency['p50'] * 1000:.1f}ms  "
        f"p90 {latency['p90'] * 1000:.1f}ms  "
        f"p99 {latency['p99'] * 1000:.1f}ms  "
        f"max {latency['max'] * 1000:.1f}ms",
        f"  coalescing ratio {document['coalescing_ratio']:.3f}  "
        f"dag runs {document['dag_runs']}  "
        f"cache hit rate "
        f"{document['cache_hit_rate'] if document['cache_hit_rate'] is not None else 'n/a'}",
    ]
    if "cold_baseline" in document:
        cold = document["cold_baseline"]
        lines.append(
            f"  cold spinup {cold['mean_s']:.2f}s mean "
            f"({cold['runs']} runs) -> warm speedup "
            f"{document['warm_speedup']:.1f}x at p50")
    if "drain" in document:
        lines.append(f"  drain: {document['drain']['signal']} -> "
                     f"exit {document['drain']['exit_code']}")
    return "\n".join(lines)
