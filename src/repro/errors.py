"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed intermediate representation (CFG, block, instruction)."""


class IRValidationError(IRError):
    """A structural invariant of the IR was violated."""


class LangError(ReproError):
    """Base class for frontend (lexer/parser/sema) failures."""


class LexError(LangError):
    """The lexer hit a character sequence it cannot tokenize."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LangError):
    """The parser hit an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(LangError):
    """Name-resolution or type errors in the source program."""


class SimulationError(ReproError):
    """The machine simulator hit an invalid runtime state."""


class ProfileError(ReproError):
    """Profiling data is missing or inconsistent."""


class SolverError(ReproError):
    """Base class for mathematical-programming failures."""


class InfeasibleError(SolverError):
    """The LP/MILP has no feasible point."""


class UnboundedError(SolverError):
    """The LP/MILP objective is unbounded below."""


class SolverLimitError(SolverError):
    """Iteration/node limit was exhausted before proving optimality."""


class ModelError(SolverError):
    """The optimization model itself is malformed."""


class ScheduleError(ReproError):
    """A DVS schedule is inconsistent with the program it targets."""


class VerificationError(ReproError):
    """An independent verification check (certificate, schedule check or
    oracle) rejected a pipeline result."""


class AnalysisError(ReproError):
    """Analytical-model inputs are outside the modelled regime."""


class OrchestrationError(ReproError):
    """The experiment runtime (task DAG, executor, sweep) hit an invalid
    state: malformed graph, unresolvable dependency, bad grid config."""


class TaskTimeout(OrchestrationError):
    """A runtime task exceeded its per-task wall-clock budget."""


class InjectedFault(OrchestrationError):
    """A deliberately injected task failure (fault-injection testing)."""


class JournalError(OrchestrationError):
    """The crash-safe sweep journal is unusable for the requested resume
    (format drift or a fingerprint from a different sweep grid)."""


class CacheError(ReproError):
    """The content-addressed artifact store is unusable or inconsistent."""


class ServeError(ReproError):
    """The optimization service (:mod:`repro.serve`) hit an invalid
    state: malformed configuration, an unusable listener, or a broken
    client conversation."""


class ProtocolError(ServeError):
    """A service request failed validation.

    Carries the HTTP status the server should answer with; defaults to
    400 (bad request).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
