"""JSON (de)serialization for profiles and schedules.

Profiling is the expensive step of the pipeline (one simulation per
mode), so a real deployment profiles once and reuses the data; likewise
a schedule is the compiler's deliverable.  Both round-trip through plain
JSON dicts here.

Edges serialize as ``"src->dst"`` and local paths as ``"h->i->j"``;
block labels must therefore not contain ``"->"`` (the frontend never
emits such labels).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProfileError, ScheduleError
from repro.core.milp.schedule import DVSSchedule
from repro.profiling.profile_data import BlockModeData, ProfileData

_SEP = "->"
FORMAT_VERSION = 1


def _edge_key(edge: tuple[str, str]) -> str:
    return f"{edge[0]}{_SEP}{edge[1]}"


def _parse_edge(text: str) -> tuple[str, str]:
    parts = text.split(_SEP)
    if len(parts) != 2:
        raise ProfileError(f"malformed edge key {text!r}")
    return parts[0], parts[1]


def profile_to_dict(profile: ProfileData) -> dict[str, Any]:
    """Serialize a profile to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "kind": "profile",
        "name": profile.name,
        "num_modes": profile.num_modes,
        "return_value": profile.return_value,
        "block_counts": dict(profile.block_counts),
        "edge_counts": {_edge_key(e): c for e, c in profile.edge_counts.items()},
        "path_counts": {
            f"{h}{_SEP}{i}{_SEP}{j}": c for (h, i, j), c in profile.path_counts.items()
        },
        "wall_time_s": {str(m): t for m, t in profile.wall_time_s.items()},
        "cpu_energy_nj": {str(m): e for m, e in profile.cpu_energy_nj.items()},
        "per_mode": {
            str(mode): {
                label: [d.total_time_s, d.total_energy_nj, d.count]
                for label, d in blocks.items()
            }
            for mode, blocks in profile.per_mode.items()
        },
    }


def profile_from_dict(data: dict[str, Any]) -> ProfileData:
    """Rebuild a :class:`ProfileData` from its dict form (validated)."""
    if data.get("kind") != "profile":
        raise ProfileError(f"not a profile document (kind={data.get('kind')!r})")
    if data.get("format") != FORMAT_VERSION:
        raise ProfileError(f"unsupported profile format {data.get('format')!r}")
    profile = ProfileData(name=data["name"], num_modes=int(data["num_modes"]))
    profile.return_value = data.get("return_value")
    profile.block_counts = {k: int(v) for k, v in data["block_counts"].items()}
    profile.edge_counts = {
        _parse_edge(k): int(v) for k, v in data["edge_counts"].items()
    }
    for key, count in data["path_counts"].items():
        parts = key.split(_SEP)
        if len(parts) != 3:
            raise ProfileError(f"malformed path key {key!r}")
        profile.path_counts[(parts[0], parts[1], parts[2])] = int(count)
    profile.wall_time_s = {int(m): float(t) for m, t in data["wall_time_s"].items()}
    profile.cpu_energy_nj = {int(m): float(e) for m, e in data["cpu_energy_nj"].items()}
    for mode, blocks in data["per_mode"].items():
        profile.per_mode[int(mode)] = {
            label: BlockModeData(float(t), float(e), int(c))
            for label, (t, e, c) in blocks.items()
        }
    profile.validate()
    return profile


def schedule_to_dict(schedule: DVSSchedule) -> dict[str, Any]:
    """Serialize a schedule to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "kind": "schedule",
        "num_modes": schedule.num_modes,
        "assignment": {_edge_key(e): m for e, m in schedule.assignment.items()},
    }


def schedule_from_dict(data: dict[str, Any]) -> DVSSchedule:
    if data.get("kind") != "schedule":
        raise ScheduleError(f"not a schedule document (kind={data.get('kind')!r})")
    if data.get("format") != FORMAT_VERSION:
        raise ScheduleError(f"unsupported schedule format {data.get('format')!r}")
    assignment = {
        _parse_edge(key): int(mode) for key, mode in data["assignment"].items()
    }
    return DVSSchedule(assignment=assignment, num_modes=int(data["num_modes"]))


#: The observable facts of one simulated execution that experiment
#: artifacts persist (the full RunResult drags the data memory along).
_RUN_SUMMARY_FIELDS = (
    "return_value",
    "wall_time_s",
    "cpu_energy_nj",
    "memory_energy_nj",
    "transition_energy_nj",
    "transition_time_s",
    "instructions",
    "mem_misses",
    "mode_transitions",
    "modeset_executions",
    "final_mode",
)


def run_summary_to_dict(result) -> dict[str, Any]:
    """Serialize the persistent slice of a simulator ``RunResult``."""
    summary: dict[str, Any] = {"format": FORMAT_VERSION, "kind": "run-summary"}
    for name in _RUN_SUMMARY_FIELDS:
        summary[name] = getattr(result, name)
    return summary


def run_summary_from_dict(data: dict[str, Any]) -> dict[str, Any]:
    """Validate and strip a run-summary document down to its fields."""
    if data.get("kind") != "run-summary":
        raise ProfileError(f"not a run-summary document (kind={data.get('kind')!r})")
    if data.get("format") != FORMAT_VERSION:
        raise ProfileError(f"unsupported run-summary format {data.get('format')!r}")
    missing = [name for name in _RUN_SUMMARY_FIELDS if name not in data]
    if missing:
        raise ProfileError(f"run-summary document is missing fields {missing}")
    return {name: data[name] for name in _RUN_SUMMARY_FIELDS}


def save_profile(profile: ProfileData, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(profile_to_dict(profile), handle)


def load_profile(path: str) -> ProfileData:
    """Load a profile JSON file.

    Raises:
        ProfileError: the file is not valid JSON or not a well-formed
            profile document (truncated downloads, hand-edits, wrong
            file passed to ``--profile``).  OS-level errors (missing
            file, permissions) propagate as :class:`OSError` so callers
            can distinguish "bad content" from "bad path".
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ProfileError(f"cannot parse profile {path}: {error}") from error
    if not isinstance(data, dict):
        raise ProfileError(f"profile {path} is not a JSON object")
    try:
        return profile_from_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        raise ProfileError(
            f"malformed profile document {path}: {type(error).__name__}: {error}"
        ) from error


def save_schedule(schedule: DVSSchedule, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(schedule_to_dict(schedule), handle)


def load_schedule(path: str) -> DVSSchedule:
    """Load a schedule JSON file (error contract as :func:`load_profile`)."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ScheduleError(f"cannot parse schedule {path}: {error}") from error
    if not isinstance(data, dict):
        raise ScheduleError(f"schedule {path} is not a JSON object")
    try:
        return schedule_from_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        raise ScheduleError(
            f"malformed schedule document {path}: {type(error).__name__}: {error}"
        ) from error
