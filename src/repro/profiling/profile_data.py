"""Containers for profile data.

All quantities follow the paper's notation (Section 4.2):

* ``G[(i, j)]`` — times region j is entered through edge (i, j);
* ``D[(h, i, j)]`` — times region i is entered through (h, i) and exited
  through (i, j) (the *local path* through i);
* ``T[m][j]``, ``E[m][j]`` — per-invocation execution time (seconds) and
  CPU energy (nanojoules) of region j under mode m.

Per-invocation values are run totals divided by execution counts; the MILP
objective multiplies them back by the profiled counts, which reproduces the
run totals exactly while letting each edge carry its own mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.ir.cfg import Edge


@dataclass
class BlockModeData:
    """Per-block, per-mode profile: run totals and per-invocation averages."""

    total_time_s: float
    total_energy_nj: float
    count: int

    @property
    def time_per_visit_s(self) -> float:
        return self.total_time_s / self.count if self.count else 0.0

    @property
    def energy_per_visit_nj(self) -> float:
        return self.total_energy_nj / self.count if self.count else 0.0


@dataclass
class ProfileData:
    """Everything the formulation needs about one (program, input) pair.

    Attributes:
        name: program name.
        num_modes: number of DVS modes profiled.
        block_counts: label -> dynamic execution count.
        edge_counts: (i, j) -> traversal count G_ij (includes the synthetic
            entry edge).
        path_counts: (h, i, j) -> local-path count D_hij.
        per_mode: mode index -> {label -> BlockModeData}.
        wall_time_s: mode index -> whole-run wall time.
        cpu_energy_nj: mode index -> whole-run CPU energy.
        return_value: the program's result (sanity checks across modes).
    """

    name: str
    num_modes: int
    block_counts: dict[str, int] = field(default_factory=dict)
    edge_counts: dict[Edge, int] = field(default_factory=dict)
    path_counts: dict[tuple[str, str, str], int] = field(default_factory=dict)
    per_mode: dict[int, dict[str, BlockModeData]] = field(default_factory=dict)
    wall_time_s: dict[int, float] = field(default_factory=dict)
    cpu_energy_nj: dict[int, float] = field(default_factory=dict)
    return_value: float | None = None

    def time(self, block: str, mode: int) -> float:
        """T_jm: per-invocation time of ``block`` under ``mode`` (seconds)."""
        return self._lookup(block, mode).time_per_visit_s

    def energy(self, block: str, mode: int) -> float:
        """E_jm: per-invocation CPU energy of ``block`` under ``mode`` (nJ)."""
        return self._lookup(block, mode).energy_per_visit_nj

    def _lookup(self, block: str, mode: int) -> BlockModeData:
        try:
            return self.per_mode[mode][block]
        except KeyError:
            raise ProfileError(f"no profile for block {block!r} at mode {mode}") from None

    def edges(self) -> list[Edge]:
        """Profiled (traversed) edges, including the entry edge."""
        return list(self.edge_counts)

    def deadline_at(self, frac: float) -> float:
        """Deadline a fraction of the way from all-fast to all-slow.

        ``frac=0`` is the fastest-mode runtime (no slack), ``frac=1`` the
        slowest-mode runtime.  A profile with a single mode has no
        fast->slow range — every fraction would collapse to the same
        zero-slack deadline — so it is rejected instead of silently
        producing a degenerate optimization instance.
        """
        modes = sorted(self.wall_time_s)
        if len(modes) < 2:
            raise ProfileError(
                f"profile {self.name!r} has {len(modes)} mode(s); deadline "
                "fractions need at least two (use --levels >= 2 or pass an "
                "absolute deadline)"
            )
        t_fast = self.wall_time_s[modes[-1]]
        t_slow = self.wall_time_s[modes[0]]
        return t_fast + frac * (t_slow - t_fast)

    def block_energy_share(self, mode: int) -> dict[str, float]:
        """Fraction of whole-run energy attributable to each block at a mode
        (drives the paper's Section 5.2 edge filtering)."""
        total = self.cpu_energy_nj.get(mode, 0.0)
        if total <= 0:
            raise ProfileError(f"no energy recorded for mode {mode}")
        return {
            label: data.total_energy_nj / total
            for label, data in self.per_mode[mode].items()
        }

    def validate(self) -> None:
        """Internal-consistency checks (counts conserve across structures)."""
        if not self.per_mode:
            raise ProfileError("profile holds no per-mode data")
        for mode, blocks in self.per_mode.items():
            for label, data in blocks.items():
                expected = self.block_counts.get(label, 0)
                if data.count != expected:
                    raise ProfileError(
                        f"mode {mode} block {label!r}: count {data.count} != "
                        f"baseline {expected} (nondeterministic program?)"
                    )
        # Local paths through i must sum to the incoming-edge counts of i,
        # except for the block that ends the program (no outgoing edge).
        outgoing_by_edge: dict[Edge, int] = {}
        for (h, i, j), count in self.path_counts.items():
            outgoing_by_edge[(h, i)] = outgoing_by_edge.get((h, i), 0) + count
        for edge, count in outgoing_by_edge.items():
            if count > self.edge_counts.get(edge, 0):
                raise ProfileError(
                    f"path counts through edge {edge} exceed its traversal count"
                )
