"""Simulation-based program profiling (the paper's Section 5.1).

One run per mode gathers per-block time/energy under that mode; edge and
local-path counts are taken from the first run (the program's control flow
does not depend on frequency — assumption 1 of the paper's model).
"""

from __future__ import annotations

from repro.errors import ProfileError
from repro.ir.cfg import CFG
from repro.profiling.profile_data import BlockModeData, ProfileData
from repro.simulator.machine import Machine, RunResult


def profile_program(
    machine: Machine,
    cfg: CFG,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    modes: list[int] | None = None,
) -> ProfileData:
    """Profile a program under every mode of the machine's mode table.

    Args:
        machine: the simulator (its mode table defines the modes profiled).
        cfg: the program.
        inputs: array inputs.
        registers: entry parameters (``main.<param>`` registers).
        modes: subset of mode indices to profile (default: all).

    Returns:
        a validated :class:`~repro.profiling.profile_data.ProfileData`.

    Raises:
        ProfileError: if runs disagree on control flow or results (the
            program would not be safely schedulable from this profile).
    """
    mode_indices = list(modes) if modes is not None else list(range(len(machine.mode_table)))
    if not mode_indices:
        raise ProfileError("no modes requested")

    profile = ProfileData(name=cfg.name, num_modes=len(machine.mode_table))
    baseline: RunResult | None = None

    for mode in mode_indices:
        result = machine.run(cfg, inputs=inputs, registers=registers, mode=mode)
        if baseline is None:
            baseline = result
            profile.block_counts = {
                label: stats.count for label, stats in result.block_stats.items()
            }
            profile.edge_counts = dict(result.edge_counts)
            profile.path_counts = dict(result.path_counts)
            profile.return_value = result.return_value
        else:
            if result.return_value != baseline.return_value:
                raise ProfileError(
                    f"{cfg.name}: result changed across modes "
                    f"({baseline.return_value} vs {result.return_value})"
                )
            if result.edge_counts != baseline.edge_counts:
                raise ProfileError(f"{cfg.name}: control flow changed across modes")
        profile.per_mode[mode] = {
            label: BlockModeData(stats.time_s, stats.cpu_energy_nj, stats.count)
            for label, stats in result.block_stats.items()
        }
        profile.wall_time_s[mode] = result.wall_time_s
        profile.cpu_energy_nj[mode] = result.cpu_energy_nj

    profile.validate()
    return profile
