"""Profiling: the data the MILP formulation and analytical model consume.

The paper's flow (Figure 13) profiles a program once per DVS mode to obtain
per-region execution time ``T_jm`` and energy ``E_jm``, plus edge counts
``G_ij`` and local-path counts ``D_hij`` (which need only one run).  This
package reproduces that flow on the :mod:`repro.simulator` substrate:

* :func:`~repro.profiling.profiler.profile_program` runs a CFG once per
  mode and assembles a :class:`~repro.profiling.profile_data.ProfileData`;
* :func:`~repro.profiling.params_extract.extract_params` reduces a run to
  the four analytical-model parameters of Section 3.2.
"""

from repro.profiling.profile_data import BlockModeData, ProfileData
from repro.profiling.profiler import profile_program
from repro.profiling.params_extract import extract_params

__all__ = ["BlockModeData", "ProfileData", "extract_params", "profile_program"]
