"""Extracting the analytical model's four program parameters (Table 7).

The paper obtains ``N_cache``, ``N_overlap``, ``N_dependent`` (cycles) and
``t_invariant`` (absolute time) from cycle-level simulation.  Our machine
classifies every executed cycle the same way during the run (see
:mod:`repro.simulator.machine`), so extraction is a direct read-off from a
single run at any mode — the cycle *counts* are frequency-invariant, only
their wall-clock duration changes.
"""

from __future__ import annotations

from repro.core.analytical.params import ProgramParams
from repro.ir.cfg import CFG
from repro.simulator.machine import Machine, RunResult


def params_from_run(result: RunResult, name: str = "") -> ProgramParams:
    """Build :class:`ProgramParams` from a completed simulation run.

    ``N_cache`` covers *every* synchronous memory-system cycle — data-cache
    hit cycles, the lookup cycles of accesses that go on to miss, and
    instruction-fetch cycles — so the analytical timing model
    ``cycles/f + t_invariant`` accounts for the full execution time the
    simulator produces.
    """
    return ProgramParams(
        n_overlap=result.overlap_cycles,
        n_dependent=result.dependent_cycles,
        n_cache=result.cache_cycles + result.dmiss_sync_cycles + result.ifetch_cycles,
        t_invariant_s=result.t_invariant_s,
        name=name,
    )


def extract_params(
    machine: Machine,
    cfg: CFG,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    mode: int | None = None,
) -> ProgramParams:
    """Run once and extract the Section 3.2 parameters.

    The run uses the fastest mode by default: at high frequency the least
    compute is hidden under misses, making ``N_overlap`` the count of
    compute cycles that can *always* overlap — the compile-time-safe value
    the model wants.
    """
    mode = len(machine.mode_table) - 1 if mode is None else mode
    result = machine.run(cfg, inputs=inputs, registers=registers, mode=mode)
    return params_from_run(result, name=cfg.name)
